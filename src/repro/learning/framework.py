"""The evaluation protocol of Fig. 3.

For a given sample set the protocol:

1. splits 80/20 into CV-train and held-out test (stratified for the
   imbalanced Falls outcome);
2. runs K-fold CV on the training side, reporting per-fold metrics
   (model stability);
3. fits the final model on the training side — with an internal
   validation carve-out for early stopping — and scores it on the
   held-out 20 %.

The same protocol serves both arms: DD models see the raw 59/60-column
matrix, KD models see the 1/2-column ICI(+FI) matrix, so any performance
difference is attributable to the representation.

Execution model
---------------
All index splits are computed once up front into a
:class:`ProtocolPlan` — a pure function of the sample-set geometry, so
sample sets that share geometry (the DD and KD arms of one outcome)
can share one plan.  The K + 1 model fits of a run are then independent
*units* (each unit's seed lives in its model config, nothing flows
between fits), dispatched through
:func:`repro.parallel.parallel_map`: serial by default, across a
process pool under ``REPRO_JOBS``/``n_jobs``, with bitwise-identical
results either way.

Predictions inside the protocol (CV folds, held-out test,
:meth:`EvaluationResult.test_predictions`) route through the fitted
``mapper_``/``predict_binned`` fast path when the model exposes it —
exact per the PR 2/3 bin-space equivalence guarantees — and fall back
to ``predict`` for baseline models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Protocol

import numpy as np

from repro.boosting import GBClassifier, GBConfig, GBRegressor
from repro.learning.metrics import (
    ClassificationReport,
    RegressionReport,
    classification_report,
    regression_report,
)
from repro.learning.split import KFoldSplitter, train_test_split
from repro.parallel import pack_samples, parallel_map, unpack_samples
from repro.pipeline.samples import SampleSet

__all__ = [
    "ModelFactory",
    "default_model_factory",
    "ProtocolPlan",
    "EvaluationResult",
    "run_protocol",
    "fast_predict",
]


class ModelFactory(Protocol):
    """Factory returning a fresh estimator for a sample set."""

    def __call__(self, samples: SampleSet) -> object: ...


def default_model_factory(samples: SampleSet):
    """The reproduction's default models.

    Gradient boosting for both arms (the paper trains the same learner
    on both representations).  KD inputs have 1-2 columns, so the trees
    are kept shallow there; the classifier also gets more conservative
    settings against the Falls imbalance.
    """
    is_classification = samples.outcome == "falls"
    shallow = samples.n_features <= 4
    config = GBConfig(
        n_estimators=400,
        learning_rate=0.06,
        max_depth=2 if shallow else 4,
        min_child_weight=3.0,
        reg_lambda=1.0,
        subsample=0.9,
        colsample_bytree=1.0 if shallow else 0.85,
        early_stopping_rounds=30,
        random_state=7,
    )
    return GBClassifier(config) if is_classification else GBRegressor(config)


def fast_predict(model, X: np.ndarray) -> np.ndarray:
    """Predict via the retained bin mapper when the model has one.

    ``predict_binned(bin(X))`` walks integer bin codes instead of
    NaN-checked float thresholds and is bitwise-equal to ``predict(X)``
    (the PR 2/3 equivalence guarantee); models without a fitted mapper
    (baselines, format-v1 restores) use plain ``predict``.
    """
    if getattr(model, "mapper_", None) is not None and hasattr(
        model, "predict_binned"
    ):
        return model.predict_binned(model.bin(X))
    return model.predict(X)


@dataclass(frozen=True)
class ProtocolPlan:
    """Every index split of one protocol run, computed once.

    A plan depends only on the sample-set *geometry* — ``(n_samples,
    labels used for stratification, n_folds, fractions, seed)`` — not on
    the feature matrix, so the DD/KD/±FI arms of one outcome share a
    single plan instead of re-deriving identical splits per fit
    (:class:`repro.experiments.ExperimentContext` caches them per
    outcome).

    Attributes
    ----------
    train_idx / test_idx:
        The 80/20 outer split (absolute sample indices).
    folds:
        K ``(fold_train, fold_val)`` pairs of positions *into
        train_idx*, as yielded by :class:`KFoldSplitter`.
    inner_train / inner_val:
        The final model's early-stopping carve-out, also positions into
        ``train_idx``.
    """

    n_samples: int
    n_folds: int
    seed: int
    stratified: bool
    test_fraction: float
    val_fraction: float
    train_idx: np.ndarray
    test_idx: np.ndarray
    folds: tuple[tuple[np.ndarray, np.ndarray], ...]
    inner_train: np.ndarray
    inner_val: np.ndarray

    @classmethod
    def build(
        cls,
        n_samples: int,
        y: np.ndarray | None = None,
        stratified: bool = False,
        n_folds: int = 5,
        test_fraction: float = 0.2,
        val_fraction: float = 0.15,
        seed: int = 0,
    ) -> "ProtocolPlan":
        """Compute the splits (same derivation chain as the original
        inline code: outer split at ``seed``, folds at ``seed + 1``,
        carve-out at ``seed + 2``)."""
        if stratified and y is None:
            raise ValueError("stratified plans need labels")
        stratify = y if stratified else None
        train_idx, test_idx = train_test_split(
            n_samples,
            test_fraction=test_fraction,
            seed=seed,
            stratify=stratify,
        )
        y_train = y[train_idx] if y is not None else None
        splitter = KFoldSplitter(
            n_folds=n_folds, seed=seed + 1, stratified=stratified
        )
        folds = tuple(
            splitter.split(
                len(train_idx), labels=y_train if stratified else None
            )
        )
        inner_train, inner_val = train_test_split(
            len(train_idx),
            test_fraction=val_fraction,
            seed=seed + 2,
            stratify=y_train if stratified else None,
        )
        return cls(
            n_samples=n_samples,
            n_folds=n_folds,
            seed=seed,
            stratified=stratified,
            test_fraction=test_fraction,
            val_fraction=val_fraction,
            train_idx=train_idx,
            test_idx=test_idx,
            folds=folds,
            inner_train=inner_train,
            inner_val=inner_val,
        )


@dataclass
class EvaluationResult:
    """Everything the experiment runners need from one protocol run.

    Attributes
    ----------
    samples:
        The evaluated sample set (provenance included).
    model:
        The final fitted estimator.
    test_report:
        Held-out metrics (:class:`RegressionReport` or
        :class:`ClassificationReport` depending on the outcome).
    cv_reports:
        One report per CV fold (training-side stability).
    train_idx / test_idx:
        The 80/20 split indices (used by the SHAP figures to explain
        held-out patients only).
    """

    samples: SampleSet
    model: object
    test_report: RegressionReport | ClassificationReport
    cv_reports: list = field(default_factory=list)
    train_idx: np.ndarray | None = None
    test_idx: np.ndarray | None = None

    @property
    def headline(self) -> float:
        """The paper's headline number: 1-MAPE or accuracy."""
        if isinstance(self.test_report, RegressionReport):
            return self.test_report.one_minus_mape
        return self.test_report.accuracy

    def test_predictions(self) -> np.ndarray:
        """Model predictions on the held-out samples.

        Routed through the bin-space fast path (see
        :func:`fast_predict`) and cached — repeated calls from the
        experiment runners bin the test matrix once, not once per call.
        """
        cached = getattr(self, "_test_predictions", None)
        if cached is None:
            cached = fast_predict(self.model, self.samples.X[self.test_idx])
            self._test_predictions = cached
        return cached


@dataclass(frozen=True)
class _FitUnit:
    """One independent model fit: train on ``fit_idx`` with an eval set
    on ``val_idx``, then score on ``score_idx`` (absolute indices)."""

    handle: object
    factory: Callable[[SampleSet], object] | None
    fit_idx: np.ndarray
    val_idx: np.ndarray
    score_idx: np.ndarray
    keep_model: bool


def _run_fit_unit(unit: _FitUnit, shared: dict) -> tuple:
    """Execute one fit unit (runs in a worker or inline)."""
    samples = unpack_samples(unit.handle, shared)
    factory = unit.factory or default_model_factory
    X, y = samples.X, samples.y
    model = factory(samples)
    model.fit(
        X[unit.fit_idx],
        y[unit.fit_idx],
        eval_set=(X[unit.val_idx], y[unit.val_idx]),
    )
    pred = fast_predict(model, X[unit.score_idx])
    truth = y[unit.score_idx]
    if samples.outcome == "falls":
        report: RegressionReport | ClassificationReport = (
            classification_report(truth, pred)
        )
    else:
        report = regression_report(truth, pred)
    return report, (model if unit.keep_model else None)


def run_protocol(
    samples: SampleSet,
    model_factory: Callable[[SampleSet], object] | None = None,
    n_folds: int = 5,
    test_fraction: float = 0.2,
    seed: int = 0,
    val_fraction: float = 0.15,
    plan: ProtocolPlan | None = None,
    n_jobs: int | None = None,
) -> EvaluationResult:
    """Run the full Fig. 3 protocol on one sample set.

    Parameters
    ----------
    model_factory:
        Called once per fit; defaults to
        :func:`default_model_factory`.
    val_fraction:
        Fraction of the training side carved out as the early-stopping
        validation set for the final model.
    plan:
        Precomputed splits; derived from the arguments when omitted.
        Passing a plan makes ``n_folds``/``test_fraction``/
        ``val_fraction``/``seed`` irrelevant.
    n_jobs:
        Fan the K + 1 fits out across a process pool
        (:func:`repro.parallel.parallel_map`); results are
        bitwise-identical to the serial run.  ``None`` honours
        ``REPRO_JOBS``.
    """
    is_classification = samples.outcome == "falls"
    if plan is None:
        plan = ProtocolPlan.build(
            samples.n_samples,
            samples.y,
            stratified=is_classification,
            n_folds=n_folds,
            test_fraction=test_fraction,
            val_fraction=val_fraction,
            seed=seed,
        )
    elif plan.n_samples != samples.n_samples:
        raise ValueError(
            f"plan was built for {plan.n_samples} samples, "
            f"sample set has {samples.n_samples}"
        )

    shared: dict[str, np.ndarray] = {}
    handle = pack_samples(samples, shared, "protocol")
    train_idx = plan.train_idx
    units = [
        _FitUnit(
            handle=handle,
            factory=model_factory,
            fit_idx=train_idx[fold_train],
            val_idx=train_idx[fold_val],
            score_idx=train_idx[fold_val],
            keep_model=False,
        )
        for fold_train, fold_val in plan.folds
    ]
    units.append(
        _FitUnit(
            handle=handle,
            factory=model_factory,
            fit_idx=train_idx[plan.inner_train],
            val_idx=train_idx[plan.inner_val],
            score_idx=plan.test_idx,
            keep_model=True,
        )
    )
    outcomes = parallel_map(_run_fit_unit, units, n_jobs=n_jobs, shared=shared)

    cv_reports = [report for report, _ in outcomes[:-1]]
    test_report, final_model = outcomes[-1]
    return EvaluationResult(
        samples=samples,
        model=final_model,
        test_report=test_report,
        cv_reports=cv_reports,
        train_idx=plan.train_idx,
        test_idx=plan.test_idx,
    )


def strip_samples(result: EvaluationResult) -> EvaluationResult:
    """Detach the sample set before shipping a result across processes.

    Worker processes hold ``X`` as a shared-memory view; pickling it
    back to the parent would copy the whole matrix per unit.  The parent
    re-attaches its own :class:`SampleSet` on merge.
    """
    return replace(result, samples=None)