"""Shared benchmark fixtures.

The benchmarks operate on the *paper-scale* cohort (261 patients) and
regenerate every table/figure of the evaluation section.  Each bench
renders its artefact into ``results/<exp>.txt`` so a bench run leaves a
complete paper-vs-measured record behind (consumed by EXPERIMENTS.md).

Heavy experiment benches use ``benchmark.pedantic(..., rounds=1)``:
the quantity of interest is the artefact and a single wall-clock
measurement, not statistical timing of a 30-second training grid.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """Paper-scale experiment context shared by all benches."""
    return ExperimentContext(seed=7, n_folds=3)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered artefact (and echo it for -s runs)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
