"""REP002 positive: global RNG, unseeded generators, wall clock."""

# repro: scope[deterministic]

import random
import time

import numpy as np


def draw(n):
    return np.random.rand(n)  # module-level global RNG


def unseeded():
    return np.random.default_rng()  # OS entropy


def shuffled(items):
    random.shuffle(items)
    return items


def stamp():
    return time.time()
