"""Unit tests for repro.frailty.deficits."""

import numpy as np
import pytest

from repro.frailty import DEFICIT_CATALOGUE, Deficit, deficit_names


class TestCatalogue:
    def test_exactly_37_deficits(self):
        # Paper: "37 of these variables were used to measure the FI".
        assert len(DEFICIT_CATALOGUE) == 37

    def test_category_composition(self):
        counts = {}
        for d in DEFICIT_CATALOGUE:
            counts[d.category] = counts.get(d.category, 0) + 1
        # 27 blood tests, 3 body composition, 7 HIV/PRO, per the paper.
        assert counts == {"blood": 27, "body_composition": 3, "hiv_pro": 7}

    def test_names_unique(self):
        names = deficit_names()
        assert len(set(names)) == 37

    def test_mixed_sensitivities(self):
        sens = {d.sensitivity for d in DEFICIT_CATALOGUE}
        assert len(sens) >= 3

    def test_some_graded_deficits(self):
        graded = sum(d.graded for d in DEFICIT_CATALOGUE)
        assert 0 < graded < 37


class TestDeficitModel:
    def test_expression_increases_as_health_falls(self):
        d = Deficit("x", "blood", base_rate=0.05, sensitivity=0.5, graded=False)
        p_healthy = d.expression_probability(0.9)
        p_sick = d.expression_probability(0.2)
        assert p_sick > p_healthy

    def test_probability_clipped_to_unit_interval(self):
        d = Deficit("x", "blood", base_rate=0.9, sensitivity=1.0, graded=False)
        assert d.expression_probability(0.0) == 1.0
        assert d.expression_probability(np.array([1.0]))[0] == pytest.approx(0.9)

    def test_binary_sampling_values(self, rng):
        d = Deficit("x", "blood", base_rate=0.1, sensitivity=0.5, graded=False)
        vals = d.sample(np.full(500, 0.5), rng)
        assert set(np.unique(vals)) <= {0.0, 1.0}

    def test_graded_sampling_values(self, rng):
        d = Deficit("x", "blood", base_rate=0.2, sensitivity=0.6, graded=True)
        vals = d.sample(np.full(2000, 0.3), rng)
        assert set(np.unique(vals)) <= {0.0, 0.5, 1.0}
        assert 0.5 in vals  # partial expression occurs

    def test_sampling_rate_matches_probability(self):
        rng = np.random.default_rng(0)
        d = Deficit("x", "blood", base_rate=0.1, sensitivity=0.4, graded=False)
        h = 0.5
        vals = d.sample(np.full(50000, h), rng)
        assert vals.mean() == pytest.approx(d.expression_probability(h), abs=0.01)

    def test_invalid_category(self):
        with pytest.raises(ValueError, match="category"):
            Deficit("x", "nope", 0.1, 0.5, False)

    def test_invalid_base_rate(self):
        with pytest.raises(ValueError, match="base_rate"):
            Deficit("x", "blood", 1.5, 0.5, False)

    def test_negative_sensitivity(self):
        with pytest.raises(ValueError, match="sensitivity"):
            Deficit("x", "blood", 0.1, -0.5, False)
