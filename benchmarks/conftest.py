"""Shared benchmark fixtures.

The benchmarks operate on the *paper-scale* cohort (261 patients) and
regenerate every table/figure of the evaluation section.  Each bench
renders its artefact into ``results/<exp>.txt`` so a bench run leaves a
complete paper-vs-measured record behind (consumed by EXPERIMENTS.md).

Heavy experiment benches use ``benchmark.pedantic(..., rounds=1)``:
the quantity of interest is the artefact and a single wall-clock
measurement, not statistical timing of a 30-second training grid.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """Paper-scale experiment context shared by all benches."""
    return ExperimentContext(seed=7, n_folds=3)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered artefact (and echo it for -s runs)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")


def latency_percentiles(latencies_s) -> dict[str, float]:
    """p50/p95/p99 (milliseconds) of a per-request latency sample."""
    import numpy as np

    lat = np.asarray(list(latencies_s), dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(lat, [50, 95, 99])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


def _lint_clean() -> bool:
    """Whether ``src/repro`` passes ``python -m repro lint`` right now.

    Run once per process and cached: a bench number recorded from a
    tree that violates the determinism contract (REP rules) is not
    comparable to one recorded from a clean tree, so every bench.json
    entry carries the verdict alongside its timing.
    """
    global _LINT_CLEAN
    if _LINT_CLEAN is None:
        from repro.analysis import run_lint

        _LINT_CLEAN = run_lint().clean
    return _LINT_CLEAN


_LINT_CLEAN: bool | None = None


def record_bench(
    results_dir: Path,
    name: str,
    seconds: float,
    *,
    speedup: float | None = None,
    config: dict | None = None,
    latency_ms: dict[str, float] | None = None,
    model_nodes: int | None = None,
    model_bytes: int | None = None,
    compression_ratio: float | None = None,
    hist_seconds: float | None = None,
) -> None:
    """Update one machine-readable entry in ``results/bench.json``.

    Every bench records (name, wall seconds, speedup, config,
    lint_clean) next to its ``.txt`` render, keyed by name so re-runs
    update in place — the file is the BENCH_* perf trajectory CI
    uploads with the artefacts.  Serving benches additionally record
    tail latency: ``latency_ms`` carries p50/p95/p99 per-request
    milliseconds (see :func:`latency_percentiles`) so the trajectory
    captures the tail, not just throughput.  Model-size benches stamp
    the footprint next to the timing: ``model_nodes`` (source ensemble
    nodes), ``model_bytes`` (in-memory table bytes) and
    ``compression_ratio`` (source nodes per hash-consed DAG row).
    Fit benches stamp ``hist_seconds`` — wall time spent inside
    histogram accumulation — so the histogram share of fit time is
    tracked across PRs.
    """
    path = results_dir / "bench.json"
    entries: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            loaded = None
        if isinstance(loaded, dict):
            entries = loaded
    entry = {
        "name": name,
        "seconds": round(float(seconds), 4),
        "speedup": None if speedup is None else round(float(speedup), 2),
        "config": config or {},
        "lint_clean": _lint_clean(),
    }
    if latency_ms is not None:
        entry["latency_ms"] = {
            key: round(float(value), 3) for key, value in latency_ms.items()
        }
    if model_nodes is not None:
        entry["model_nodes"] = int(model_nodes)
    if model_bytes is not None:
        entry["model_bytes"] = int(model_bytes)
    if compression_ratio is not None:
        entry["compression_ratio"] = round(float(compression_ratio), 3)
    if hist_seconds is not None:
        entry["hist_seconds"] = round(float(hist_seconds), 4)
    entries[name] = entry
    path.write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tail = f" ({speedup:.1f}x)" if speedup is not None else ""
    if compression_ratio is not None:
        tail += f" compression={compression_ratio:.2f}x"
    if latency_ms is not None:
        tail += (
            f" p50={latency_ms['p50']:.2f}ms"
            f" p95={latency_ms['p95']:.2f}ms"
            f" p99={latency_ms['p99']:.2f}ms"
        )
    print(f"[bench.json] {name}: {seconds:.3f}s" + tail)


def timed(fn):
    """Wrap a callable so each invocation's wall time is collected.

    Works identically under statistical timing and
    ``--benchmark-disable``; read ``wrapped.times`` (seconds per call)
    afterwards and record e.g. ``min(wrapped.times)``.
    """

    def wrapped(*args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        wrapped.times.append(time.perf_counter() - start)
        return out

    wrapped.times = []
    return wrapped
