"""Reproducible data splitting: holdout and K-fold cross-validation.

The paper "assessed the performance using standard KFold cross-
validation (CV) on an 80% of the samples and a test phase on the
remaining 20%".  Splits here are index-based (they never copy data) and
support optional stratification (recommended for the imbalanced Falls
outcome) and optional grouping by patient (keeps all of a patient's
monthly samples on one side, preventing within-patient leakage; exposed
for the ablation benches, off by default to mirror the paper).
"""

from __future__ import annotations

import numpy as np

__all__ = ["train_test_split", "KFoldSplitter"]


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.2,
    seed: int = 0,
    stratify: np.ndarray | None = None,
    groups: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_idx, test_idx) index arrays.

    Parameters
    ----------
    stratify:
        Optional label array; class proportions are preserved on both
        sides.  Mutually exclusive with ``groups``.
    groups:
        Optional group id per sample (e.g. patient id); whole groups go
        to one side.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    if stratify is not None and groups is not None:
        raise ValueError("stratify and groups are mutually exclusive")
    rng = np.random.default_rng(seed)

    if groups is not None:
        groups = np.asarray(groups)
        if len(groups) != n_samples:
            raise ValueError("groups length must equal n_samples")
        unique = np.array(sorted(set(groups.tolist())), dtype=object)
        rng.shuffle(unique)
        n_test_groups = max(1, int(round(test_fraction * len(unique))))
        test_groups = set(unique[:n_test_groups].tolist())
        mask = np.array([g in test_groups for g in groups])
        test_idx = np.flatnonzero(mask)
        train_idx = np.flatnonzero(~mask)
    elif stratify is not None:
        stratify = np.asarray(stratify)
        if len(stratify) != n_samples:
            raise ValueError("stratify length must equal n_samples")
        test_parts = []
        for value in np.unique(stratify):
            members = np.flatnonzero(stratify == value)
            rng.shuffle(members)
            n_test = max(1, int(round(test_fraction * len(members))))
            test_parts.append(members[:n_test])
        test_idx = np.sort(np.concatenate(test_parts))
        mask = np.zeros(n_samples, dtype=bool)
        mask[test_idx] = True
        train_idx = np.flatnonzero(~mask)
    else:
        order = rng.permutation(n_samples)
        n_test = max(1, int(round(test_fraction * n_samples)))
        test_idx = np.sort(order[:n_test])
        train_idx = np.sort(order[n_test:])

    if len(train_idx) == 0:
        raise ValueError("split left the training side empty")
    return train_idx, test_idx


class KFoldSplitter:
    """Shuffled K-fold cross-validation over index arrays.

    Examples
    --------
    >>> folds = list(KFoldSplitter(n_folds=5, seed=1).split(100))
    >>> len(folds)
    5
    >>> sorted(set(len(v) for _, v in folds))
    [20]
    """

    def __init__(self, n_folds: int = 5, seed: int = 0, stratified: bool = False):
        if n_folds < 2:
            raise ValueError("n_folds must be >= 2")
        self.n_folds = n_folds
        self.seed = seed
        self.stratified = stratified

    def split(self, n_samples: int, labels: np.ndarray | None = None):
        """Yield ``(train_idx, val_idx)`` pairs.

        ``labels`` is required when ``stratified=True``.
        """
        if n_samples < self.n_folds:
            raise ValueError(
                f"cannot make {self.n_folds} folds from {n_samples} samples"
            )
        rng = np.random.default_rng(self.seed)
        if self.stratified:
            if labels is None:
                raise ValueError("stratified splitting requires labels")
            labels = np.asarray(labels)
            if len(labels) != n_samples:
                raise ValueError("labels length must equal n_samples")
            fold_of = np.empty(n_samples, dtype=np.int64)
            for value in np.unique(labels):
                members = np.flatnonzero(labels == value)
                rng.shuffle(members)
                fold_of[members] = np.arange(len(members)) % self.n_folds
        else:
            order = rng.permutation(n_samples)
            fold_of = np.empty(n_samples, dtype=np.int64)
            fold_of[order] = np.arange(n_samples) % self.n_folds

        for fold in range(self.n_folds):
            val_idx = np.flatnonzero(fold_of == fold)
            train_idx = np.flatnonzero(fold_of != fold)
            yield train_idx, val_idx
