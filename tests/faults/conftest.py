"""Chaos-suite isolation: every test here owns its fault plan.

The CI chaos job runs the whole test tree under a pinned ambient
``REPRO_FAULTS`` schedule.  The equivalence suites must survive that —
but the tests in this package assert *exact* recovery counters for the
plans they inject themselves, so an ambient schedule stacked on top
would make those counts schedule-dependent.  Strip it: chaos tests are
the one place where the fault plan is part of the test, not the
environment.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _own_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
