"""Row determinism: a row's SHAP values never depend on its batch.

The multi-worker scoring plane shards micro-batches across processes
and the Fig. 6/7 sweeps shard rows across the executor; both guarantees
rest on the batched engine computing every row's attribution with
reductions whose order is independent of the batch shape.  These tests
pin that property bitwise — any reintroduction of a shape-dependent
reduction (a BLAS matmul over the leaf-entry axis, say) fails here
before it silently breaks the serving equivalence suite.
"""

import numpy as np
import pytest

from repro.boosting import GBClassifier, GBRegressor
from repro.explain import TreeShapExplainer, TreeShapInteractionExplainer
from repro.explain.structure import TreeStructure


@pytest.fixture(scope="module")
def model_and_X():
    rng = np.random.default_rng(41)
    X = rng.normal(size=(120, 9))
    X[rng.random(X.shape) < 0.12] = np.nan
    y = (
        1.5 * np.nan_to_num(X[:, 0])
        - np.nan_to_num(X[:, 4]) ** 2
        + rng.normal(0, 0.1, 120)
    )
    return GBRegressor(n_estimators=30, max_depth=4).fit(X, y), X


def _chunked(fn, X, sizes):
    parts, lo = [], 0
    for size in sizes:
        parts.append(fn(X[lo : lo + size]))
        lo += size
    assert lo == X.shape[0]
    return np.vstack(parts)


class TestShapRowDeterminism:
    @pytest.mark.parametrize(
        "sizes",
        [
            (1,) * 120,
            (7, 13, 100),
            (119, 1),
            (60, 60),
        ],
    )
    def test_raw_chunks_bitwise_equal_full_batch(self, model_and_X, sizes):
        model, X = model_and_X
        explainer = TreeShapExplainer(model)
        full = explainer.shap_values(X)
        assert np.array_equal(
            _chunked(explainer.shap_values, X, sizes), full
        )

    def test_binned_chunks_bitwise_equal_full_batch(self, model_and_X):
        model, X = model_and_X
        explainer = TreeShapExplainer(model)
        codes = model.bin(X)
        full = explainer.shap_values_binned(codes)
        chunked = _chunked(
            explainer.shap_values_binned, codes, (5, 25, 90)
        )
        assert np.array_equal(chunked, full)
        # Bin-space routing stays bitwise equal to raw routing.
        assert np.array_equal(full, explainer.shap_values(X))

    def test_classifier_single_rows_equal_batch(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(80, 5))
        y = (X[:, 0] + 0.4 * X[:, 2] > 0).astype(int)
        model = GBClassifier(n_estimators=15, max_depth=3).fit(X, y)
        explainer = TreeShapExplainer(model)
        full = explainer.shap_values(X)
        singles = np.vstack(
            [explainer.shap_values_single(X[i]) for i in range(80)]
        )
        assert np.array_equal(singles, full)

    def test_interactions_chunks_bitwise_equal_full_batch(self, model_and_X):
        model, X = model_and_X
        explainer = TreeShapInteractionExplainer(model)
        block = X[:24]
        full = explainer.shap_interaction_values_batch(block)
        chunked = np.concatenate(
            [
                explainer.shap_interaction_values_batch(block[:5]),
                explainer.shap_interaction_values_batch(block[5:6]),
                explainer.shap_interaction_values_batch(block[6:24]),
            ]
        )
        assert np.array_equal(chunked, full)


class TestStructureFlatRoundTrip:
    def test_to_flat_from_flat_identity(self, model_and_X):
        model, X = model_and_X
        for tree in model.ensemble_.trees[:8]:
            original = TreeStructure(tree)
            fields, scalars = original.to_flat()
            rebuilt = TreeStructure.from_flat(tree, fields, scalars)
            assert rebuilt.n_entries == original.n_entries
            assert rebuilt.n_leaves == original.n_leaves
            assert rebuilt.min_features == original.min_features
            assert rebuilt.expected_value == original.expected_value
            for name in TreeStructure._FLAT_FIELDS:
                assert np.array_equal(
                    getattr(rebuilt, name), getattr(original, name)
                ), name

    def test_rebuilt_structures_explain_bitwise(self, model_and_X):
        model, X = model_and_X
        structures = []
        for tree in model.ensemble_.trees:
            fields, scalars = TreeStructure(tree).to_flat()
            structures.append(TreeStructure.from_flat(tree, fields, scalars))
        rebuilt = TreeShapExplainer(model, structures=structures)
        baseline = TreeShapExplainer(model)
        assert rebuilt.expected_value == baseline.expected_value
        assert np.array_equal(
            rebuilt.shap_values(X[:40]), baseline.shap_values(X[:40])
        )

    def test_single_node_tree_round_trip(self):
        from repro.boosting.tree import Tree

        tree = Tree(
            children_left=np.array([-1]),
            children_right=np.array([-1]),
            feature=np.array([0]),
            threshold=np.array([0.0]),
            missing_left=np.array([True]),
            value=np.array([1.25]),
            cover=np.array([10.0]),
        )
        fields, scalars = TreeStructure(tree).to_flat()
        rebuilt = TreeStructure.from_flat(tree, fields, scalars)
        assert rebuilt.n_entries == 0
        assert rebuilt.expected_value == 1.25

    def test_prebuilt_structure_count_validated(self, model_and_X):
        model, _ = model_and_X
        with pytest.raises(ValueError, match="prebuilt structures"):
            TreeShapExplainer(
                model,
                structures=[TreeStructure(model.ensemble_.trees[0])],
            )
