"""The Intrinsic Capacity Index (ICI) calculator.

Paper, section 4: given a feature vector ``x`` the ICI is the normalised
sum of per-variable scores over the expert-selected subset::

    ICI(x) = (1/n) * sum_i s_i(x[V_i])

The expert subset must represent every one of the five IC domains; this is
enforced through the :class:`~repro.knowledge.ontology.
IntrinsicCapacityOntology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cohort.schema import PRO_ITEMS, ProItem
from repro.knowledge.ontology import IntrinsicCapacityOntology
from repro.knowledge.scoring import CutoffRule, LinearBandScore, ThresholdScore
from repro.tabular import Table

__all__ = ["ICISpecification", "ICICalculator", "default_ici_specification"]


@dataclass(frozen=True)
class ICISpecification:
    """An expert-authored ICI definition: rules + the ontology they cover.

    Attributes
    ----------
    rules:
        One :class:`CutoffRule` per selected variable.
    ontology:
        Concept hierarchy used to verify domain coverage.
    """

    rules: tuple[CutoffRule, ...]
    ontology: IntrinsicCapacityOntology = field(
        default_factory=IntrinsicCapacityOntology.default
    )

    def __post_init__(self):
        if not self.rules:
            raise ValueError("an ICI specification needs at least one rule")
        names = [r.variable for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variables in ICI rules: {names}")
        self.ontology.assert_full_coverage(names)

    @property
    def variables(self) -> list[str]:
        """The expert-selected variable subset, in rule order."""
        return [r.variable for r in self.rules]

    def domain_coverage(self) -> dict[str, int]:
        """Variables per IC domain (all five guaranteed >= 1)."""
        return self.ontology.coverage(self.variables)


class ICICalculator:
    """Compute ICI values for observation tables or matrices.

    Missing variable values are skipped and the normaliser shrinks
    accordingly (an observation with every selected variable missing
    yields NaN) — mirroring how composite indices handle partially
    completed questionnaires.
    """

    def __init__(self, specification: ICISpecification | None = None):
        self.specification = specification or default_ici_specification()

    def compute(self, table: Table) -> np.ndarray:
        """ICI per row of a table holding the selected variable columns."""
        scores = np.column_stack(
            [
                rule.score(table[rule.variable].astype(np.float64))
                for rule in self.specification.rules
            ]
        )
        return self._combine(scores)

    def compute_from_mapping(self, values: dict[str, float]) -> float:
        """ICI for a single observation given as ``{variable: value}``."""
        scores = np.array(
            [
                rule.score(np.array([values.get(rule.variable, np.nan)]))[0]
                for rule in self.specification.rules
            ]
        )
        return float(self._combine(scores[None, :])[0])

    @staticmethod
    def _combine(scores: np.ndarray) -> np.ndarray:
        observed = ~np.isnan(scores)
        counts = observed.sum(axis=1)
        with np.errstate(invalid="ignore"):
            ici = np.nansum(scores, axis=1) / np.maximum(counts, 1)
        ici = np.where(counts == 0, np.nan, ici)
        return ici


def _default_threshold(item: ProItem) -> ThresholdScore:
    """The expert cutoff for a PRO item.

    Convention mirroring the paper's example ("stress level from 1 to 10
    ... 1 if the value is lower than 3"): on reversed scales (high =
    worse) the healthy region is *low* answers, with the cutoff at 30 %
    of the scale; on normal scales the healthy region is answers at or
    above 70 % of the scale.
    """
    if item.reversed_scale:
        return ThresholdScore(
            threshold=np.ceil(0.3 * item.n_levels), healthy_if_low=True
        )
    return ThresholdScore(
        threshold=np.ceil(0.7 * item.n_levels), healthy_if_low=False
    )


def default_ici_specification(items_per_domain: int = 2) -> ICISpecification:
    """The reproduction's expert rule set.

    Selection mimics clinical practice: for each IC domain the expert
    picks the ``items_per_domain`` most clinically salient questionnaire
    items (in the synthetic bank: the lowest-noise ones, since those
    correspond to well-validated instrument questions), plus graded
    scores for daily steps (locomotion) and sleep hours (vitality).
    """
    if items_per_domain < 1:
        raise ValueError("items_per_domain must be >= 1")
    rules: list[CutoffRule] = []
    by_domain: dict[str, list[ProItem]] = {}
    for item in PRO_ITEMS:
        by_domain.setdefault(item.domain, []).append(item)
    for domain, items in by_domain.items():
        chosen = sorted(items, key=lambda it: (it.noise_sd, it.name))[:items_per_domain]
        for item in chosen:
            rules.append(
                CutoffRule(
                    variable=item.name,
                    scorer=_default_threshold(item),
                    rationale=(
                        f"{domain} item; expert binary cutoff on its "
                        f"{item.n_levels}-level scale"
                    ),
                )
            )
    rules.append(
        CutoffRule(
            variable="steps",
            scorer=LinearBandScore(low=2000.0, high=8000.0),
            rationale="locomotion: graded daily step count (2k..8k ramp)",
        )
    )
    rules.append(
        CutoffRule(
            variable="sleep_hours",
            scorer=LinearBandScore(low=4.0, high=7.0),
            rationale="vitality: graded sleep duration (4h..7h ramp)",
        )
    )
    return ICISpecification(rules=tuple(rules))
