"""The :class:`Table` column-store and its relational operators.

A table is an ordered mapping of column names to equal-length
:class:`~repro.tabular.column.Column` objects.  All operators are
functional: they return new tables and never mutate their input.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.tabular.column import Column, ColumnType

__all__ = ["Table", "concat_tables"]

#: Aggregation functions accepted by :meth:`Table.group_by`.
_AGGREGATIONS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.nanmean(a)),
    "sum": lambda a: float(np.nansum(a)),
    "min": lambda a: float(np.nanmin(a)),
    "max": lambda a: float(np.nanmax(a)),
    "std": lambda a: float(np.nanstd(a)),
    "median": lambda a: float(np.nanmedian(a)),
    "count": lambda a: float(np.size(a)),
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
}


def _fast_reduce(ufunc_nan: Callable) -> Callable:
    """Equal-group-size aggregation: one axis-1 reduction per column.

    Rows of the reshaped ``(n_groups, size)`` matrix are the same
    contiguous slices the per-group path reduces, so NumPy's pairwise
    reduction produces bitwise-identical results to calling the 1-D
    aggregation group by group.
    """

    def reduce(values, order, starts, ends, size):
        mat = values[order].reshape(len(starts), size)
        return np.asarray(ufunc_nan(mat, axis=1), dtype=np.float64)

    return reduce


#: Vectorised counterparts of the built-in aggregations (same results as
#: the per-group path; ``std``/``median`` intentionally stay per-group).
_FAST_AGGREGATIONS: dict[str, Callable] = {
    "mean": _fast_reduce(np.nanmean),
    "sum": _fast_reduce(np.nansum),
    "min": _fast_reduce(np.nanmin),
    "max": _fast_reduce(np.nanmax),
    "count": lambda values, order, starts, ends, size: (
        (ends - starts).astype(np.float64)
    ),
    "first": lambda values, order, starts, ends, size: values[order[starts]],
    "last": lambda values, order, starts, ends, size: values[order[ends - 1]],
}


class Table:
    """An immutable, typed, in-memory column-store.

    Parameters
    ----------
    columns:
        Either a mapping ``{name: values}`` (types inferred) or an iterable
        of :class:`Column` objects.  All columns must have equal length.

    Examples
    --------
    >>> t = Table({"patient": ["p1", "p2"], "age": [63, 71]})
    >>> t.num_rows, t.column_names
    (2, ('patient', 'age'))
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, object] | Iterable[Column] = ()):
        cols: dict[str, Column] = {}
        if isinstance(columns, Mapping):
            for name, values in columns.items():
                if isinstance(values, Column) and values.name == name:
                    cols[name] = values
                else:
                    cols[name] = Column(
                        name,
                        values.values
                        if isinstance(values, Column)
                        else values,
                    )
        else:
            for col in columns:
                if not isinstance(col, Column):
                    raise TypeError(f"expected Column, got {type(col).__name__}")
                if col.name in cols:
                    raise ValueError(f"duplicate column name {col.name!r}")
                cols[col.name] = col
        lengths = {len(c) for c in cols.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")
        self._columns = cols

    # ------------------------------------------------------------------
    # shape & access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows (0 for an empty table)."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    @property
    def schema(self) -> dict[str, ColumnType]:
        """Mapping of column name to its logical type."""
        return {name: col.ctype for name, col in self._columns.items()}

    def column(self, name: str) -> Column:
        """Return the column called ``name``.

        Raises
        ------
        KeyError
            If no such column exists; the message lists available names.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {list(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        """Shorthand for ``table.column(name).values``."""
        return self.column(name).values

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._columns)

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("Table is not hashable")

    def __repr__(self) -> str:
        return (
            f"Table({self.num_rows} rows x {self.num_columns} cols: "
            f"{list(self._columns)})"
        )

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a dict (scalars, not arrays)."""
        n = self.num_rows
        if not -n <= index < n:
            raise IndexError(f"row {index} out of range for {n} rows")
        return {name: col.values[index] for name, col in self._columns.items()}

    def iter_rows(self):
        """Yield each row as a dict.  Convenient but not vectorised."""
        names = self.column_names
        arrays = [self._columns[n].values for n in names]
        for i in range(self.num_rows):
            yield {name: arr[i] for name, arr in zip(names, arrays)}

    # ------------------------------------------------------------------
    # projection / construction
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        """Project onto ``names`` (order preserved as given)."""
        return Table([self.column(n) for n in names])

    def drop(self, names: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"cannot drop missing columns {missing}")
        keep = [c for n, c in self._columns.items() if n not in set(names)]
        return Table(keep)

    def with_column(self, name: str, values) -> "Table":
        """Return a table with ``name`` added or replaced."""
        col = values if isinstance(values, Column) else Column(name, values)
        if col.name != name:
            col = col.rename(name)
        if self._columns and len(col) != self.num_rows:
            raise ValueError(
                f"new column {name!r} has {len(col)} rows, table has {self.num_rows}"
            )
        cols = dict(self._columns)
        cols[name] = col
        return Table(cols.values())

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        missing = [n for n in mapping if n not in self._columns]
        if missing:
            raise KeyError(f"cannot rename missing columns {missing}")
        return Table(
            [c.rename(mapping.get(n, n)) for n, c in self._columns.items()]
        )

    # ------------------------------------------------------------------
    # selection / ordering
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """Keep the rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TypeError("filter mask must be boolean")
        if mask.shape != (self.num_rows,):
            raise ValueError(
                f"mask shape {mask.shape} does not match {self.num_rows} rows"
            )
        return Table([c[mask] for c in self._columns.values()])

    def where(
        self, name: str, predicate: Callable[[np.ndarray], np.ndarray]
    ) -> "Table":
        """Filter rows with a vectorised predicate over one column."""
        return self.filter(np.asarray(predicate(self[name]), dtype=bool))

    def take(self, indices) -> "Table":
        """Select rows by integer position (allows repetition/reordering)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Table([c[idx] for c in self._columns.values()])

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.num_rows)))

    def sort_by(self, names: Sequence[str] | str, descending: bool = False) -> "Table":
        """Stable sort by one or more columns (last name = primary key
        per ``numpy.lexsort`` convention is hidden; names are given
        primary-first)."""
        if isinstance(names, str):
            names = [names]
        keys = [_sortable(self[n]) for n in reversed(list(names))]
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def unique(self, name: str) -> list:
        """Sorted unique non-missing values of one column."""
        col = self.column(name)
        mask = ~col.is_missing()
        vals = col.values[mask]
        return sorted(set(vals.tolist()))

    # ------------------------------------------------------------------
    # group-by / join / concat
    # ------------------------------------------------------------------
    def group_by(
        self,
        keys: Sequence[str] | str,
        aggregations: Mapping[str, str | Callable[[np.ndarray], object]],
    ) -> "Table":
        """Group rows by ``keys`` and aggregate other columns.

        Parameters
        ----------
        keys:
            Column name(s) to group on.
        aggregations:
            ``{column: agg}`` where ``agg`` is one of the built-in names
            (``mean``, ``sum``, ``min``, ``max``, ``std``, ``median``,
            ``count``, ``first``, ``last``) or a callable mapping an array
            of group values to a scalar.

        Returns
        -------
        Table
            One row per distinct key combination, ordered by first
            appearance; aggregated columns keep their original names.
        """
        if isinstance(keys, str):
            keys = [keys]
        for k in keys:
            self.column(k)
        agg_specs: dict[str, str | Callable] = {}
        agg_funcs: dict[str, Callable] = {}
        for cname, agg in aggregations.items():
            self.column(cname)
            if cname in keys:
                raise ValueError(f"cannot aggregate group key {cname!r}")
            agg_specs[cname] = agg
            agg_funcs[cname] = _AGGREGATIONS[agg] if isinstance(agg, str) else agg

        layout = self._group_layout(keys)
        if layout is None:
            return Table({k: [] for k in [*keys, *agg_funcs]})
        arrays, order, starts, ends, group_order = layout
        sizes = ends - starts
        uniform = int(sizes.min()) == int(sizes.max())

        out: dict[str, object] = {}
        first_rows = order[starts][group_order]
        for k, arr in zip(keys, arrays):
            out[k] = arr[first_rows]
        for cname, agg in agg_specs.items():
            values = self[cname]
            fast = (
                isinstance(agg, str)
                and agg in _FAST_AGGREGATIONS
                and (agg in ("first", "last") or values.dtype != object)
                and (uniform or agg in ("count", "first", "last"))
            )
            if fast:
                out[cname] = _FAST_AGGREGATIONS[agg](
                    values, order, starts, ends, int(sizes[0])
                )[group_order]
            else:
                fn = agg_funcs[cname]
                out[cname] = [
                    fn(values[order[starts[g] : ends[g]]]) for g in group_order
                ]
        return Table(out)

    def _group_layout(
        self, keys: Sequence[str]
    ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Vectorised group structure over the key columns.

        Returns ``(key_arrays, order, starts, ends, group_order)`` where
        ``order`` is a stable permutation placing each group's rows
        contiguously (original row order preserved inside a group),
        groups ``g`` span ``order[starts[g]:ends[g]]``, and
        ``group_order`` ranks groups by first appearance.  ``None`` for
        an empty table.
        """
        n = self.num_rows
        if n == 0:
            return None
        arrays = [self[k] for k in keys]
        if not arrays:
            zero = np.array([0], dtype=np.int64)
            return [], np.arange(n, dtype=np.int64), zero, np.array([n]), zero
        combined: np.ndarray | None = None
        for arr in arrays:
            _, inverse = np.unique(arr, return_inverse=True)
            inverse = inverse.astype(np.int64, copy=False)
            if combined is None:
                combined = inverse
            else:
                # Re-densify after each combine so codes stay < n and the
                # pairing product can never overflow int64.
                pair = combined * (int(inverse.max()) + 1) + inverse
                _, combined = np.unique(pair, return_inverse=True)
                combined = combined.astype(np.int64, copy=False)
        order = np.argsort(combined, kind="stable")
        sorted_codes = combined[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        # The stable sort keeps row order within a group, so order[start]
        # is each group's first row; ranking those yields appearance order.
        group_order = np.argsort(order[starts], kind="stable")
        return arrays, order, starts, ends, group_order

    def _group_indices(self, keys: Sequence[str]) -> dict[tuple, np.ndarray]:
        """Map each distinct key tuple to the row indices holding it.

        Groups keep first-appearance order.  Built on the vectorised
        :meth:`_group_layout` pass instead of a per-row Python loop; one
        behavioural difference vs the old loop: NaN key values now form a
        single group (``np.unique`` collapses NaNs) instead of one group
        per NaN row (a ``nan != nan`` dict artefact).
        """
        layout = self._group_layout(keys)
        if layout is None:
            return {}
        arrays, order, starts, ends, group_order = layout
        out: dict[tuple, np.ndarray] = {}
        for g in group_order:
            idx = order[starts[g] : ends[g]]
            out[tuple(arr[idx[0]] for arr in arrays)] = idx
        return out

    def join(
        self,
        other: "Table",
        on: Sequence[str] | str,
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Table":
        """Equi-join with ``other`` on the columns ``on``.

        Supports ``how`` in {"inner", "left"}.  Non-key columns of
        ``other`` that collide with this table's names get ``suffix``
        appended.  For a left join with no match, FLOAT columns get NaN
        and STRING columns get None; INT/BOOL right columns are promoted
        to FLOAT so the missing marker is representable.
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        if isinstance(on, str):
            on = [on]
        for k in on:
            self.column(k)
            other.column(k)

        right_index = other._group_indices(on)
        left_arrays = [self[k] for k in on]

        left_rows: list[int] = []
        right_rows: list[int] = []
        unmatched: list[int] = []
        for i in range(self.num_rows):
            key = tuple(arr[i] for arr in left_arrays)
            matches = right_index.get(key)
            if matches is None:
                if how == "left":
                    unmatched.append(i)
                continue
            left_rows.extend([i] * len(matches))
            right_rows.extend(matches.tolist())

        right_names = [n for n in other.column_names if n not in on]
        out_cols: list[Column] = []
        left_order = left_rows + unmatched
        for col in self._columns.values():
            out_cols.append(
                col[np.asarray(left_order, dtype=np.int64)]
                if left_order
                else col[np.asarray([], dtype=np.int64)]
            )
        for name in right_names:
            col = other.column(name)
            taken = (
                col[np.asarray(right_rows, dtype=np.int64)]
                if right_rows
                else col[np.asarray([], dtype=np.int64)]
            )
            if unmatched:
                taken = _pad_missing(taken, len(unmatched))
            out_name = name if name not in self._columns else name + suffix
            out_cols.append(taken.rename(out_name))
        return Table(out_cols)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into a ``float64`` design matrix."""
        names = list(names) if names is not None else [
            n for n, c in self._columns.items() if c.ctype is not ColumnType.STRING
        ]
        cols = []
        for n in names:
            col = self.column(n)
            if col.ctype is ColumnType.STRING:
                raise TypeError(f"column {n!r} is STRING; cannot enter a matrix")
            cols.append(col.values.astype(np.float64))
        if not cols:
            return np.empty((self.num_rows, 0), dtype=np.float64)
        return np.column_stack(cols)

    def to_dict(self) -> dict[str, list]:
        """Return ``{name: list_of_values}``."""
        return {n: c.to_list() for n, c in self._columns.items()}

    def describe(self) -> "Table":
        """Per-column summary statistics.

        Returns a table with one row per column of this table and the
        columns ``column``, ``type``, ``count`` (non-missing),
        ``missing``, ``mean``, ``std``, ``min``, ``max`` (NaN for
        non-numeric columns).
        """
        names: list[str] = []
        types: list[str] = []
        counts: list[int] = []
        missing: list[int] = []
        means: list[float] = []
        stds: list[float] = []
        mins: list[float] = []
        maxs: list[float] = []
        for name, col in self._columns.items():
            names.append(name)
            types.append(col.ctype.value)
            n_missing = col.count_missing()
            missing.append(n_missing)
            counts.append(len(col) - n_missing)
            if col.ctype is ColumnType.STRING:
                means.append(np.nan)
                stds.append(np.nan)
                mins.append(np.nan)
                maxs.append(np.nan)
                continue
            values = col.values.astype(np.float64)
            observed = values[~np.isnan(values)]
            if observed.size == 0:
                means.append(np.nan)
                stds.append(np.nan)
                mins.append(np.nan)
                maxs.append(np.nan)
            else:
                means.append(float(observed.mean()))
                stds.append(float(observed.std()))
                mins.append(float(observed.min()))
                maxs.append(float(observed.max()))
        return Table(
            {
                "column": names,
                "type": types,
                "count": counts,
                "missing": missing,
                "mean": means,
                "std": stds,
                "min": mins,
                "max": maxs,
            }
        )


def concat_tables(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables with identical schemas."""
    tables = [t for t in tables if t.num_columns]
    if not tables:
        return Table()
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise ValueError(
                f"schema mismatch: {t.column_names} vs {names}"
            )
    cols = []
    for n in names:
        ctype = tables[0].column(n).ctype
        data = np.concatenate([t.column(n).values for t in tables])
        cols.append(Column(n, data, ctype))
    return Table(cols)


def _pad_missing(col: Column, n: int) -> Column:
    """Append ``n`` missing markers to ``col``, promoting type if needed."""
    if col.ctype in (ColumnType.INT, ColumnType.BOOL):
        col = col.cast(ColumnType.FLOAT)
    if col.ctype is ColumnType.FLOAT:
        data = np.concatenate([col.values, np.full(n, np.nan)])
        return Column(col.name, data, ColumnType.FLOAT)
    data = np.concatenate([col.values, np.array([None] * n, dtype=object)])
    return Column(col.name, data, ColumnType.STRING)


def _sortable(values: np.ndarray) -> np.ndarray:
    """Encode a column as a lexsort-compatible numeric key.

    Numeric/bool columns pass through; object (string) columns are
    factorised into dense ranks with None sorting first.
    """
    if values.dtype != object:
        return values
    present = sorted({v for v in values if v is not None})
    rank = {v: i + 1 for i, v in enumerate(present)}
    rank[None] = 0
    return np.array([rank[v] for v in values], dtype=np.int64)
