"""Shared, vectorised cohort preprocessing (computed once per cohort).

Every sample-set build and QA pass needs the same expensive group-by
passes over the cohort tables: PRO rows grouped by patient and sorted by
month, monthly activity means, the Frailty Index per visit, and the
clinic of each patient.  The original code recomputed all of them from
per-row Python loops on **every** ``build_dd_samples`` call — once per
(outcome, with_fi, max_gap) configuration, i.e. 11+ times per full
experiment grid.

:class:`CohortPrep` computes them once per cohort as dense numpy arrays
indexed by ``(patient_code, month)`` and caches the result, so repeated
sample-set builds over the same data pay the preprocessing cost once
(cf. the precomputed decision-diagram structures of Popel & Al Hakeem,
PAPERS.md).  All arrays preserve the exact semantics of the old lookup
dicts — patients keep their first-appearance order, later duplicates
overwrite earlier ones — so downstream sample sets are bitwise-identical
to the loop-built originals (proved in ``tests/pipeline/test_groupby.py``).

Concurrency contract: the cache is guarded by a module lock and prep
instances are immutable after construction (the lazily built per-outcome
label planes are guarded by the same lock), so a prep may be shared
freely across threads.  Worker *processes* of the parallel executor each
build their own prep from the cohort they materialise — nothing here is
shared across process boundaries.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.cohort.dataset import CohortDataset
from repro.cohort.schema import ACTIVITY_VARIABLES, pro_item_names
from repro.frailty import FrailtyIndexCalculator
from repro.pipeline.aggregate import monthly_activity

__all__ = ["CohortPrep", "cohort_prep", "group_sort"]

_CACHE: dict[int, "CohortPrep"] = {}
_LOCK = threading.Lock()


def cohort_prep(cohort: CohortDataset) -> "CohortPrep":
    """Memoised :class:`CohortPrep` for a cohort (one per live instance)."""
    key = id(cohort)
    with _LOCK:
        prep = _CACHE.get(key)
        if prep is not None and prep.cohort() is cohort:
            return prep
    # Build outside the lock (construction is the expensive part); a
    # concurrent duplicate build is wasteful but harmless — last wins.
    prep = CohortPrep(cohort)
    with _LOCK:
        _CACHE[key] = prep
        weakref.finalize(cohort, _CACHE.pop, key, None)
    return prep


def group_sort(
    group_keys: np.ndarray, sort_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group rows by key (first-appearance order), sort within groups.

    Returns ``(order, starts, codes, uniques)``: ``order`` permutes rows
    so each group is contiguous, ordered by the group's first appearance,
    rows inside a group sorted by ``sort_keys`` (stable — original row
    order breaks ties); group ``g`` spans
    ``order[starts[g]:starts[g + 1]]`` (``starts`` has a trailing
    sentinel); ``codes`` maps every row to its group index; ``uniques``
    lists the group key values in group order.

    This is the vectorised replacement for the
    ``dict.setdefault(key, []).append(i)`` per-row grouping loops of the
    original pipeline.
    """
    n = len(group_keys)
    if n == 0:
        empty = np.array([], dtype=np.int64)
        return empty, np.array([0], dtype=np.int64), empty, group_keys[:0]
    uniq, first_idx, inverse = np.unique(
        group_keys, return_index=True, return_inverse=True
    )
    inverse = inverse.astype(np.int64, copy=False)
    # np.unique sorts by value; re-rank groups by first appearance so the
    # grouping matches the insertion order of the original dict loops.
    appearance = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[appearance] = np.arange(len(uniq))
    codes = rank[inverse]
    order = np.lexsort((np.arange(n), sort_keys, codes))
    counts = np.bincount(codes, minlength=len(uniq))
    starts = np.concatenate(([0], np.cumsum(counts)))
    return order, starts, codes, uniq[appearance]


class CohortPrep:
    """Dense, reusable indexes over one cohort's tables.

    Attributes
    ----------
    patient_ids:
        Object array of patient ids in first-appearance order (of the
        PRO table); ``code_of`` maps id back to its index.
    pro_order / pro_starts / pro_codes_sorted:
        Group-sorted layout of the PRO table (patients contiguous,
        months ascending inside each patient; see :func:`group_sort`).
    pro_months_sorted / pro_matrix_sorted:
        The PRO months and 56-item matrix in that layout.
    row_of:
        ``(n_patients, n_months + 1)`` position in the *group-sorted*
        layout (``pro_matrix_sorted`` et al.) per (patient, month),
        ``-1`` where absent.
    activity / activity_present:
        ``(n_patients, n_months + 1, 3)`` monthly activity means and the
        matching presence mask.
    fi:
        ``(n_patients, n_months + 1)`` Frailty Index per visit month
        (NaN where no visit).
    clinics:
        Object array: clinic name per patient code.
    """

    def __init__(self, cohort: CohortDataset):
        self._cohort_ref = weakref.ref(cohort)
        self._label_lock = threading.Lock()
        self._labels: dict[str, np.ndarray] = {}

        pro = cohort.pro
        item_names = pro_item_names()
        pids = pro["patient_id"]
        months = pro["month"].astype(np.int64, copy=False)
        matrix = np.column_stack([pro[name] for name in item_names])

        order, starts, codes, uniq = group_sort(pids, months)
        self.patient_ids = uniq
        self.code_of = {pid: i for i, pid in enumerate(uniq)}
        self.pro_order = order
        self.pro_starts = starts
        self.pro_codes_sorted = codes[order]
        self.pro_months_sorted = months[order]
        self.pro_matrix_sorted = matrix[order]

        n_patients = len(uniq)
        visit_months = cohort.visits["visit_month"].astype(np.int64, copy=False)
        n_months = int(
            max(
                months.max(initial=0),
                visit_months.max(initial=0),
                cohort.config.n_months,
            )
        )
        self.n_months = n_months

        row_of = np.full((n_patients, n_months + 1), -1, dtype=np.int64)
        # Assign in sorted order so duplicated (patient, month) rows keep
        # the last one, like the original month_pos dict.
        row_of[self.pro_codes_sorted, self.pro_months_sorted] = np.arange(
            len(order)
        )
        self.row_of = row_of

        monthly = monthly_activity(cohort.daily)
        act_codes = self._codes(monthly["patient_id"])
        act_months = monthly["month"].astype(np.int64, copy=False)
        act_matrix = np.column_stack([monthly[v] for v in ACTIVITY_VARIABLES])
        known = (act_codes >= 0) & (act_months <= n_months)
        self.activity = np.full(
            (n_patients, n_months + 1, len(ACTIVITY_VARIABLES)), np.nan
        )
        self.activity_present = np.zeros((n_patients, n_months + 1), dtype=bool)
        self.activity[act_codes[known], act_months[known]] = act_matrix[known]
        self.activity_present[act_codes[known], act_months[known]] = True

        fi_values = FrailtyIndexCalculator().compute(cohort.visits)
        visit_codes = self._codes(cohort.visits["patient_id"])
        v_known = (visit_codes >= 0) & (visit_months <= n_months)
        self.fi = np.full((n_patients, n_months + 1), np.nan)
        self.fi[visit_codes[v_known], visit_months[v_known]] = fi_values[v_known]
        self._visit_codes = visit_codes
        self._visit_months = visit_months

        clinic_of = cohort.clinic_of()
        self.clinics = np.array(
            [clinic_of[pid] for pid in uniq], dtype=object
        )

    def cohort(self) -> CohortDataset | None:
        """The cohort this prep was built from (None if collected)."""
        return self._cohort_ref()

    def _codes(self, pids: np.ndarray) -> np.ndarray:
        """Map patient ids to codes (-1 for ids unseen in the PRO table)."""
        code_of = self.code_of
        return np.fromiter(
            (code_of.get(p, -1) for p in pids), dtype=np.int64, count=len(pids)
        )

    def labels(self, outcome: str) -> np.ndarray:
        """``(n_patients, n_windows + 1)`` outcome value per window.

        NaN where the (patient, window) has no measured label — the same
        rows the original ``labels.get(...) is None or isnan`` test
        skipped.  Built lazily per outcome and cached (lock-guarded).
        """
        with self._label_lock:
            dense = self._labels.get(outcome)
            if dense is not None:
                return dense
            cohort = self.cohort()
            if cohort is None:  # pragma: no cover - cohort already collected
                raise RuntimeError("cohort was garbage-collected")
            n_windows = cohort.config.n_windows
            values = cohort.visits[outcome].astype(np.float64, copy=False)
            months = self._visit_months
            closing = (months > 0) & (months % 9 == 0)
            windows = np.where(closing, months // 9, 0)
            keep = (
                closing
                & (windows <= n_windows)
                & (self._visit_codes >= 0)
            )
            dense = np.full((len(self.patient_ids), n_windows + 1), np.nan)
            dense[self._visit_codes[keep], windows[keep]] = values[keep]
            self._labels[outcome] = dense
            return dense
