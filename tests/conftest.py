"""Shared fixtures: a scaled-down cohort and sample sets.

Most tests run against a 30-patient cohort (the full 261-patient default
is exercised by the benchmarks and one smoke test) so the whole suite
stays fast while covering every code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cohort import ClinicConfig, CohortConfig, generate_cohort
from repro.pipeline import build_dd_samples, build_kd_samples


def small_config(seed: int = 11) -> CohortConfig:
    """A 30-patient, 3-clinic configuration mirroring the real shape."""
    return CohortConfig(
        seed=seed,
        clinics=(
            ClinicConfig("modena", 14, health_mean=0.62, health_spread=0.15,
                         protocol_noise=0.0, missing_rate=0.50),
            ClinicConfig("sydney", 10, health_mean=0.65, health_spread=0.13,
                         protocol_noise=0.05, missing_rate=0.48),
            ClinicConfig("hong_kong", 6, health_mean=0.60, health_spread=0.07,
                         protocol_noise=0.18, missing_rate=0.56),
        ),
    )


@pytest.fixture(scope="session")
def small_cohort():
    """A deterministic 30-patient cohort shared across the suite."""
    return generate_cohort(small_config())


@pytest.fixture(scope="session")
def qol_dd_samples(small_cohort):
    """DD sample set (QoL, with FI) on the small cohort."""
    return build_dd_samples(small_cohort, "qol", with_fi=True)


@pytest.fixture(scope="session")
def qol_kd_samples(qol_dd_samples):
    """KD counterpart of :func:`qol_dd_samples`."""
    return build_kd_samples(qol_dd_samples)


@pytest.fixture(scope="session")
def falls_dd_samples(small_cohort):
    """DD sample set (Falls, with FI) on the small cohort."""
    return build_dd_samples(small_cohort, "falls", with_fi=True)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
