"""Array-of-nodes regression trees and ensembles.

A fitted tree is a flat set of parallel arrays (the layout XGBoost and
sklearn use), which makes prediction vectorisable and gives
:mod:`repro.explain` TreeSHAP direct access to structure and covers.

Node ``i`` is a leaf iff ``children_left[i] == -1``; then ``value[i]``
holds its (already shrunken) leaf weight.  Internal nodes split on
``feature[i]`` with the rule ``x <= threshold[i] -> left``; NaN goes to
``children_left`` when ``missing_left[i]`` else to ``children_right``.
``cover[i]`` is the sum of training hessians that reached the node.

Trees grown by :class:`repro.boosting.grower.TreeGrower` additionally
carry ``bin_threshold[i]``, the split threshold in bin-code space,
which lets :meth:`Tree.predict_binned` route pre-binned uint8 matrices
without any NaN checks or float comparisons (the fit-time fast path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Tree", "TreeEnsemble"]

#: Sentinel child index marking a leaf.
LEAF = -1


@dataclass
class Tree:
    """One fitted regression tree (see module docstring for layout)."""

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    missing_left: np.ndarray
    value: np.ndarray
    cover: np.ndarray
    #: Split threshold in bin-code space (LEAF for leaves); optional —
    #: only trees grown from binned data carry it.
    bin_threshold: np.ndarray | None = None

    def __post_init__(self):
        n = len(self.children_left)
        for name in (
            "children_right",
            "feature",
            "threshold",
            "missing_left",
            "value",
            "cover",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"node array {name!r} length mismatch")
        if self.bin_threshold is not None and len(self.bin_threshold) != n:
            raise ValueError("node array 'bin_threshold' length mismatch")
        if n == 0:
            raise ValueError("a tree needs at least one node")

    @property
    def n_nodes(self) -> int:
        """Total number of nodes."""
        return len(self.children_left)

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(np.sum(self.children_left == LEAF))

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf."""
        return self.children_left[node] == LEAF

    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = 0).

        Level-synchronous descent: each iteration advances one whole
        tree level with two array gathers, so the Python-loop count is
        the depth, not the node count.
        """
        frontier = np.zeros(1, dtype=np.int64)
        depth = 0
        while True:
            internal = self.children_left[frontier] != LEAF
            if not internal.any():
                return depth
            splits = frontier[internal]
            frontier = np.concatenate(
                (self.children_left[splits], self.children_right[splits])
            )
            depth += 1

    def decision_path(self, x: np.ndarray) -> list[int]:
        """Node indices visited by a single sample (root to leaf)."""
        x = np.asarray(x, dtype=np.float64)
        node = 0
        path = [0]
        while self.children_left[node] != LEAF:
            v = x[self.feature[node]]
            if np.isnan(v):
                go_left = bool(self.missing_left[node])
            else:
                go_left = bool(v <= self.threshold[node])
            node = int(
                self.children_left[node] if go_left else self.children_right[node]
            )
            path.append(node)
        return path

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for every row of ``X`` (raw floats, NaN allowed)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {X.shape}")
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        active = self.children_left[node] != LEAF
        while active.any():
            idx = np.flatnonzero(active)
            nd = node[idx]
            xv = X[idx, self.feature[nd]]
            go_left = np.where(
                np.isnan(xv), self.missing_left[nd], xv <= self.threshold[nd]
            )
            node[idx] = np.where(
                go_left, self.children_left[nd], self.children_right[nd]
            )
            active[idx] = self.children_left[node[idx]] != LEAF
        return self.value[node]

    def predict_binned(self, binned: np.ndarray, missing_bin: int) -> np.ndarray:
        """Leaf values for every row of a pre-binned uint8 matrix.

        Routing happens entirely in bin-code space (``code <=
        bin_threshold`` goes left; ``missing_bin`` follows the learned
        default direction), which is exactly equivalent to raw-threshold
        routing for matrices binned by the mapper the tree was grown
        with, but needs no NaN handling.
        """
        if self.bin_threshold is None:
            raise ValueError(
                "tree has no bin thresholds; it was not grown from binned data"
            )
        binned = np.asarray(binned)
        if binned.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {binned.shape}")
        n = binned.shape[0]
        node = np.zeros(n, dtype=np.int64)
        active = self.children_left[node] != LEAF
        while active.any():
            idx = np.flatnonzero(active)
            nd = node[idx]
            codes = binned[idx, self.feature[nd]]
            go_left = np.where(
                codes == missing_bin,
                self.missing_left[nd],
                codes <= self.bin_threshold[nd],
            )
            node[idx] = np.where(
                go_left, self.children_left[nd], self.children_right[nd]
            )
            active[idx] = self.children_left[node[idx]] != LEAF
        return self.value[node]

    def used_features(self) -> np.ndarray:
        """Sorted unique feature indices used by internal nodes."""
        internal = self.children_left != LEAF
        return np.unique(self.feature[internal])


@dataclass
class TreeEnsemble:
    """An additive ensemble: ``raw(x) = base_score + sum_t tree_t(x)``."""

    base_score: float
    trees: list[Tree] = field(default_factory=list)

    def predict_raw(self, X: np.ndarray, n_trees: int | None = None) -> np.ndarray:
        """Raw (margin) predictions using the first ``n_trees`` trees."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {X.shape}")
        out = np.full(X.shape[0], self.base_score, dtype=np.float64)
        use = self.trees if n_trees is None else self.trees[:n_trees]
        for tree in use:
            out += tree.predict(X)
        return out

    def predict_raw_binned(
        self,
        binned: np.ndarray,
        missing_bin: int,
        n_trees: int | None = None,
    ) -> np.ndarray:
        """Raw predictions from a pre-binned uint8 matrix.

        Every tree must carry ``bin_threshold`` (true for grown and
        format-v2 deserialized trees); routing is the NaN-free bin-space
        path of :meth:`Tree.predict_binned`.
        """
        binned = np.asarray(binned)
        if binned.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {binned.shape}")
        out = np.full(binned.shape[0], self.base_score, dtype=np.float64)
        use = self.trees if n_trees is None else self.trees[:n_trees]
        for tree in use:
            out += tree.predict_binned(binned, missing_bin)
        return out

    @property
    def n_trees(self) -> int:
        """Number of trees in the ensemble."""
        return len(self.trees)

    def total_cover_by_feature(self, n_features: int) -> np.ndarray:
        """Sum of split covers per feature (a cheap global importance).

        One ``np.bincount`` over the concatenated internal nodes of all
        trees.  Both bincount and the ``np.add.at`` loop it replaces
        accumulate element-by-element in input order from zero, so the
        result is bitwise identical to the per-tree scatter-add.
        """
        feats = [tree.feature[tree.children_left != LEAF] for tree in self.trees]
        covers = [tree.cover[tree.children_left != LEAF] for tree in self.trees]
        split_features = (
            np.concatenate(feats) if feats else np.empty(0, dtype=np.int64)
        )
        split_covers = (
            np.concatenate(covers) if covers else np.empty(0, dtype=np.float64)
        )
        if split_features.size and int(split_features.max()) >= n_features:
            raise IndexError(
                f"split feature {int(split_features.max())} out of range "
                f"for {n_features} features"
            )
        return np.bincount(
            split_features, weights=split_covers, minlength=n_features
        )
