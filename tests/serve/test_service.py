"""Unit tests for repro.serve.service (micro-batched scoring)."""

import numpy as np
import pytest

from repro.boosting import GBClassifier, GBRegressor
from repro.boosting.serialize import model_from_dict, model_to_dict
from repro.explain import TreeShapExplainer
from repro.serve import ModelRegistry, ScoreRequest, ScoringService


def explanations_equal(a, b) -> bool:
    """Field equality with NaN-aware raw-value comparison.

    ``LocalExplanation`` is a frozen dataclass, but its ``values`` tuple
    can carry NaN (missing features), and NaN != NaN under ``==``.
    """
    return (
        a.prediction == b.prediction
        and a.expected_value == b.expected_value
        and a.features == b.features
        and a.contributions == b.contributions
        and np.array_equal(np.asarray(a.values), np.asarray(b.values), equal_nan=True)
    )


@pytest.fixture(scope="module")
def regressor():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(300, 6))
    X[rng.random(X.shape) < 0.1] = np.nan
    y = 2 * np.nan_to_num(X[:, 0]) - np.nan_to_num(X[:, 3]) + rng.normal(
        0, 0.1, 300
    )
    return GBRegressor(n_estimators=20, max_depth=3).fit(X, y), X


@pytest.fixture(scope="module")
def classifier():
    rng = np.random.default_rng(8)
    X = rng.normal(size=(250, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return GBClassifier(n_estimators=12, max_depth=2).fit(X, y), X


class TestExactness:
    def test_predictions_bitwise_equal_to_predict(self, regressor):
        model, X = regressor
        service = ScoringService(model)
        results = service.score_rows(X[:50])
        assert np.array_equal(
            [r.prediction for r in results], model.predict(X[:50])
        )

    def test_explanations_bitwise_equal_to_batched_shap(self, regressor):
        model, X = regressor
        service = ScoringService(model, top_k=6)
        results = service.score_rows(X[:30], explain=True)
        phi = TreeShapExplainer(model).shap_values(X[:30])
        for i, result in enumerate(results):
            order = np.argsort(-np.abs(phi[i]))[:6]
            assert result.explanation.contributions == tuple(
                float(phi[i][j]) for j in order
            )

    def test_cached_results_identical_to_fresh(self, regressor):
        model, X = regressor
        service = ScoringService(model)
        first = service.score_rows(X[:25], explain=True)
        second = service.score_rows(X[:25], explain=True)
        assert all(r.cached for r in second)
        assert not any(r.cached for r in first)
        for a, b in zip(first, second):
            assert a.raw_score == b.raw_score
            assert explanations_equal(a.explanation, b.explanation)

    def test_mixed_explain_flags_one_batch(self, regressor):
        model, X = regressor
        service = ScoringService(model)
        requests = [
            ScoreRequest(row=X[i], explain=(i % 2 == 0)) for i in range(20)
        ]
        results = service.score_batch(requests)
        preds = model.predict(X[:20])
        for i, result in enumerate(results):
            assert result.raw_score == preds[i]
            assert (result.explanation is not None) == (i % 2 == 0)
        # One predict sweep and one (10-row) explain sweep.
        assert service.stats.predicted_rows == 20
        assert service.stats.explained_rows == 10

    def test_nan_rows_route_like_predict(self, regressor):
        model, X = regressor
        rows = X[:10].copy()
        rows[:, 0] = np.nan
        service = ScoringService(model)
        results = service.score_rows(rows, explain=True)
        assert np.array_equal(
            [r.prediction for r in results], model.predict(rows)
        )
        # The service's raw scores satisfy the efficiency axiom.
        explainer = TreeShapExplainer(model)
        assert results[0].explanation is not None
        assert results[0].raw_score - explainer.expected_value == pytest.approx(
            float(explainer.shap_values(rows[:1]).sum()), abs=1e-9
        )


class TestCompactPath:
    """The service predicts through the hash-consed DAG; its raw scores
    must be bitwise identical to the per-tree ensemble path, cache-cold
    and cache-hot."""

    def test_service_engine_is_compact(self, regressor):
        from repro.boosting import CompactEnsemble

        model, _ = regressor
        service = ScoringService(model)
        assert isinstance(service._engine, CompactEnsemble)

    def test_raw_scores_bitwise_equal_to_ensemble_cold_and_hot(
        self, regressor
    ):
        model, X = regressor
        codes = model.bin(X[:80])
        reference = model.ensemble_.predict_raw_binned(
            codes, model.mapper_.missing_bin
        )
        service = ScoringService(model)
        cold = service.score_rows(X[:80])
        assert np.array_equal([r.raw_score for r in cold], reference)
        hot = service.score_rows(X[:80])
        assert np.array_equal([r.raw_score for r in hot], reference)
        assert all(r.cached for r in hot)

    def test_classifier_raw_scores_bitwise_equal(self, classifier):
        model, X = classifier
        codes = model.bin(X[:60])
        reference = model.ensemble_.predict_raw_binned(
            codes, model.mapper_.missing_bin
        )
        service = ScoringService(model)
        for _ in range(2):  # cold, then hot
            results = service.score_rows(X[:60])
            assert np.array_equal(
                [r.raw_score for r in results], reference
            )

    def test_materialized_model_uses_mapped_compact(self, regressor):
        from repro.serve.plane import ModelPlane

        model, X = regressor
        plane = ModelPlane.pack(model, version="t")
        worker_model, explainer = ModelPlane.materialize(
            plane.manifest, plane.arrays
        )
        service = ScoringService(
            worker_model, version="t", explainer=explainer
        )
        # The worker service's engine is the zero-copy mapped table,
        # not a freshly consed one.
        assert service._engine is worker_model.compact_
        assert (
            service._engine.children_left is plane.arrays["dag:children_left"]
        )
        reference = model.ensemble_.predict_raw_binned(
            model.bin(X[:50]), model.mapper_.missing_bin
        )
        results = service.score_rows(X[:50])
        assert np.array_equal([r.raw_score for r in results], reference)


class TestCacheBehaviour:
    def test_partial_hit_upgrades_entry(self, regressor):
        model, X = regressor
        service = ScoringService(model)
        service.score_rows(X[:10])  # predictions cached, no SHAP yet
        results = service.score_rows(X[:10], explain=True)
        # Raw score came from cache but SHAP had to be computed.
        assert not any(r.cached for r in results)
        assert service.stats.predicted_rows == 10
        assert service.stats.explained_rows == 10
        again = service.score_rows(X[:10], explain=True)
        assert all(r.cached for r in again)
        assert service.stats.explained_rows == 10  # no recompute

    def test_within_batch_duplicates_computed_once(self, regressor):
        model, X = regressor
        service = ScoringService(model)
        requests = [ScoreRequest(row=X[0], explain=True) for _ in range(8)]
        results = service.score_batch(requests)
        assert service.stats.predicted_rows == 1
        assert service.stats.explained_rows == 1
        assert service.stats.batch_dedup_hits == 7
        assert len({r.raw_score for r in results}) == 1

    def test_equal_codes_share_cache_entries(self, regressor):
        # Two raw rows quantizing to the same codes are indistinguishable
        # to the model, so the second is a legitimate exact cache hit.
        model, X = regressor
        service = ScoringService(model)
        row = X[0].copy()
        service.score_rows(row[None, :])
        nudged = row + 1e-12  # stays within the same bins
        assert np.array_equal(model.bin(nudged[None, :]), model.bin(row[None, :]))
        result = service.score_rows(nudged[None, :])[0]
        assert result.cached
        assert result.prediction == model.predict(row[None, :])[0]

    def test_capacity_smaller_than_batch_still_exact(self, regressor):
        model, X = regressor
        service = ScoringService(model, cache_size=3)
        results = service.score_rows(X[:40], explain=True)
        assert np.array_equal(
            [r.prediction for r in results], model.predict(X[:40])
        )
        assert service.cache_stats.size == 3

    def test_zero_capacity_disables_cache(self, regressor):
        model, X = regressor
        service = ScoringService(model, cache_size=0)
        service.score_rows(X[:5])
        results = service.score_rows(X[:5])
        assert not any(r.cached for r in results)
        assert service.stats.predicted_rows == 10

    def test_distinct_versions_do_not_collide(self, regressor):
        model, X = regressor
        a = ScoringService(model, version="a")
        b = ScoringService(model, version="b")
        key_a = (a.version, model.bin(X[:1]).tobytes())
        key_b = (b.version, model.bin(X[:1]).tobytes())
        assert key_a != key_b


class TestClassifier:
    def test_labels_and_probabilities(self, classifier):
        model, X = classifier
        service = ScoringService(model)
        results = service.score_rows(X[:40])
        assert np.array_equal(
            [r.prediction for r in results],
            model.predict(X[:40]).astype(np.float64),
        )
        assert np.array_equal(
            [r.probability for r in results], model.predict_proba(X[:40])
        )

    def test_cached_probability_identical(self, classifier):
        model, X = classifier
        service = ScoringService(model)
        first = service.score_rows(X[:10])
        second = service.score_rows(X[:10])
        assert [r.probability for r in first] == [
            r.probability for r in second
        ]
        assert all(r.cached for r in second)


class TestRegistryIntegration:
    def test_from_registry_uses_ref_version_and_features(
        self, regressor, tmp_path
    ):
        model, X = regressor
        registry = ModelRegistry(tmp_path)
        names = [f"col{i}" for i in range(6)]
        version = registry.publish("sppb", model, metadata={"features": names})
        service = ScoringService.from_registry(registry, "sppb")
        assert service.version == f"sppb@{version.tag}"
        assert service.feature_names == names
        result = service.score_rows(X[:3], explain=True)[0]
        assert set(result.explanation.features) <= set(names)

    def test_reloaded_service_scores_identically(self, regressor, tmp_path):
        model, X = regressor
        registry = ModelRegistry(tmp_path)
        registry.publish("sppb", model)
        service = ScoringService.from_registry(registry, "sppb")
        direct = ScoringService(model)
        a = service.score_rows(X[:20], explain=True)
        b = direct.score_rows(X[:20], explain=True)
        for ra, rb in zip(a, b):
            assert ra.raw_score == rb.raw_score
            assert explanations_equal(ra.explanation, rb.explanation)


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            ScoringService(GBRegressor())

    def test_model_without_mapper_rejected(self, regressor):
        # Fabricate a dense v1 document (no mapper, per-tree node
        # arrays) — the current writer emits the v3 DAG layout.
        from repro.boosting.serialize import _tree_to_dict

        model, _ = regressor
        doc = model_to_dict(model)
        doc["format_version"] = 1
        doc["trees"] = [_tree_to_dict(t) for t in model.ensemble_.trees]
        del doc["mapper"]
        del doc["dag"]
        v1_model = model_from_dict(doc)
        with pytest.raises(ValueError, match="BinMapper"):
            ScoringService(v1_model)

    def test_wrong_row_shape_rejected(self, regressor):
        model, X = regressor
        service = ScoringService(model)
        with pytest.raises(ValueError, match="request 0"):
            service.score_batch([ScoreRequest(row=X[0][:3])])

    def test_wrong_feature_name_count_rejected(self, regressor):
        model, _ = regressor
        with pytest.raises(ValueError, match="feature names"):
            ScoringService(model, feature_names=["only", "two"])

    def test_empty_batch_is_noop(self, regressor):
        model, _ = regressor
        service = ScoringService(model)
        assert service.score_batch([]) == []
        assert service.stats.requests == 0

    def test_non_2d_matrix_rejected(self, regressor):
        model, X = regressor
        with pytest.raises(ValueError, match="2-D"):
            ScoringService(model).score_rows(X[0])
