"""Pragma negative: a justified suppression silences its finding."""

# repro: scope[deterministic]

import time


def stamp():
    # repro: allow[REP002] -- fixture: wall clock is the point here
    return time.time()


def trailing():
    return time.time()  # repro: allow[REP002] -- trailing form works too
