"""Quantile histogram binning of feature matrices.

Histogram-based boosting discretises every feature into at most
``max_bins`` bins once, before any tree is grown; split finding then
scans bin statistics instead of sorted raw values.  Missing values (NaN)
are mapped to a dedicated bin index (``missing_bin``) and routed by the
learned per-split default direction, exactly like XGBoost's sparsity-
aware splits.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinMapper"]


class BinMapper:
    """Fit per-feature quantile bin edges; transform matrices to bin codes.

    Attributes (after ``fit``)
    --------------------------
    bin_edges_:
        List of ``d`` arrays of *upper* bin boundaries (values ``<=``
        edge fall in the bin); length ``n_bins_[f] - 1``.
    n_bins_:
        Number of non-missing bins actually used per feature (features
        with few distinct values use fewer bins than ``max_bins``).
    missing_bin:
        The bin code reserved for NaN (same for all features).
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 255:
            raise ValueError("max_bins must be in [2, 255]")
        self.max_bins = max_bins
        self.bin_edges_: list[np.ndarray] | None = None
        self.n_bins_: np.ndarray | None = None

    @property
    def missing_bin(self) -> int:
        """Bin code reserved for missing values."""
        return self.max_bins

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Learn bin edges from the training matrix (NaN ignored)."""
        X = _check_matrix(X)
        edges: list[np.ndarray] = []
        n_bins = np.empty(X.shape[1], dtype=np.int64)
        for f in range(X.shape[1]):
            col = X[:, f]
            col = col[~np.isnan(col)]
            if col.size == 0:
                edges.append(np.array([], dtype=np.float64))
                n_bins[f] = 1
                continue
            distinct = np.unique(col)
            if len(distinct) <= self.max_bins:
                # One bin per distinct value; edges at midpoints.
                cut = (distinct[:-1] + distinct[1:]) / 2.0
            else:
                qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
                cut = np.unique(np.quantile(col, qs))
            edges.append(cut.astype(np.float64))
            n_bins[f] = len(cut) + 1
        self.bin_edges_ = edges
        self.n_bins_ = n_bins
        return self

    def transform(self, X: np.ndarray, order: str = "C") -> np.ndarray:
        """Map a raw matrix to bin codes (uint8; NaN -> ``missing_bin``).

        ``order`` selects the memory layout of the output: "C" (default)
        favours row-wise access (prediction), "F" favours the
        column-wise gathers of histogram building in the tree grower.

        Unlike ``fit``, +/-inf is accepted: it clamps to the extreme
        bins, which routes identically to raw-threshold evaluation.
        """
        if self.bin_edges_ is None:
            raise RuntimeError("BinMapper must be fitted before transform")
        if order not in ("C", "F"):
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        X = _check_matrix(X, allow_inf=True)
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"matrix has {X.shape[1]} features, mapper was fitted on "
                f"{len(self.bin_edges_)}"
            )
        out = np.empty(X.shape, dtype=np.uint8, order=order)
        for f, cut in enumerate(self.bin_edges_):
            col = X[:, f]
            codes = np.searchsorted(cut, col, side="left").astype(np.uint8)
            codes[np.isnan(col)] = self.missing_bin
            out[:, f] = codes
        return out

    def fit_transform(self, X: np.ndarray, order: str = "C") -> np.ndarray:
        """``fit`` then ``transform`` on the same matrix.

        ``order`` is forwarded to :meth:`transform` ("F" for training,
        "C" for prediction — the sklearn hist-GBM layout split).
        """
        return self.fit(X).transform(X, order=order)

    def threshold_value(self, feature: int, bin_index: int) -> float:
        """Raw-value threshold equivalent to splitting after ``bin_index``.

        A binned split "bin <= bin_index goes left" equals the raw-value
        split "x <= bin_edges_[feature][bin_index]"; we return that edge
        so fitted trees can be evaluated on raw (un-binned) inputs and so
        explanations read in raw units.

        A ``bin_index`` at or past the last edge denotes the legitimate
        "all non-missing values left, missing right" split, whose raw
        threshold is +inf.
        """
        if self.bin_edges_ is None:
            raise RuntimeError("BinMapper must be fitted first")
        cut = self.bin_edges_[feature]
        if bin_index < 0:
            raise IndexError(f"negative bin_index {bin_index}")
        if bin_index >= len(cut):
            return float("inf")
        return float(cut[bin_index])


def _check_matrix(X: np.ndarray, allow_inf: bool = False) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {X.shape}")
    if not allow_inf and np.isinf(X).any():
        raise ValueError("matrix contains +/-inf; only finite values and NaN allowed")
    return X
