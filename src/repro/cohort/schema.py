"""Variable schema: IC domains, the 56-item PRO bank, activity variables.

The paper's feature space has 59 variables per monthly observation:

* 56 categorical PRO questionnaire answers, each probing one of the five
  WHO Intrinsic Capacity domains (locomotion, cognition, psychological,
  vitality, sensory capacity);
* 3 wearable aggregates (mean daily step count, calories, sleep hours).

The real questionnaire text is proprietary (EQ-5D-5L et al.), so the item
bank below reproduces its *structure*: per-domain item counts, answer
scales (1-5 and 1-10), reversed items, and a spread of informativeness
(``noise_sd``) so that items differ in predictive value — the property
that drives the heterogeneous per-patient Shapley rankings in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "IC_DOMAINS",
    "ProItem",
    "PRO_ITEMS",
    "ACTIVITY_VARIABLES",
    "pro_item_names",
    "items_by_domain",
]

#: The five WHO Intrinsic Capacity domains [16].
IC_DOMAINS: tuple[str, ...] = (
    "locomotion",
    "cognition",
    "psychological",
    "vitality",
    "sensory",
)

#: Wearable aggregates appended to every monthly feature vector.
ACTIVITY_VARIABLES: tuple[str, ...] = ("steps", "calories", "sleep_hours")


@dataclass(frozen=True)
class ProItem:
    """One PRO questionnaire item.

    Attributes
    ----------
    name:
        Column name, e.g. ``"pro_loc_03"``.
    domain:
        The IC domain the item loads on.
    n_levels:
        Number of ordinal answer categories.
    reversed_scale:
        True when a *high* answer indicates *worse* health (e.g. pain or
        stress scales); False when high = better (e.g. mobility scores).
    noise_sd:
        Latent noise before discretisation; higher = less informative.
    skew:
        Threshold skew in (-1, 1); nonzero values bunch answers at one
        end of the scale (ceiling/floor effects common in QoL items).
    """

    name: str
    domain: str
    n_levels: int
    reversed_scale: bool
    noise_sd: float
    skew: float

    def __post_init__(self):
        if self.domain not in IC_DOMAINS:
            raise ValueError(f"unknown IC domain {self.domain!r}")
        if self.n_levels < 2:
            raise ValueError("n_levels must be >= 2")
        if self.noise_sd < 0:
            raise ValueError("noise_sd must be non-negative")
        if not -1.0 < self.skew < 1.0:
            raise ValueError("skew must be in (-1, 1)")


def _build_item_bank() -> tuple[ProItem, ...]:
    """Construct the 56-item bank with the paper's domain coverage.

    Item counts per domain (56 total): locomotion 13, cognition 10,
    psychological 12, vitality 12, sensory 9 — physical function and
    mood dominate the MySAwH app's questionnaires, sensory items are
    fewer, matching the instrument mix described in [9].

    Informativeness tiers cycle within each domain: strong items
    (noise 0.06), medium (0.12), weak (0.25), near-noise (0.45).  Scales
    alternate between 5-level EQ-5D-style and 10-level visual-analogue
    style; roughly a third of the items are reversed.
    """
    counts = {
        "locomotion": 13,
        "cognition": 10,
        "psychological": 12,
        "vitality": 12,
        "sensory": 9,
    }
    prefixes = {
        "locomotion": "loc",
        "cognition": "cog",
        "psychological": "psy",
        "vitality": "vit",
        "sensory": "sen",
    }
    noise_tiers = (0.06, 0.12, 0.12, 0.25, 0.45)
    skews = (0.0, 0.25, -0.25, 0.4, 0.0)
    items: list[ProItem] = []
    for domain in IC_DOMAINS:
        for k in range(counts[domain]):
            items.append(
                ProItem(
                    name=f"pro_{prefixes[domain]}_{k + 1:02d}",
                    domain=domain,
                    n_levels=10 if k % 4 == 3 else 5,
                    reversed_scale=(k % 3 == 1),
                    noise_sd=noise_tiers[k % len(noise_tiers)],
                    skew=skews[k % len(skews)],
                )
            )
    assert len(items) == 56, f"item bank has {len(items)} items, expected 56"
    return tuple(items)


#: The canonical 56-item PRO bank used throughout the reproduction.
PRO_ITEMS: tuple[ProItem, ...] = _build_item_bank()


def pro_item_names() -> list[str]:
    """Names of all 56 PRO items, in canonical order."""
    return [item.name for item in PRO_ITEMS]


def items_by_domain(domain: str) -> list[ProItem]:
    """All items loading on ``domain``.

    Raises
    ------
    ValueError
        If ``domain`` is not one of the five IC domains.
    """
    if domain not in IC_DOMAINS:
        raise ValueError(f"unknown IC domain {domain!r}")
    return [item for item in PRO_ITEMS if item.domain == domain]
