"""Outcome models: QoL, SPPB and Falls at the end-of-window visits.

The paper's three outcomes (section 3) and their generative links:

* **QoL** (EQ-5D-5L visual-analogue scale, in [0, 1]) — an affine map of
  the window's mean psychological, vitality and overall health, plus
  reporting noise; calibrated so the distribution concentrates in the
  0.6-0.9 bins of Fig. 1(a).
* **SPPB** (integer 0..12, lower-limb function) — a discretised, slightly
  saturating map of the window's mean locomotion score; Fig. 1(b) shows
  mass concentrated at 9-12 with a left tail.
* **Falls** (binary, "fell at least once since the previous visit") — a
  Bernoulli with logistic dependence on locomotion and vitality deficits;
  Fig. 1(c) shows a strong "False" majority, the class imbalance that
  collapses KD recall in Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.cohort.config import CohortConfig
from repro.cohort.patients import PatientLatent
from repro.synth import SeedSequenceFactory

__all__ = ["generate_outcomes", "OUTCOME_NAMES"]

#: Canonical outcome identifiers used across the pipeline.
OUTCOME_NAMES: tuple[str, ...] = ("qol", "sppb", "falls")


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def generate_outcomes(
    cfg: CohortConfig,
    patient: PatientLatent,
    seeds: SeedSequenceFactory,
) -> dict[str, np.ndarray]:
    """Outcomes measured at each window-closing visit for one patient.

    Returns ``{"window": int64[w], "visit_month": int64[w],
    "qol": float64[w], "sppb": int64[w], "falls": bool[w]}`` where
    ``w = cfg.n_windows`` and window ``j`` closes at month ``9 * j``.
    """
    rng = seeds.child(patient.patient_id).generator("outcomes")
    windows = np.arange(1, cfg.n_windows + 1, dtype=np.int64)
    visit_months = 9 * windows

    qol = np.empty(len(windows))
    sppb = np.empty(len(windows), dtype=np.int64)
    falls = np.empty(len(windows), dtype=bool)

    for idx, j in enumerate(windows):
        months = cfg.window_months(int(j))
        h = patient.window_mean(months)
        loco = patient.window_mean(months, "locomotion")
        vita = patient.window_mean(months, "vitality")
        psy = patient.window_mean(months, "psychological")

        qol_mean = 0.30 + 0.78 * (0.40 * psy + 0.25 * vita + 0.35 * h)
        qol[idx] = float(np.clip(qol_mean + rng.normal(0.0, 0.045), 0.0, 1.0))

        sppb_latent = 12.0 * np.clip(
            0.22 + 1.05 * loco + rng.normal(0.0, 0.05), 0.0, 1.0
        )
        sppb[idx] = int(np.clip(np.round(sppb_latent), 0, 12))

        # Calibrated so the marginal rate ~ cfg.falls_base_rate at the
        # population's typical locomotion/vitality levels.
        base_logit = np.log(cfg.falls_base_rate / (1.0 - cfg.falls_base_rate)) - 0.35
        risk = base_logit + 6.0 * (0.58 - loco) + 2.5 * (0.58 - vita)
        falls[idx] = bool(rng.random() < _sigmoid(risk))

    return {
        "window": windows,
        "visit_month": visit_months,
        "qol": qol,
        "sppb": sppb,
        "falls": falls,
    }
