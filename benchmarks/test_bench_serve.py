"""Serving bench — repeated-cohort scoring through ``repro.serve``.

The serving workload the ROADMAP targets: a fitted model answers a
stream of per-visit requests (predict + top-5 attribution report), where
the same patients recur across visits.  The naive path — what a caller
would write without the serve subsystem — issues one ``predict`` and one
``shap_values`` per request against single-row matrices; the service
micro-batches requests into single engine calls and serves recurring
rows from the exact (bin-code-keyed) result cache.

The acceptance target is a >= 5x throughput win for repeated-cohort
traffic; in practice micro-batching alone clears it and the cache adds
an order of magnitude on top.
"""

import time

import numpy as np

from benchmarks.conftest import record, record_bench
from repro.explain import TreeShapExplainer, local_reports
from repro.serve import ModelRegistry, ScoreRequest, ScoringService

#: Visits per patient in the request stream (each distinct row recurs).
REVISITS = 4
#: Requests per service micro-batch (a realistic queue drain size).
MICRO_BATCH = 64


def _naive_pass(model, explainer, stream, feature_names):
    """Per-request scoring: one predict + one explain call per visit."""
    out = []
    for row in stream:
        prediction = model.predict(row[None, :])[0]
        phi = explainer.shap_values(row[None, :])
        report = local_reports(
            phi, row[None, :], feature_names, explainer.expected_value
        )[0]
        out.append((prediction, report))
    return out


def _service_pass(service, stream):
    """Micro-batched scoring of the same stream."""
    out = []
    for start in range(0, len(stream), MICRO_BATCH):
        block = stream[start : start + MICRO_BATCH]
        results = service.score_batch(
            [ScoreRequest(row=row, explain=True) for row in block]
        )
        out.extend((r.prediction, r.explanation) for r in results)
    return out


def test_serve_repeated_cohort_throughput(ctx, results_dir, tmp_path):
    samples = ctx.samples("sppb", "dd", with_fi=True)
    result = ctx.result("sppb", "dd", with_fi=True)
    feature_names = list(samples.feature_names)

    # The recurring cohort: held-out patients visiting REVISITS times.
    cohort_rows = samples.X[result.test_idx]
    stream = [row for _ in range(REVISITS) for row in cohort_rows]

    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("sppb", result.model, metadata={"features": feature_names})
    service = ScoringService.from_registry(registry, "sppb")
    naive_explainer = TreeShapExplainer(result.model)

    t0 = time.perf_counter()
    served = _service_pass(service, stream)
    t_service = time.perf_counter() - t0

    # The per-request path is slow enough that (like the Fig. 6 bench)
    # it is timed on a one-visit slice and compared per request.
    n_naive = len(cohort_rows)
    t0 = time.perf_counter()
    naive = _naive_pass(
        result.model, naive_explainer, stream[:n_naive], feature_names
    )
    t_naive = time.perf_counter() - t0

    # Same answers: raw scores bitwise equal to predict(); attribution
    # reports agree to float tolerance (the batched engine's reductions
    # run in a different summation order than 1-row calls, so cross-
    # batch-shape SHAP values match to ~1e-12, not bitwise — same-shape
    # bitwise equality is covered in tests/serve/test_registry.py).
    assert len(served) == len(stream)
    for (p_served, e_served), (p_naive, e_naive) in zip(served, naive):
        assert p_served == p_naive
        assert e_served.features == e_naive.features
        assert np.allclose(
            e_served.contributions, e_naive.contributions, atol=1e-10
        )

    n = len(stream)
    speedup = (t_naive / n_naive) / (t_service / n)
    cache = service.cache_stats
    record(
        results_dir,
        "serve_throughput",
        (
            "SERVE bench (micro-batched + cached vs per-request scoring)\n"
            f"  model: {result.model.ensemble_.n_trees} trees, "
            f"{len(cohort_rows)} distinct patients x {REVISITS} visits "
            f"= {n} requests (predict + top-5 SHAP report each)\n"
            f"  naive per-request: {t_naive:.3f}s for {n_naive} requests "
            f"({n_naive / t_naive:.0f} req/s)\n"
            f"  scoring service:   {t_service:.3f}s for {n} requests "
            f"({n / t_service:.0f} req/s), cache hit rate "
            f"{100 * cache.hit_rate:.0f}%\n"
            f"  per-request speedup: {speedup:.1f}x (target >= 5x)"
        ),
    )
    record_bench(
        results_dir,
        "serve_throughput",
        t_service,
        speedup=speedup,
        config={
            "requests": n,
            "distinct_rows": n_naive,
            "revisits": REVISITS,
            "micro_batch": MICRO_BATCH,
        },
    )
    assert speedup >= 5.0


def test_serve_cache_hot_latency(ctx, results_dir, tmp_path):
    """A fully warmed cache answers a whole cohort in near-zero time."""
    samples = ctx.samples("sppb", "dd", with_fi=True)
    result = ctx.result("sppb", "dd", with_fi=True)
    rows = samples.X[result.test_idx]

    service = ScoringService(
        result.model, feature_names=list(samples.feature_names)
    )
    service.score_rows(rows, explain=True)  # warm
    t0 = time.perf_counter()
    results = service.score_rows(rows, explain=True)
    t_hot = time.perf_counter() - t0

    assert all(r.cached for r in results)
    cold = service.stats.total_seconds - t_hot
    record(
        results_dir,
        "serve_cache_hot",
        (
            "SERVE cache-hot latency\n"
            f"  {rows.shape[0]} explained visits: cold {cold * 1e3:.1f} ms, "
            f"hot {t_hot * 1e3:.1f} ms "
            f"({rows.shape[0] / max(t_hot, 1e-9):.0f} req/s hot)"
        ),
    )
    record_bench(
        results_dir,
        "serve_cache_hot",
        t_hot,
        speedup=cold / max(t_hot, 1e-9),
        config={"rows": int(rows.shape[0])},
    )
    # The hot pass must be dramatically cheaper than the cold pass.
    assert t_hot < cold
