"""Batched exact path-dependent TreeSHAP (Lundberg et al. 2018, Alg. 2).

For one tree and one sample, Shapley values of the tree's conditional-
expectation value function are computed in ``O(L * D^2)`` by maintaining,
along each root-to-leaf path, the weighted fractions of feature subsets
that flow down the path ("EXTEND"/"UNWIND" bookkeeping).  Ensemble SHAP
values are sums over trees, plus the ensemble ``base_score`` folded into
the expected value.

This module holds the *batched* engine: each tree's decision structure
is preprocessed once into :class:`repro.explain.structure.TreeStructure`
(root-to-leaf path feature/cover-fraction arrays, duplicate-feature
merge, null-entry padding), every sample's go-left decision at every
internal node is evaluated in one vectorized pass (optionally in bin-code
space through a fitted :class:`repro.boosting.binning.BinMapper` — the
same fast path :meth:`Tree.predict_binned` uses), and the EXTEND/UNWIND
recurrences then run as NumPy array operations across an entire
``(n_samples, n_leaves)`` panel at once instead of one recursive Python
pass per (sample, tree).

Correctness anchors:

* the recursive oracle in :mod:`repro.explain.reference`
  (``ReferenceTreeShapExplainer``) — matched to strict float tolerance;
* brute-force subset enumeration in :mod:`repro.explain.exact`;

both exercised over NaN routing, duplicated path features, permuted
node layouts and single-node trees in
``tests/explain/test_batched_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import TreeEnsemble
from repro.explain.structure import (
    TreeStructure,
    node_decisions,
    node_decisions_binned,
)

__all__ = ["TreeShapExplainer"]


def _extend_weights(one: np.ndarray, zero: np.ndarray) -> np.ndarray:
    """EXTEND the subset-weight recurrence across a (samples, leaves) panel.

    ``one`` is ``(n, L, m)`` per-sample one fractions (0/1 floats),
    ``zero`` is ``(L, m)`` zero fractions.  Returns the ``(n, L, m+1)``
    path-weight tensor: position ``k`` holds the summed weight of
    feature subsets of size ``k`` flowing down each leaf's path (index 0
    is Algorithm 2's dummy root entry).
    """
    n, L, m = one.shape
    weights = np.zeros((n, L, m + 1), dtype=np.float64)
    weights[..., 0] = 1.0
    for d in range(1, m + 1):
        o_d = one[..., d - 1]
        z_d = zero[:, d - 1]
        for i in range(d - 1, -1, -1):
            weights[..., i + 1] += o_d * weights[..., i] * ((i + 1) / (d + 1))
            weights[..., i] *= z_d * ((d - i) / (d + 1))
    return weights


def _unwound_sums(
    weights: np.ndarray, one_e: np.ndarray, zero_e: np.ndarray
) -> np.ndarray:
    """Summed weights after hypothetically UNWINDing one path entry.

    ``weights`` is ``(n, L, M+1)``; ``one_e``/``zero_e`` are the entry's
    fractions, shapes ``(n, L)`` and ``(L,)``.  Both the hot
    (``one == 1``) and cold (``one == 0``) closed forms are evaluated
    vectorized and selected per element.
    """
    M = weights.shape[-1] - 1
    nvec = weights[..., M].copy()
    total_hot = np.zeros_like(nvec)
    for i in range(M - 1, -1, -1):
        tmp = nvec * ((M + 1) / (i + 1))
        total_hot += tmp
        nvec = weights[..., i] - tmp * zero_e * ((M - i) / (M + 1))
    coef = (M + 1) / (M - np.arange(M, dtype=np.float64))
    # Elementwise product + fixed-axis sum instead of a matmul: the
    # reduction order then depends only on M, never on the batch shape,
    # keeping per-row results bitwise stable under any batching.
    total_cold = (weights[..., :M] * coef).sum(axis=-1) / zero_e
    return np.where(one_e == 1.0, total_hot, total_cold)


def _plain_deltas(
    struct: TreeStructure, one: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Per-(sample, leaf, entry) unconditioned SHAP deltas."""
    delta = np.empty_like(one)
    for e in range(one.shape[-1]):
        total = _unwound_sums(weights, one[..., e], struct.zeros[:, e])
        delta[..., e] = (
            total * (one[..., e] - struct.zeros[:, e]) * struct.leaf_values
        )
    return delta


def _accumulate_tree(
    struct: TreeStructure, decisions: np.ndarray, phi: np.ndarray
) -> None:
    """Add one tree's SHAP values for all samples into ``phi``."""
    one = struct.hot_fractions(decisions)
    weights = _extend_weights(one, struct.zeros)
    n, L, m = one.shape
    delta = _plain_deltas(struct, one, weights)
    phi[:, struct.used] += struct.fold(delta.reshape(n, L * m))


class _PreprocessedExplainer:
    """Shared model intake for the batched explainers.

    Extracts the ensemble, builds one :class:`TreeStructure` per tree,
    records the fitted feature count (strict input validation) and the
    fitted ``BinMapper`` (bin-space routing fast path), and provides the
    per-tree decision-matrix dispatch.
    """

    def __init__(self, model, structures=None):
        ensemble = getattr(model, "ensemble_", model)
        if not isinstance(ensemble, TreeEnsemble):
            raise TypeError(
                "model must be a TreeEnsemble or a fitted GB estimator"
            )
        if ensemble.n_trees == 0:
            raise ValueError("cannot explain an empty ensemble")
        self.ensemble = ensemble
        #: Feature count the model was fitted on (None for bare ensembles).
        self.n_features_ = getattr(model, "n_features_", None)
        #: The BinMapper the trees were grown with, enabling bin-space
        #: routing; None falls back to raw thresholds.  Must be the
        #: fitted model's own mapper — codes from any other mapper are
        #: meaningless against the trees' ``bin_threshold``.
        self.bin_mapper = getattr(model, "mapper_", None)
        if structures is None:
            structures = [TreeStructure(t) for t in ensemble.trees]
        elif len(structures) != ensemble.n_trees:
            raise ValueError(
                f"got {len(structures)} prebuilt structures for an "
                f"ensemble of {ensemble.n_trees} trees"
            )
        # Prebuilt structures let a shared-memory model plane
        # (repro.serve.plane) pay the per-tree preprocessing once per
        # version instead of once per worker process.
        self._structures = structures
        self._min_features = max(
            (s.min_features for s in self._structures), default=0
        )
        self._binnable = all(
            t.bin_threshold is not None for t in ensemble.trees
        )

    def _check_columns(self, n_columns: int) -> None:
        if self.n_features_ is not None and n_columns != self.n_features_:
            raise ValueError(
                f"X has {n_columns} feature columns, but the explained "
                f"model was fitted on {self.n_features_} features"
            )
        if n_columns < self._min_features:
            raise ValueError(
                f"X has {n_columns} feature columns, but the ensemble "
                f"splits on feature index {self._min_features - 1}"
            )

    @property
    def supports_binned(self) -> bool:
        """Whether pre-binned uint8 codes can be routed directly."""
        return self.bin_mapper is not None and self._binnable

    def _decisions_for(self, X: np.ndarray):
        """Per-tree go-left decision factory (binned when possible)."""
        if self.supports_binned:
            # F order: the per-tree decision matrices gather columns.
            binned = self.bin_mapper.transform(X, order="F")
            return self._decisions_for_binned(binned)
        return lambda tree: node_decisions(tree, X)

    def _decisions_for_binned(self, binned: np.ndarray):
        """Per-tree decision factory over already-quantized codes."""
        missing_bin = self.bin_mapper.missing_bin
        return lambda tree: node_decisions_binned(tree, binned, missing_bin)

    def _check_binned(self, binned: np.ndarray) -> np.ndarray:
        if not self.supports_binned:
            raise RuntimeError(
                "model carries no fitted BinMapper / bin thresholds; "
                "use the raw-input entry point instead"
            )
        binned = np.asarray(binned)
        if binned.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {binned.shape}")
        self._check_columns(binned.shape[1])
        return binned


class TreeShapExplainer(_PreprocessedExplainer):
    """Exact batched TreeSHAP over a fitted ensemble.

    Parameters
    ----------
    model:
        Either a :class:`~repro.boosting.tree.TreeEnsemble` or a fitted
        estimator exposing ``ensemble_`` (``GBRegressor``,
        ``GBClassifier``).  Fitted estimators also contribute their
        recorded feature count (strict input validation) and their
        ``mapper_`` (bin-space routing fast path).

    Notes
    -----
    Attributions are on the *raw score* scale (log-odds for the
    classifier), matching ``shap.TreeExplainer`` with default arguments:
    ``expected_value + shap_values(x).sum() == raw_prediction(x)``
    exactly (the efficiency axiom, property-tested).
    """

    def __init__(self, model, structures=None):
        super().__init__(model, structures)
        self.expected_value = self.ensemble.base_score + sum(
            s.expected_value for s in self._structures
        )

    def shap_values(self, X: np.ndarray) -> np.ndarray:
        """SHAP values, shape ``(n_samples, n_features)``.

        ``X`` may contain NaN (routed by each split's default direction,
        like prediction).  When the model's fitted ``BinMapper`` is
        available and every tree carries bin thresholds, sample routing
        runs in bin-code space — exactly equivalent to raw-threshold
        routing, but free of NaN checks.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {X.shape}")
        self._check_columns(X.shape[1])

        decisions_for = self._decisions_for(X)
        phi = np.zeros(X.shape, dtype=np.float64)
        for struct in self._structures:
            if struct.n_entries == 0:
                continue
            _accumulate_tree(struct, decisions_for(struct.tree), phi)
        return phi

    def shap_values_single(self, x: np.ndarray) -> np.ndarray:
        """SHAP values of one sample, shape ``(n_features,)``."""
        return self.shap_values(np.asarray(x)[None, :])[0]

    def shap_values_binned(self, binned: np.ndarray) -> np.ndarray:
        """SHAP values from pre-binned uint8 codes.

        ``binned`` must come from the model's own fitted ``BinMapper``
        (e.g. ``model.bin(X)``); the result is bitwise-identical to
        :meth:`shap_values` on the raw rows.  This is the serving entry
        point: repeated requests reuse the preprocessed tree structures
        *and* skip re-quantization.
        """
        binned = self._check_binned(binned)
        decisions_for = self._decisions_for_binned(binned)
        phi = np.zeros(binned.shape, dtype=np.float64)
        for struct in self._structures:
            if struct.n_entries == 0:
                continue
            _accumulate_tree(struct, decisions_for(struct.tree), phi)
        return phi
