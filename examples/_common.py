"""Shared helpers for the example scripts."""

from __future__ import annotations

from repro import ClinicConfig, CohortConfig


def demo_config(full: bool) -> CohortConfig:
    """A fast 50-patient demo cohort, or the paper-scale 261 patients."""
    if full:
        return CohortConfig(seed=7)
    return CohortConfig(
        seed=7,
        clinics=(
            ClinicConfig("modena", 24),
            ClinicConfig("sydney", 18),
            ClinicConfig("hong_kong", 8, health_spread=0.07, protocol_noise=0.18),
        ),
    )
