"""ShardedPool self-healing under deterministic fault injection.

The contract under test (see ``docs/determinism.md``): a kill
schedule — any kill schedule — changes no result bit at any worker
count.  A crashed worker's tasks are recomputed in-process for the
batch that lost it, the supervisor respawns the slot (bounded budget,
exponential backoff) and the respawned worker owns the exact same
shards, so every scatter matches the serial reference bit for bit.
Stuck (not just dead) workers are detected by the per-task deadline
and replaced the same way.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.faults import fault_plan, kill_schedule
from repro.parallel import ShardedPool
from repro.parallel.executor import resolve_deadline


def _shard_sum(payload, state):
    return float(state["X"][payload].sum()) + payload


def _make_pool(jobs: int, **kwargs) -> tuple[ShardedPool, np.ndarray]:
    X = np.arange(8192.0).reshape(128, 64)
    pool = ShardedPool(n_jobs=jobs, shared={"X": X}, **kwargs)
    if pool.workers != jobs:
        pool.close()
        pytest.skip("process backend unavailable")
    return pool, X


def _tasks(n: int = 12) -> list[tuple[int, int]]:
    return [(i % 4, i) for i in range(n)]


def _reference(X: np.ndarray, tasks) -> list[float]:
    return [_shard_sum(payload, {"X": X}) for _, payload in tasks]


def _await_recovery(pool, X, tasks, expected_respawns, timeout=8.0):
    """Scatter until every slot is respawned, asserting identity each time.

    Respawns are paced by the supervisor's exponential backoff, so
    recovery needs a few batches of wall time — but every batch in the
    degraded window must already be bitwise right.
    """
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
        if (
            pool.workers_alive == pool.workers
            and pool.workers_respawned >= expected_respawns
        ):
            return
        time.sleep(0.1)
    pytest.fail(
        f"no recovery: alive={pool.workers_alive}/{pool.workers}, "
        f"respawned={pool.workers_respawned} (wanted {expected_respawns})"
    )


class TestKillScheduleMatrix:
    """kill schedules × worker counts: bitwise identity, then recovery."""

    @pytest.mark.parametrize("jobs", [2, 3])
    @pytest.mark.parametrize(
        "spec",
        [
            "kill@shard.send:w=0:n=0",
            "kill@shard.send:w=1:n=2",
            "kill@shard.send:w=1:n=1;kill@shard.send:w=0:n=4",
        ],
    )
    def test_fixed_schedules(self, jobs, spec):
        pool, X = _make_pool(jobs)
        tasks = _tasks()
        kills = spec.count("kill@")
        try:
            with fault_plan(spec):
                for _ in range(3):
                    assert pool.scatter(_shard_sum, tasks) == _reference(
                        X, tasks
                    )
                _await_recovery(pool, X, tasks, expected_respawns=kills)
            assert pool.workers_respawned == kills
            assert pool.deadline_kills == 0
        finally:
            pool.close()

    @pytest.mark.parametrize("jobs", [2, 3])
    @pytest.mark.parametrize("seed", [7, 19])
    def test_seeded_schedules(self, jobs, seed):
        plan = kill_schedule(seed, workers=jobs, max_at=6, kills=2)
        pool, X = _make_pool(jobs)
        tasks = _tasks(16)
        try:
            with fault_plan(plan):
                _await_recovery(pool, X, tasks, expected_respawns=2)
        finally:
            pool.close()


class TestDeadline:
    def test_resolve_deadline_convention(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_DEADLINE", raising=False)
        assert resolve_deadline() is None
        assert resolve_deadline(2.5) == 2.5
        monkeypatch.setenv("REPRO_TASK_DEADLINE", "1.5")
        assert resolve_deadline() == 1.5
        assert resolve_deadline(3.0) == 3.0  # argument beats env
        monkeypatch.setenv("REPRO_TASK_DEADLINE", "0")
        assert resolve_deadline() is None  # <= 0 disables
        monkeypatch.setenv("REPRO_TASK_DEADLINE", "soon")
        with pytest.raises(ValueError, match="REPRO_TASK_DEADLINE"):
            resolve_deadline()

    def test_stuck_worker_reaped_and_recomputed(self, monkeypatch):
        # Worker-side rules ride the environment so they reach workers
        # under either start method; max_respawns=0 keeps the outcome
        # deterministic (worker-side rules replay in respawned workers).
        monkeypatch.setenv("REPRO_FAULTS", "stall@shard.task:w=1:n=1:s=30")
        pool, X = _make_pool(2, task_deadline=0.5, max_respawns=0)
        tasks = _tasks()
        try:
            t0 = time.perf_counter()
            assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
            assert time.perf_counter() - t0 < 10.0  # reaped, not waited out
            assert pool.deadline_kills == 1
            assert pool.workers_alive == 1
            # Permanent in-process fallback for the dead slot.
            assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
            assert pool.workers_respawned == 0
        finally:
            pool.close()

    def test_stuck_worker_respawned_under_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "stall@shard.task:w=0:n=0:s=30")
        pool, X = _make_pool(2, task_deadline=0.4)
        tasks = _tasks()
        try:
            assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
            assert pool.deadline_kills >= 1
            # The stall replays in each respawned worker (its plan copy
            # starts unfired), so the slot crash-loops until the budget
            # is spent — results stay bitwise right the whole way down.
            deadline = time.perf_counter() + 15.0
            while time.perf_counter() < deadline:
                assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
                if pool.workers_respawned >= pool.max_respawns:
                    break
                time.sleep(0.1)
            assert pool.workers_respawned == pool.max_respawns
        finally:
            pool.close()


class TestCrashLoops:
    def test_exit_crash_recovers_until_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "exit@shard.task:w=0:n=0")
        pool, X = _make_pool(2)
        tasks = _tasks()
        try:
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
                if pool.workers_respawned >= pool.max_respawns:
                    break
                time.sleep(0.1)
            assert pool.workers_respawned == pool.max_respawns
            # Budget spent: the slot stays on the in-process fallback.
            assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
            assert pool.workers_alive == 1
        finally:
            pool.close()

    def test_shm_attach_failure_degrades_cleanly(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail@shm.attach:w=1:x=10")
        pool, X = _make_pool(2)
        tasks = _tasks()
        try:
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
                if pool.workers_respawned >= pool.max_respawns:
                    break
                time.sleep(0.1)
            assert pool.workers_alive == 1
            assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
        finally:
            pool.close()

    def test_respawn_disabled_keeps_legacy_semantics(self):
        with fault_plan("kill@shard.send:w=0:n=0"):
            pool, X = _make_pool(2, max_respawns=0)
            tasks = _tasks()
            try:
                for _ in range(3):
                    assert pool.scatter(_shard_sum, tasks) == _reference(
                        X, tasks
                    )
                assert pool.workers_alive == 1
                assert pool.workers_respawned == 0
            finally:
                pool.close()


class TestCloseUnderFaults:
    def test_close_terminates_stuck_worker_and_unlinks(self, monkeypatch):
        """A worker wedged mid-loop cannot hold close() or leak segments."""
        from multiprocessing import shared_memory

        monkeypatch.setenv(
            "REPRO_FAULTS", "stall@shard.task.done:w=0:n=0:s=60"
        )
        pool, X = _make_pool(2, close_timeout=0.5)
        tasks = _tasks(4)
        # The stall fires *after* the result is sent, so the batch
        # completes — then the worker sleeps through the shutdown
        # sentinel and must be terminated within the close deadline.
        assert pool.scatter(_shard_sum, tasks) == _reference(X, tasks)
        names = [segment.name for segment in pool._segments]
        assert names, "expected the pool to export shared segments"
        procs = list(pool._procs)
        t0 = time.perf_counter()
        pool.close()
        assert time.perf_counter() - t0 < 10.0
        assert all(not proc.is_alive() for proc in procs if proc is not None)
        for name in names:
            try:
                leaked = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            leaked.close()
            pytest.fail(f"segment {name} leaked past close()")
