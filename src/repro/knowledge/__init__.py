"""Knowledge-driven (KD) substrate: IC ontology, expert cutoffs, the ICI.

The paper's KD baseline is the Intrinsic Capacity Index (ICI) of Guaraldi
et al. [9]: clinical experts select a subset of the PRO/activity variables
covering the five WHO Intrinsic Capacity domains, define a scoring
function per variable (usually a binary cutoff, occasionally a graded
[0, 1] map), and average the scores.

This package models that expert knowledge explicitly:

``IntrinsicCapacityOntology``
    A small concept hierarchy (intrinsic capacity -> domains ->
    variables) on a ``networkx`` DiGraph, with provenance on every edge.
``CutoffRule`` / ``ThresholdScore`` / ``LinearBandScore``
    Scoring functions ``s_i(x)`` mapping a variable value to [0, 1].
``ICICalculator``
    The normalised-sum ICI of section 4 of the paper.
``default_ici_specification``
    The expert rule set used by the reproduction's KD arm.
"""

from repro.knowledge.ici import (
    ICICalculator,
    ICISpecification,
    default_ici_specification,
)
from repro.knowledge.ontology import IntrinsicCapacityOntology
from repro.knowledge.scoring import (
    CutoffRule,
    LinearBandScore,
    ScoreFunction,
    ThresholdScore,
)

__all__ = [
    "IntrinsicCapacityOntology",
    "CutoffRule",
    "LinearBandScore",
    "ScoreFunction",
    "ThresholdScore",
    "ICICalculator",
    "ICISpecification",
    "default_ici_specification",
]
