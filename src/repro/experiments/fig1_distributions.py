"""FIG1 — outcome distributions (paper Fig. 1).

The paper plots (log-scale) histograms of QoL in 0.1-wide bins, SPPB
counts per index value, and the Falls False/True bar chart.  The runner
returns the same series for the synthetic cohort.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext, default_context

__all__ = ["run_fig1", "render_fig1"]


def run_fig1(context: ExperimentContext | None = None) -> dict[str, object]:
    """Return the three distribution series of Fig. 1.

    Returns
    -------
    dict
        ``qol_bins`` / ``qol_counts`` — 0.1-wide histogram of QoL;
        ``sppb_values`` / ``sppb_counts`` — counts per SPPB index;
        ``falls_false`` / ``falls_true`` — class counts.
        Counts are over *labelled visits* (one per patient-window).
    """
    ctx = context or default_context()
    visits = ctx.cohort.outcome_visits()
    qol = visits["qol"]
    sppb = visits["sppb"]
    falls = visits["falls"]

    qol = qol[~np.isnan(qol)]
    qol_edges = np.round(np.arange(0.0, 1.01, 0.1), 10)
    qol_counts, _ = np.histogram(qol, bins=qol_edges)

    sppb = sppb[~np.isnan(sppb)].astype(np.int64)
    sppb_values = np.arange(0, 13)
    sppb_counts = np.bincount(sppb, minlength=13)[:13]

    falls = falls[~np.isnan(falls)].astype(bool)
    return {
        "qol_bin_edges": qol_edges,
        "qol_counts": qol_counts,
        "sppb_values": sppb_values,
        "sppb_counts": sppb_counts,
        "falls_false": int(np.sum(~falls)),
        "falls_true": int(np.sum(falls)),
    }


def render_fig1(result: dict[str, object]) -> str:
    """Plain-text rendering of the three panels."""
    lines = ["FIG1(a) QoL distribution (bin: count)"]
    edges = result["qol_bin_edges"]
    for i, count in enumerate(result["qol_counts"]):
        lines.append(f"  {edges[i]:.1f}-{edges[i + 1]:.1f}: {count}")
    lines.append("FIG1(b) SPPB distribution (index: count)")
    for value, count in zip(result["sppb_values"], result["sppb_counts"]):
        lines.append(f"  {value:2d}: {count}")
    lines.append("FIG1(c) Falls distribution")
    lines.append(f"  False: {result['falls_false']}")
    lines.append(f"  True:  {result['falls_true']}")
    return "\n".join(lines)
