"""Monotone ordinal links: latent score -> categorical answer.

The 56 PRO questionnaire items are categorical (the paper's examples use
1..10 stress scales and 1..5 EQ-5D-style items).  Each item is modelled as
an ordinal discretisation of a latent domain score through item-specific
thresholds; some items are *reversed* (high answer = worse health) and
some are nearly uninformative — this heterogeneity is what makes per-
patient Shapley rankings differ (paper Fig. 6).
"""

from __future__ import annotations

import numpy as np

__all__ = ["OrdinalLink"]


class OrdinalLink:
    """Map a latent score in [0, 1] to ordinal answers ``1..n_levels``.

    Parameters
    ----------
    n_levels:
        Number of answer categories (>= 2).
    thresholds:
        Strictly increasing cut points in (0, 1), length ``n_levels - 1``.
        A latent value below ``thresholds[0]`` maps to answer 1, etc.
    reversed_scale:
        If True the answer order is flipped (answer 1 = best health).
    noise_sd:
        Standard deviation of latent noise added before discretisation;
        larger values make the item less informative.
    """

    def __init__(
        self,
        n_levels: int,
        thresholds: np.ndarray | list[float],
        reversed_scale: bool = False,
        noise_sd: float = 0.1,
    ):
        if n_levels < 2:
            raise ValueError("n_levels must be >= 2")
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (n_levels - 1,):
            raise ValueError(
                f"need {n_levels - 1} thresholds for {n_levels} levels, "
                f"got {thresholds.shape}"
            )
        if np.any(np.diff(thresholds) <= 0):
            raise ValueError("thresholds must be strictly increasing")
        if np.any((thresholds <= 0) | (thresholds >= 1)):
            raise ValueError("thresholds must lie strictly inside (0, 1)")
        if noise_sd < 0:
            raise ValueError("noise_sd must be non-negative")
        self.n_levels = int(n_levels)
        self.thresholds = thresholds
        self.reversed_scale = bool(reversed_scale)
        self.noise_sd = float(noise_sd)

    @classmethod
    def equispaced(
        cls,
        n_levels: int,
        reversed_scale: bool = False,
        noise_sd: float = 0.1,
        skew: float = 0.0,
    ) -> "OrdinalLink":
        """Build a link with (optionally skewed) equispaced thresholds.

        ``skew`` in (-1, 1) warps the cut points towards 0 (negative) or 1
        (positive) with a power transform, modelling items whose answers
        bunch at one end of the scale.
        """
        if not -1.0 < skew < 1.0:
            raise ValueError("skew must be in (-1, 1)")
        base = np.linspace(0, 1, n_levels + 1)[1:-1]
        # Positive skew raises the cut points (exponent < 1 on a base in
        # (0, 1)), so high answers become rarer (ceiling effect).
        exponent = (1.0 - skew) / (1.0 + skew)
        return cls(n_levels, base**exponent, reversed_scale, noise_sd)

    def sample(self, latent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw ordinal answers for latent scores ``latent``.

        Returns integer answers in ``1..n_levels`` (int64 array).
        """
        latent = np.asarray(latent, dtype=np.float64)
        noisy = latent + rng.normal(0.0, self.noise_sd, size=latent.shape)
        answers = np.searchsorted(self.thresholds, np.clip(noisy, 0.0, 1.0)) + 1
        if self.reversed_scale:
            answers = self.n_levels + 1 - answers
        return answers.astype(np.int64)

    def expected_answer(self, latent: float) -> int:
        """Noise-free answer for a latent score (useful in tests)."""
        answer = int(np.searchsorted(self.thresholds, np.clip(latent, 0.0, 1.0))) + 1
        if self.reversed_scale:
            answer = self.n_levels + 1 - answer
        return answer
