"""Lint driver: walk files, apply scoped rules, honour pragmas.

:func:`lint_source` is the core (and the unit-test surface): one source
string, one tag set, one report.  :func:`lint_file` adds scope
resolution from the file's package path plus its in-file markers, and
:func:`run_lint` walks directories in sorted order so the report is
byte-stable across hosts — the analyzer holds itself to the contract it
enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import rulepack  # noqa: F401  (registers the rules)
from repro.analysis.config import module_name_for, tags_for_module
from repro.analysis.pragmas import scan_pragmas
from repro.analysis.rules import (
    RULES,
    FileContext,
    Finding,
    attach_parents,
    collect_aliases,
)

__all__ = ["LintReport", "Suppression", "lint_file", "lint_source", "run_lint"]


@dataclass(frozen=True)
class Suppression:
    """A finding silenced by a justified ``allow`` pragma."""

    finding: Finding
    reason: str


@dataclass
class LintReport:
    """Outcome of one lint run (one file or a whole tree)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Suppression] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.notes.extend(other.notes)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        self.findings.sort(key=lambda f: f.sort_key)
        self.suppressed.sort(key=lambda s: s.finding.sort_key)


def lint_source(
    source: str,
    path: str = "<snippet>",
    tags: frozenset[str] | set[str] = frozenset(),
    rule_ids: list[str] | None = None,
) -> LintReport:
    """Lint one source string under the given scope tags."""
    report = LintReport(files_scanned=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule="REP000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report
    sheet = scan_pragmas(source)
    ctx = FileContext(
        path=path,
        tags=frozenset(tags) | sheet.scopes,
        tree=tree,
        source=source,
        aliases=collect_aliases(tree),
        parents=attach_parents(tree),
    )
    selected = rule_ids if rule_ids is not None else sorted(RULES)
    raw: list[Finding] = []
    for rule_id in selected:
        rule = RULES[rule_id]
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    for finding in raw:
        pragma = sheet.suppression_for(finding.rule, finding.line)
        if pragma is None:
            report.findings.append(finding)
        else:
            report.suppressed.append(Suppression(finding, pragma.reason))
    for line, message in sheet.malformed:
        # Pragma misuse is never itself suppressible.
        report.findings.append(
            Finding(rule="REP000", path=path, line=line, col=0, message=message)
        )
    for pragma in sheet.unused():
        report.notes.append(
            f"{path}:{pragma.line}: unused allow[{', '.join(pragma.rules)}] "
            "pragma (nothing to suppress here any more)"
        )
    report.sort()
    return report


def lint_file(
    path: str | Path,
    display_root: Path | None = None,
    rule_ids: list[str] | None = None,
) -> LintReport:
    """Lint one file; scope tags come from its package path + markers."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    tags = tags_for_module(module_name_for(path))
    try:
        display = str(path.relative_to(display_root or Path.cwd()))
    except ValueError:
        display = str(path)
    return lint_source(source, path=display, tags=tags, rule_ids=rule_ids)


def default_lint_root() -> Path:
    """The ``repro`` package directory this module was loaded from."""
    return Path(__file__).resolve().parent.parent


def run_lint(
    paths: list[str | Path] | None = None,
    rule_ids: list[str] | None = None,
) -> LintReport:
    """Lint files/trees (default: the whole ``repro`` package)."""
    if paths:
        targets = [Path(p) for p in paths]
        display_root = Path.cwd()
    else:
        root = default_lint_root()
        targets = [root]
        display_root = root.parent.parent  # .../src
    report = LintReport()
    for target in targets:
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file in files:
            report.extend(
                lint_file(file, display_root=display_root, rule_ids=rule_ids)
            )
    report.sort()
    return report
