"""A small Intrinsic Capacity ontology.

The WHO ICOPE framework [16] organises healthy ageing around Intrinsic
Capacity and its five domains.  The KD pipeline needs that structure to
(a) verify that an expert variable subset covers every domain and (b)
navigate from variables to domains when reporting.  A full OWL stack is
unnecessary: the hierarchy is a rooted DAG with typed nodes, which
``networkx`` models directly.
"""

from __future__ import annotations

import networkx as nx

from repro.cohort.schema import IC_DOMAINS, PRO_ITEMS

__all__ = ["IntrinsicCapacityOntology"]

#: Node kinds in the concept graph.
_KINDS = ("root", "domain", "variable")

#: Expert mapping of the activity variables onto IC domains: step count
#: and calories inform locomotion; sleep informs vitality (cf. [9]).
_ACTIVITY_DOMAINS = {
    "steps": "locomotion",
    "calories": "locomotion",
    "sleep_hours": "vitality",
}


class IntrinsicCapacityOntology:
    """Concept hierarchy: intrinsic_capacity -> 5 domains -> variables.

    The default construction covers the reproduction's full feature
    space: all 56 PRO items (each loading on its schema-declared domain)
    and the 3 activity variables.

    Examples
    --------
    >>> onto = IntrinsicCapacityOntology.default()
    >>> sorted(onto.domains()) == sorted(IC_DOMAINS)
    True
    >>> onto.domain_of("steps")
    'locomotion'
    """

    ROOT = "intrinsic_capacity"

    def __init__(self, graph: nx.DiGraph):
        self._validate(graph)
        self._graph = graph

    @classmethod
    def default(cls) -> "IntrinsicCapacityOntology":
        """Ontology over the canonical PRO item bank + activity variables."""
        g = nx.DiGraph()
        g.add_node(cls.ROOT, kind="root")
        for domain in IC_DOMAINS:
            g.add_node(domain, kind="domain")
            g.add_edge(cls.ROOT, domain, provenance="WHO ICOPE [16]")
        for item in PRO_ITEMS:
            g.add_node(item.name, kind="variable", scale_levels=item.n_levels,
                       reversed_scale=item.reversed_scale)
            g.add_edge(item.domain, item.name, provenance="MySAwH app item bank [9]")
        for var, domain in _ACTIVITY_DOMAINS.items():
            g.add_node(var, kind="variable", scale_levels=None, reversed_scale=False)
            g.add_edge(domain, var, provenance="wearable tracker [9]")
        return cls(g)

    @staticmethod
    def _validate(graph: nx.DiGraph) -> None:
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("ontology graph must be a DAG")
        for node, data in graph.nodes(data=True):
            kind = data.get("kind")
            if kind not in _KINDS:
                raise ValueError(f"node {node!r} has invalid kind {kind!r}")
            if kind == "variable" and graph.out_degree(node) != 0:
                raise ValueError(f"variable node {node!r} must be a leaf")
            if kind == "domain":
                parents = list(graph.predecessors(node))
                if parents != [IntrinsicCapacityOntology.ROOT]:
                    raise ValueError(
                        f"domain {node!r} must hang off the root, has {parents}"
                    )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def domains(self) -> list[str]:
        """All domain concepts."""
        return [n for n, d in self._graph.nodes(data=True) if d["kind"] == "domain"]

    def variables(self, domain: str | None = None) -> list[str]:
        """All variable leaves, optionally restricted to one domain."""
        if domain is None:
            return [
                n for n, d in self._graph.nodes(data=True) if d["kind"] == "variable"
            ]
        if domain not in self._graph or self._graph.nodes[domain]["kind"] != "domain":
            raise KeyError(f"unknown domain {domain!r}")
        return sorted(self._graph.successors(domain))

    def domain_of(self, variable: str) -> str:
        """The domain a variable loads on."""
        if variable not in self._graph:
            raise KeyError(f"unknown variable {variable!r}")
        if self._graph.nodes[variable]["kind"] != "variable":
            raise KeyError(f"{variable!r} is not a variable node")
        (parent,) = self._graph.predecessors(variable)
        return parent

    def coverage(self, variables: list[str]) -> dict[str, int]:
        """Count how many of ``variables`` fall in each domain.

        Used to check the expert subset spans all five domains — the
        paper requires "variables ... chosen to represent each of the
        five IC domains".
        """
        counts = {d: 0 for d in self.domains()}
        for var in variables:
            counts[self.domain_of(var)] += 1
        return counts

    def assert_full_coverage(self, variables: list[str]) -> None:
        """Raise ``ValueError`` unless every domain has >= 1 variable."""
        missing = [d for d, c in self.coverage(variables).items() if c == 0]
        if missing:
            raise ValueError(
                f"variable subset leaves IC domains uncovered: {missing}"
            )

    def provenance(self, child: str) -> str:
        """The provenance annotation of the edge leading to ``child``."""
        preds = list(self._graph.predecessors(child))
        if not preds:
            raise KeyError(f"{child!r} has no parent (is it the root?)")
        return self._graph.edges[preds[0], child]["provenance"]

    @property
    def graph(self) -> nx.DiGraph:
        """Read-only view of the underlying graph (do not mutate)."""
        return self._graph
