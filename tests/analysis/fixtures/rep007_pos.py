"""REP007 positive: unsorted set / filesystem iteration."""

# repro: scope[deterministic]

import os


def domains(negatives, positives):
    out = []
    for domain in set(negatives) | set(positives):
        out.append(domain)  # order follows the per-process hash seed
    return out


def listing(root):
    return [name for name in os.listdir(root)]


def tree(root):
    return [child for child in root.iterdir()]
