"""Missing-data injection for the PRO series.

Section 3 of the paper reports the QA statistics of the PRO streams:
bursts of consecutive missing observations (mean length ~5, max 17) and
~108 gaps per patient on average across all series (max 284).

The dominant mechanism is *patient-level*: a participant stops answering
the app for a stretch, blanking every item simultaneously — that is what
makes the per-patient gap count scale with the number of items (56 items
x ~2 bursts ~ 108 gaps).  A small item-level dropout is layered on top
(single questions skipped within an otherwise completed month).
"""

from __future__ import annotations

import numpy as np

from repro.cohort.config import ClinicConfig, CohortConfig
from repro.cohort.schema import pro_item_names
from repro.synth import SeedSequenceFactory, burst_gap_mask

__all__ = ["apply_missingness"]

#: Stationary rate / mean burst length of item-level (question skipped)
#: dropout, on top of the patient-level app-abandonment bursts.
_ITEM_DROPOUT_RATE = 0.05
_ITEM_DROPOUT_MEAN_LEN = 1.3


def apply_missingness(
    cfg: CohortConfig,
    clinic: ClinicConfig,
    patient_id: str,
    pro_columns: dict[str, np.ndarray],
    seeds: SeedSequenceFactory,
) -> dict[str, np.ndarray]:
    """Blank PRO answers with the two-layer burst process.

    Parameters
    ----------
    pro_columns:
        Output of :func:`repro.cohort.pro.generate_pro_answers`; the
        ``month`` column is untouched, item columns get NaN holes.

    Returns
    -------
    dict
        Same keys, with missing answers replaced by NaN.  Input arrays
        are not mutated.
    """
    rng = seeds.child(patient_id).generator("missingness")
    n = len(pro_columns["month"])

    patient_mask = burst_gap_mask(
        rng,
        n_steps=n,
        missing_rate=clinic.missing_rate,
        mean_gap_length=cfg.mean_gap_length,
        max_gap_length=cfg.max_gap_length,
    )

    out: dict[str, np.ndarray] = {"month": pro_columns["month"]}
    for name in pro_item_names():
        item_mask = burst_gap_mask(
            rng,
            n_steps=n,
            missing_rate=_ITEM_DROPOUT_RATE,
            mean_gap_length=_ITEM_DROPOUT_MEAN_LEN,
            max_gap_length=cfg.max_gap_length,
        )
        mask = patient_mask | item_mask
        values = pro_columns[name].astype(np.float64).copy()
        values[mask] = np.nan
        out[name] = values
    return out
