"""HistogramPool self-healing: chaos inside a fit changes no bit.

The tentpole claim at fit level: a kill schedule against the histogram
workers — mid-round, between rounds, repeated — yields a model
**bitwise identical** to the serial fit, because a lost feature block
is recomputed in-process for the wave that lost it and the respawned
worker re-attaches the same segments into the same block ownership.
Stuck workers are reaped by the per-task deadline the same way.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.boosting.binning import BinMapper
from repro.boosting.config import GBConfig
from repro.boosting.gbm import GBRegressor
from repro.faults import fault_plan, kill_schedule
from repro.parallel.hist import HistogramPool


def make_data(seed: int, n: int = 500, d: int = 9):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[rng.random(size=X.shape) < 0.08] = np.nan
    filled = np.nan_to_num(X)
    y = (
        2.0 * filled[:, 0]
        + np.sin(filled[:, 1] * 2.0)
        + rng.normal(scale=0.1, size=n)
    )
    return X, y


def assert_models_identical(a, b):
    assert len(a.ensemble_.trees) == len(b.ensemble_.trees)
    for ta, tb in zip(a.ensemble_.trees, b.ensemble_.trees):
        assert np.array_equal(ta.feature, tb.feature)
        assert np.array_equal(ta.bin_threshold, tb.bin_threshold)
        assert np.array_equal(ta.threshold, tb.threshold, equal_nan=True)
        assert np.array_equal(ta.missing_left, tb.missing_left)
        assert np.array_equal(ta.value, tb.value)
        assert np.array_equal(ta.cover, tb.cover)
    assert a.eval_history_ == b.eval_history_


def _fit(X, y, jobs: int):
    config = GBConfig(n_estimators=12, max_depth=4, n_jobs=jobs)
    return GBRegressor(config).fit(X, y)


def _pool_fixture(jobs: int = 2):
    X, _ = make_data(11, n=1600)
    mapper = BinMapper(max_bins=32).fit(X)
    binned = mapper.transform(X, order="F")
    rng = np.random.default_rng(1)
    grad = rng.normal(size=X.shape[0])
    hess = np.ones(X.shape[0])
    mask = np.ones(X.shape[1], dtype=bool)
    pool = HistogramPool(binned, mapper.missing_bin, n_jobs=jobs)
    if pool.mode != "process":
        pool.close()
        pytest.skip("fork process backend unavailable")
    pool.begin_round(grad, hess, mask, n_channels=2)
    return pool, np.arange(X.shape[0])


class TestFitBitwiseUnderFaults:
    """Whole fits under kill schedules match the serial fit exactly."""

    @pytest.mark.parametrize(
        "jobs,spec",
        [
            (2, "kill@hist.send:w=0:n=0"),
            (2, "kill@hist.send:w=1:n=3"),
            (2, "kill@hist.send:w=1:n=2;kill@hist.send:w=0:n=9"),
            (3, "kill@hist.send:w=2:n=1"),
        ],
    )
    def test_fixed_kill_schedules(self, jobs, spec):
        X, y = make_data(3)
        serial = _fit(X, y, jobs=1)
        with fault_plan(spec):
            chaotic = _fit(X, y, jobs=jobs)
        assert_models_identical(serial, chaotic)
        assert np.array_equal(serial.predict(X), chaotic.predict(X))

    @pytest.mark.parametrize("seed", [5, 23])
    def test_seeded_kill_schedules(self, seed):
        X, y = make_data(3)
        serial = _fit(X, y, jobs=1)
        plan = kill_schedule(
            seed, site="hist.send", workers=2, max_at=24, kills=2
        )
        with fault_plan(plan):
            chaotic = _fit(X, y, jobs=2)
        assert_models_identical(serial, chaotic)

    def test_stuck_worker_mid_fit(self, monkeypatch):
        """A stalled histogram worker is reaped by the deadline mid-fit."""
        X, y = make_data(3)
        serial = _fit(X, y, jobs=1)
        monkeypatch.setenv("REPRO_TASK_DEADLINE", "0.5")
        monkeypatch.setenv(
            "REPRO_FAULTS", "stall@hist.task:w=0:n=2:s=30"
        )
        t0 = time.perf_counter()
        chaotic = _fit(X, y, jobs=2)
        assert time.perf_counter() - t0 < 60.0  # reaped, not waited out
        assert_models_identical(serial, chaotic)


class TestPoolRecovery:
    def test_kill_between_waves_then_respawn(self):
        pool, rows = _pool_fixture(jobs=2)
        try:
            reference = pool.accumulate([rows])[0]
            # A fresh context plan counts from zero: n=0 is the first
            # wave sent while the plan is active.
            with fault_plan("kill@hist.send:w=0:n=0"):
                assert np.array_equal(reference, pool.accumulate([rows])[0])
            assert pool.workers_alive == 1  # killed, recomputed in-process
            deadline = time.perf_counter() + 8.0
            while time.perf_counter() < deadline:
                assert np.array_equal(reference, pool.accumulate([rows])[0])
                if pool.workers_alive == 2:
                    break
                time.sleep(0.1)
            assert pool.workers_alive == 2
            assert pool.workers_respawned == 1
        finally:
            pool.close()

    def test_deadline_kill_mid_wave(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "stall@hist.task:w=1:n=1:s=30")
        pool, rows = _pool_fixture(jobs=2)
        pool.task_deadline = 0.5
        pool.max_respawns = 0
        try:
            reference = pool.accumulate([rows])[0]
            assert np.array_equal(reference, pool.accumulate([rows])[0])
            assert pool.deadline_kills == 1
            assert pool.workers_alive == 1
            assert np.array_equal(reference, pool.accumulate([rows])[0])
        finally:
            pool.close()

    def test_close_terminates_stuck_worker_and_unlinks(self, monkeypatch):
        from multiprocessing import shared_memory

        monkeypatch.setenv(
            "REPRO_FAULTS", "stall@hist.task.done:w=0:n=0:s=60"
        )
        pool, rows = _pool_fixture(jobs=2)
        pool.close_timeout = 0.5
        reference = pool.accumulate([rows])[0]
        assert reference is not None
        names = [segment.name for segment in pool._segments]
        assert names, "expected the pool to export shared segments"
        procs = list(pool._procs)
        t0 = time.perf_counter()
        pool.close()
        assert time.perf_counter() - t0 < 10.0
        assert all(not proc.is_alive() for proc in procs if proc is not None)
        for name in names:
            try:
                leaked = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            leaked.close()
            pytest.fail(f"segment {name} leaked past close()")
