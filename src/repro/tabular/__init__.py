"""Lightweight typed column-store tables.

The reproduction pipeline needs a small set of relational operations
(projection, selection, group-by aggregation, equi-join, sorting, CSV
round-trips) over heterogeneous clinical/longitudinal data.  pandas is not
available in the build environment, so :class:`~repro.tabular.table.Table`
provides exactly those operations on top of NumPy arrays, with explicit
column types and copy-on-write semantics.

Public API
----------
``Table``
    The column-store container.
``Column``
    A typed, named 1-D array wrapper.
``ColumnType``
    Enumeration of supported logical types.
``read_csv`` / ``write_csv``
    CSV (de)serialisation helpers.
``concat_tables``
    Vertical concatenation of schema-compatible tables.
"""

from repro.tabular.column import Column, ColumnType
from repro.tabular.io import read_csv, write_csv
from repro.tabular.table import Table, concat_tables

__all__ = [
    "Column",
    "ColumnType",
    "Table",
    "concat_tables",
    "read_csv",
    "write_csv",
]
