"""REP004 negative: float64 channels, or an explicit float64 widen."""

# repro: scope[float64-sums]

import numpy as np


def wide_sum(n):
    buf = np.ones(n, dtype=np.float64)
    return float(buf.sum())


def widened_at_the_sum(n, dt):
    buf = np.zeros(n, dtype=dt)
    return buf.sum(dtype=np.float64)  # the sum itself widens


def untyped(values):
    return values.sum()  # no dtype evidence in this function: not flagged
