"""QA — missingness statistics and retention (paper section 3).

Reproduces the paper's Quality Assurance numbers: gap length statistics
(mean ~5, max 17), gaps per patient (mean ~108, max 284), and the
retained sample count after bounded interpolation (2,250 of 4,176).
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext, default_context
from repro.pipeline.qa import GapReport, gap_report, retention_sweep

__all__ = ["run_qa", "render_qa"]


def run_qa(
    context: ExperimentContext | None = None,
    max_gaps: tuple[int, ...] = (0, 1, 3, 5, 9, 17),
) -> dict[str, object]:
    """Return the QA bundle: gap report + retention sweep."""
    ctx = context or default_context()
    report = gap_report(ctx.cohort)
    sweep = retention_sweep(ctx.cohort, max_gaps=max_gaps)
    return {"gap_report": report, "retention": sweep}


def render_qa(result: dict[str, object]) -> str:
    """Plain-text rendering of the QA bundle."""
    report: GapReport = result["gap_report"]  # type: ignore[assignment]
    lines = ["QA: " + report.render(), "QA: retention by interpolation bound"]
    for max_gap, row in result["retention"].items():  # type: ignore[union-attr]
        lines.append(
            f"  max_gap={max_gap:2d}: retained {int(row['retained'])} "
            f"of {int(row['possible'])} ({100 * row['fraction']:.1f}%)"
        )
    return "\n".join(lines)
