"""Deterministic fan-out execution of independent experiment units.

The evaluation grid decomposes into units that share inputs but not
state: the CV folds of one protocol run, the 12 grid cells of Fig. 4,
the per-clinic models of Table 1, each ablation arm.  Every unit is a
pure function of ``(item, shared arrays)`` with its own seed, so the
only thing scheduling could leak into results is *ordering* — and
:func:`parallel_map` removes that channel by gathering results strictly
in submission order.  The parallel result list is therefore
bitwise-identical to the serial one (asserted by
``tests/parallel/test_determinism.py`` over the full grid).

Backend selection
-----------------
``n_jobs`` argument beats the ``REPRO_JOBS`` environment variable beats
the serial default:

* ``1`` (default) — serial in-process execution, zero overhead;
* ``N > 1`` — a process pool of N workers;
* ``0`` or ``-1`` — one worker per CPU.

Large shared arrays are handed to workers through POSIX shared memory
(:mod:`repro.parallel.shared`), so a design matrix is mapped, not
pickled, and never per task.  Nested parallelism is suppressed: inside a
worker :func:`resolve_jobs` always answers 1, so e.g. a protocol run
fanned out by the grid does not fork a second-level pool.

Tasks must be picklable (module-level functions, plain-data items) to
run on the process backend; anything unpicklable — a lambda model
factory, say — silently degrades to the serial backend with identical
results.

Two execution modes ride on the same shared-memory handoff:

* :func:`parallel_map` — one pool per call, per-task handoff.  With the
  ``setup`` option each worker additionally runs a *map-once*
  initializer over the attached arrays (e.g. materialise a model plane
  into an explainer) and tasks receive the initializer's state instead
  of the raw array dict.
* :class:`ShardedPool` — a *persistent* pool for request serving: the
  shared arrays are exported once, each long-lived worker runs ``setup``
  once, and tasks tagged with a shard id always execute on the same
  worker (``shard % n_workers``), so worker-local state such as an LRU
  result cache sees a deterministic task subsequence.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.faults import inject, should_kill
from repro.parallel.shared import attach_shared, export_shared, release_shared

__all__ = [
    "resolve_jobs",
    "resolve_deadline",
    "parallel_map",
    "in_worker",
    "ShardedPool",
]

_IN_WORKER = False
#: Per-worker task state: the attached shared arrays, or the result of
#: the map-once ``setup`` initializer when one was given.
_WORKER_STATE: object = None


def in_worker() -> bool:
    """True inside an executor worker process."""
    return _IN_WORKER


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve the worker count: argument over ``REPRO_JOBS`` over 1.

    ``0`` and ``-1`` mean "one per CPU".  Inside a worker process the
    answer is always 1 — nested pools would oversubscribe the machine
    without changing any result.
    """
    if _IN_WORKER:
        return 1
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if n_jobs in (0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ValueError(f"n_jobs must be >= -1, got {n_jobs}")
    return n_jobs


def resolve_deadline(task_deadline: float | None = None) -> float | None:
    """Resolve the per-task deadline: argument over ``REPRO_TASK_DEADLINE``.

    ``None`` consults the environment; unset or ``<= 0`` means no
    deadline (stuck workers are then only reaped at ``close()``).
    """
    if task_deadline is None:
        raw = os.environ.get("REPRO_TASK_DEADLINE", "").strip()
        if not raw:
            return None
        try:
            task_deadline = float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_TASK_DEADLINE must be a number, got {raw!r}"
            ) from None
    return task_deadline if task_deadline > 0 else None


def parallel_map(
    fn: Callable,
    items: Iterable,
    *,
    n_jobs: int | None = None,
    shared: dict[str, np.ndarray] | None = None,
    setup: Callable | None = None,
    setup_args: tuple = (),
) -> list:
    """Evaluate ``fn(item, state)`` for every item.

    Results come back in submission order regardless of completion
    order, so the output is identical to
    ``[fn(item, state) for item in items]`` on every backend.

    Parameters
    ----------
    fn:
        A pure function of ``(item, state)``.  Module-level (picklable)
        for the process backend; unpicklable callables/items fall back
        to serial execution.
    shared:
        Name -> array mapping attached once per worker.  On the process
        backend large numeric arrays travel via shared memory, the rest
        piggybacks on the worker initializer — nothing is re-sent per
        task.
    setup:
        Optional map-once initializer ``setup(arrays, *setup_args) ->
        state``, run once per worker over the attached arrays (serially:
        once in-process).  When given, tasks receive its return value as
        ``state``; when omitted, ``state`` is the attached array dict
        itself.  Use it to pay a per-model cost (deserialisation,
        structure building) per *worker* instead of per task.
    n_jobs:
        See :func:`resolve_jobs`.
    """
    items = list(items)
    shared = dict(shared or {})
    jobs = min(resolve_jobs(n_jobs), len(items))
    if jobs <= 1 or not _picklable((fn, items, setup, setup_args)):
        state = shared if setup is None else setup(shared, *setup_args)
        return [fn(item, state) for item in items]

    specs, segments = export_shared(shared)
    try:
        context = mp.get_context(_start_method())
        try:
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=context,
                initializer=_init_worker,
                initargs=(specs, setup, setup_args),
            ) as pool:
                futures = [pool.submit(_run_unit, fn, item) for item in items]
                return [future.result() for future in futures]
        except BrokenProcessPool:
            # A worker died (resource limits, killed container, ...).
            # The units are pure, so re-running serially gives the same
            # results — slower, never different.
            state = shared if setup is None else setup(shared, *setup_args)
            return [fn(item, state) for item in items]
    finally:
        release_shared(segments)


def _start_method() -> str:
    """fork when safe, else spawn.

    fork is the cheap default (no re-import per worker), but forking a
    multithreaded parent can deadlock a child on a lock some other
    thread held at fork time — threaded callers (the context's
    documented thread-safe sharing) get spawn instead.
    """
    use_fork = (
        "fork" in mp.get_all_start_methods() and threading.active_count() == 1
    )
    return "fork" if use_fork else "spawn"


def _init_worker(specs, setup, setup_args) -> None:
    global _IN_WORKER, _WORKER_STATE
    _IN_WORKER = True
    inject("shm.attach")
    arrays = attach_shared(specs)
    _WORKER_STATE = arrays if setup is None else setup(arrays, *setup_args)


def _run_unit(fn: Callable, item):
    return fn(item, _WORKER_STATE)


def _picklable(payload: Sequence) -> bool:
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


class ShardedPool:
    """Long-lived workers with stable shard → worker affinity.

    Unlike :func:`parallel_map`'s pool-per-call, a ShardedPool survives
    across many :meth:`scatter` calls: the shared arrays are exported
    once at construction, every worker runs ``setup(arrays,
    *setup_args)`` exactly once, and a task tagged with shard ``s``
    always executes on worker ``s % n_workers``.  Worker-local state —
    the scoring plane's per-shard LRU caches above all — therefore sees
    a deterministic subsequence of the task stream.

    Robustness mirrors :func:`parallel_map`: with ``n_jobs <= 1``, an
    unpicklable setup, or no usable shared memory the pool degrades to
    in-process execution (one lazily built local state); a worker dying
    mid-task routes that worker's tasks to the local state as well —
    slower, never different (tasks must be pure).  :meth:`close` (or the
    context manager) shuts workers down and **unlinks every shared
    segment** even when workers crashed.

    Self-healing
    ------------
    A dead worker slot is not permanent: at the start of every
    :meth:`scatter` the pool respawns crashed workers (bounded per-slot
    budget, exponential backoff), re-attaching the same parent-owned
    shared segments into the same slot — shard ownership is a pure
    function of the slot index, so a respawned worker serves exactly
    the shard subsequence its predecessor would have and results stay
    bitwise identical under any kill schedule (only worker-local cache
    *bookkeeping* restarts cold).  With ``task_deadline`` set, a worker
    that is stuck rather than dead is detected mid-batch: its in-flight
    task is recomputed in-process, the process is killed and the slot
    becomes eligible for respawn.  :attr:`workers_respawned` and
    :attr:`deadline_kills` expose both recovery paths to the ops plane;
    `tests/faults/` drives them with deterministic fault plans
    (:mod:`repro.faults`).

    Lifecycle under an event loop
    -----------------------------
    The pool is **single-owner**: all of :meth:`scatter` and
    :meth:`close` must be issued from one thread at a time.  An asyncio
    front end (``repro.serve.server``) satisfies this by funnelling
    every pool interaction through one dedicated executor thread —
    construction, scoring and teardown may each happen on *different*
    threads (a pool built on thread A closes fine from thread B), they
    just must not overlap.  Note that constructing a pool while other
    threads are alive selects the ``spawn`` start method (see
    :func:`_start_method`), so worker startup pays one interpreter
    boot + import per worker; an event-loop server therefore builds its
    pool once per model version and keeps it hot across requests.
    :attr:`workers_alive` exposes how many workers still serve (dead
    workers' shards are recomputed in-process) so an ops plane can
    surface degraded capacity.
    """

    #: Per-slot respawn budget and base backoff (doubles per attempt).
    _RESPAWN_LIMIT = 3
    _RESPAWN_BACKOFF = 0.05

    def __init__(
        self,
        *,
        n_jobs: int | None = None,
        shared: dict[str, np.ndarray] | None = None,
        setup: Callable | None = None,
        setup_args: tuple = (),
        task_deadline: float | None = None,
        max_respawns: int | None = None,
        close_timeout: float = 5.0,
    ):
        self._shared = dict(shared or {})
        self._setup = setup
        self._setup_args = setup_args
        self._local_state = None
        self._has_local_state = False
        self._segments: list = []
        self._procs: list = []
        self._conns: list = []
        self._dead: set[int] = set()
        self._closed = False
        self._specs: dict = {}
        self._context = None
        self.task_deadline = resolve_deadline(task_deadline)
        self.max_respawns = (
            self._RESPAWN_LIMIT if max_respawns is None else max_respawns
        )
        self.close_timeout = close_timeout
        self.workers_respawned = 0
        self.deadline_kills = 0
        self._respawn_attempts: dict[int, int] = {}
        self._retry_after: dict[int, float] = {}
        self.workers = resolve_jobs(n_jobs)
        if self.workers <= 1 or not _picklable((setup, setup_args)):
            self.workers = 1
            return
        self._specs, self._segments = export_shared(self._shared)
        self._context = mp.get_context(_start_method())
        try:
            for w in range(self.workers):
                self._spawn_worker(w)
        except OSError:
            self.close()
            self._closed = False
            self.workers = 1

    # ------------------------------------------------------------------
    def _spawn_worker(self, w: int) -> None:
        """(Re)start slot ``w``'s worker against the exported plane."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        proc = self._context.Process(
            target=_shard_worker_loop,
            args=(child_conn, self._specs, self._setup, self._setup_args, w),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if w < len(self._procs):
            old = self._procs[w]
            if old is not None:
                old.join(timeout=0.2)  # reap the crashed predecessor
            self._procs[w] = proc
            self._conns[w] = parent_conn
        else:
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _heal(self) -> None:
        """Respawn dead slots, budgeted and backed off, before a batch.

        The respawned worker re-attaches the same parent-owned shared
        segments and takes over the same slot, so shard affinity — and
        with it result identity — is unchanged.  A slot that keeps
        dying (e.g. its shm attach keeps failing) exhausts its budget
        and stays on the in-process fallback for good.
        """
        if not self._dead or self.max_respawns <= 0 or self._context is None:
            return
        now = time.perf_counter()
        for w in sorted(self._dead):
            attempts = self._respawn_attempts.get(w, 0)
            if attempts >= self.max_respawns:
                continue
            if now < self._retry_after.get(w, 0.0):
                continue
            self._respawn_attempts[w] = attempts + 1
            self._retry_after[w] = now + self._RESPAWN_BACKOFF * (2.0**attempts)
            try:
                self._spawn_worker(w)
            except OSError:  # pragma: no cover - spawn pressure
                continue
            self._dead.discard(w)
            self.workers_respawned += 1

    def _kill_worker(self, w: int) -> None:
        """SIGKILL slot ``w``'s process (deadline reaper / fault site)."""
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=self.close_timeout)

    # ------------------------------------------------------------------
    @property
    def workers_alive(self) -> int:
        """Workers still executing remotely (1 when running in-process).

        Dead workers' shards fall back to in-process recompute until
        the supervisor respawns them (next :meth:`scatter`), so the
        pool keeps answering — this is the ops-plane signal that
        capacity is degraded, not correctness.
        """
        if self.workers <= 1 or self._closed:
            return 0 if self._closed else 1
        return self.workers - len(self._dead)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _state(self):
        """The in-process fallback state (built on first use)."""
        if not self._has_local_state:
            self._local_state = (
                self._shared
                if self._setup is None
                else self._setup(self._shared, *self._setup_args)
            )
            self._has_local_state = True
        return self._local_state

    # ------------------------------------------------------------------
    def scatter(self, fn: Callable, tasks: Sequence[tuple[int, object]]) -> list:
        """Run ``fn(payload, state)`` for every ``(shard, payload)`` task.

        Results return in task order.  Tasks sharing a shard run on the
        same worker, in order; distinct shards run **concurrently** via
        a window-1 pipeline per worker: a worker receives its next task
        only after its previous result was read.  The parent therefore
        only ever sends to an idle worker (which is blocked reading) and
        only ever receives from workers it is not sending to — no pipe
        buffer can fill into a circular wait, whatever the payload or
        result sizes.  A task raising propagates the error to the caller
        (after the batch has drained, so sibling shards are not left
        half-consumed).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._heal()
        if (
            self.workers <= 1
            or len(self._dead) == len(self._procs)
            or not _picklable((fn,))
        ):
            state = self._state()
            return [fn(payload, state) for _, payload in tasks]

        queues: dict[int, deque] = {}
        for pos, (shard, payload) in enumerate(tasks):
            queues.setdefault(shard % self.workers, deque()).append(
                (pos, payload)
            )
        results: list = [None] * len(tasks)
        failed: list[tuple[int, BaseException]] = []
        fallback: list[tuple[int, object]] = []
        #: worker -> its one in-flight (position, payload, send time).
        in_flight: dict[int, tuple[int, object, float]] = {}

        def feed(w: int) -> None:
            """Hand worker ``w`` its next sendable queued task, if any."""
            queue = queues.get(w)
            while queue:
                pos, payload = queue[0]
                if should_kill("shard.send", w):
                    self._kill_worker(w)  # fault plan: crash before send
                try:
                    self._conns[w].send((fn, payload))
                except (BrokenPipeError, OSError):
                    self._mark_dead(w)
                    fallback.extend(queues.pop(w))
                    return
                except Exception:
                    # Pickling the task failed, so nothing reached the
                    # pipe (Connection.send serialises fully before
                    # writing): the channel is still in sync — run just
                    # this payload in-process and keep the worker.
                    queue.popleft()
                    fallback.append((pos, payload))
                    continue
                queue.popleft()
                in_flight[w] = (pos, payload, time.perf_counter())
                return
            queues.pop(w, None)

        def reap_stuck() -> None:
            """Deadline pass: kill and fall back every expired worker."""
            now = time.perf_counter()
            for w in list(in_flight):
                pos, payload, sent = in_flight[w]
                if now - sent < self.task_deadline:
                    continue
                in_flight.pop(w)
                self.deadline_kills += 1
                self._kill_worker(w)
                self._mark_dead(w)
                fallback.append((pos, payload))
                fallback.extend(queues.pop(w, ()))

        for w in list(queues):
            if w in self._dead:
                fallback.extend(queues.pop(w))
            else:
                feed(w)
        while in_flight:
            by_conn = {self._conns[w]: w for w in in_flight}
            timeout = None
            if self.task_deadline is not None:
                expiry = min(
                    sent + self.task_deadline
                    for _, _, sent in in_flight.values()
                )
                timeout = max(0.0, expiry - time.perf_counter())
            ready = mp_connection.wait(list(by_conn), timeout)
            if not ready:
                reap_stuck()
                continue
            for conn in ready:
                w = by_conn[conn]
                pos, payload, _ = in_flight.pop(w)
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-task: everything it still owed is
                    # recomputed in-process.
                    self._mark_dead(w)
                    fallback.append((pos, payload))
                    fallback.extend(queues.pop(w, ()))
                    continue
                except Exception:
                    # The message was fully consumed but its payload did
                    # not unpickle (e.g. an exotic worker exception):
                    # the channel is still in sync, so recompute the one
                    # task in-process and keep the worker serving.
                    fallback.append((pos, payload))
                    feed(w)
                    continue
                if status == "ok":
                    results[pos] = value
                else:
                    failed.append((pos, value))
                feed(w)
        for pos, payload in fallback:
            results[pos] = fn(payload, self._state())
        if failed:
            raise min(failed, key=lambda entry: entry[0])[1]
        return results

    def _mark_dead(self, w: int) -> None:
        self._dead.add(w)
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - already closed
            pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut workers down and unlink the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w, conn in enumerate(self._conns):
            if w in self._dead:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=self.close_timeout)
            if proc.is_alive():
                # Stuck worker (hung task, ignored shutdown): reap it
                # hard so the segment unlink below cannot be held up.
                proc.terminate()
                proc.join(timeout=self.close_timeout)
        for w, conn in enumerate(self._conns):
            if w not in self._dead:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._procs = []
        self._conns = []
        release_shared(self._segments)
        self._segments = []


def _shard_worker_loop(conn, specs, setup, setup_args, worker_index=0) -> None:
    """One shard worker: attach the plane once, then serve tasks."""
    global _IN_WORKER
    _IN_WORKER = True
    inject("shm.attach", worker_index)
    arrays = attach_shared(specs)
    state = arrays if setup is None else setup(arrays, *setup_args)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if message is None:
            break
        fn, payload = message
        try:
            inject("shard.task", worker_index)
            result = fn(payload, state)
        except BaseException as exc:  # ship the failure, keep serving
            try:
                conn.send(("error", exc))
            except Exception:  # unpicklable exception: die loudly
                raise exc from None
        else:
            conn.send(("ok", result))
            inject("shard.task.done", worker_index)
    conn.close()
