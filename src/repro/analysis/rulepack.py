"""The REP rule pack: the repo's determinism & concurrency contracts.

Each rule mechanises an invariant a previous PR established by hand:

========  =========================================================
REP001    fixed-order reductions in row-deterministic modules (PR 5)
REP002    no unseeded RNG / wall-clock in deterministic modules
REP003    every created SharedMemory segment must reach unlink (PR 5)
REP004    float64 sum channels in the boosting engine (PR 1)
REP005    memo writes only under the owning lock (PR 4)
REP006    no unpicklable callables handed to the pools (PR 4/5)
REP007    no unsorted set/filesystem iteration feeding artefacts
========  =========================================================

Rules are syntactic: they fire on positive evidence in the AST and are
silenced case-by-case with a justified ``# repro: allow[...]`` pragma
(see :mod:`repro.analysis.pragmas`).  False negatives are possible
(aliased callables, cross-function dataflow); the rules are a gate on
the repo's real failure modes, not a type system.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import (
    DETERMINISTIC,
    FLOAT64_SUMS,
    ROW_DETERMINISTIC,
)
from repro.analysis.rules import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register,
)

__all__ = ["POOL_ENTRY_POINTS"]

#: numpy-level reductions whose evaluation order depends on operand
#: shape (BLAS dispatch picks different blockings for different batch
#: sizes — the PR 5 row-determinism hazard).
_MATMUL_FUNCS = frozenset(
    {"dot", "matmul", "einsum", "inner", "tensordot", "vdot"}
)
_SUM_ATTRS = frozenset({"sum", "nansum"})


def _has_fixed_axis(call: ast.Call, axis_position: int) -> bool:
    """True when a reduction call pins its axis (kwarg or positional)."""
    for kw in call.keywords:
        if kw.arg == "axis":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
    return len(call.args) > axis_position


@register
class BatchShapeReductionRule(Rule):
    """REP001: reductions must not depend on the batch shape."""

    id = "REP001"
    title = "batch-shape-dependent reduction in a row-deterministic module"
    tags = frozenset({ROW_DETERMINISTIC})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_roots = ctx.roots("numpy")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    ctx,
                    node,
                    "`@` matmul evaluates in a batch-shape-dependent order; "
                    "use an elementwise product + fixed-axis sum "
                    "(row-deterministic module)",
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                yield from self._check_call(ctx, node, np_roots)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, np_roots: set[str]
    ) -> Iterator[Finding]:
        func = node.func
        base = dotted_name(func.value)
        if func.attr in _MATMUL_FUNCS and base in np_roots:
            yield self.finding(
                ctx,
                node,
                f"np.{func.attr} evaluates in a batch-shape-dependent order; "
                "replace with a fixed-order reduction "
                "(row-deterministic module)",
            )
        elif func.attr == "dot":
            yield self.finding(
                ctx,
                node,
                ".dot() evaluates in a batch-shape-dependent order; "
                "replace with a fixed-order reduction "
                "(row-deterministic module)",
            )
        elif func.attr in _SUM_ATTRS:
            axis_position = 1 if base in np_roots else 0
            if not _has_fixed_axis(node, axis_position):
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}() without a fixed axis is a full "
                    "reduction over the batch; pin axis= "
                    "(row-deterministic module)",
                )


#: np.random constructors that are fine *when given a seed*.
_NP_RANDOM_SEEDED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)
_NP_RANDOM_SEED_REQUIRED = frozenset(
    {"default_rng", "RandomState", "SeedSequence"}
)


@register
class UnseededRandomnessRule(Rule):
    """REP002: no module-level RNG or wall-clock values in engine code."""

    id = "REP002"
    title = "unseeded RNG or wall-clock call in a deterministic module"
    tags = frozenset({DETERMINISTIC})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_roots = ctx.roots("numpy")
        random_roots = ctx.roots("random")
        time_roots = ctx.roots("time")
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            message = self._diagnose(
                node, parts, np_roots, random_roots, time_roots
            )
            if message is not None:
                yield self.finding(ctx, node, message)

    def _diagnose(
        self,
        node: ast.Call,
        parts: list[str],
        np_roots: set[str],
        random_roots: set[str],
        time_roots: set[str],
    ) -> str | None:
        no_args = not node.args and not node.keywords
        if len(parts) >= 3 and parts[0] in np_roots and parts[1] == "random":
            fn = parts[2]
            if fn not in _NP_RANDOM_SEEDED:
                return (
                    f"np.random.{fn} draws from the module-level global "
                    "RNG; thread an explicit np.random.default_rng(seed)"
                )
            if fn in _NP_RANDOM_SEED_REQUIRED and no_args:
                return (
                    f"np.random.{fn}() without a seed pulls OS entropy; "
                    "pass an explicit seed"
                )
        elif len(parts) == 2 and parts[0] in random_roots:
            fn = parts[1]
            if fn == "Random":
                if no_args:
                    return "random.Random() without a seed is nondeterministic"
            elif fn != "getstate":
                return (
                    f"random.{fn} uses the module-level global RNG; "
                    "use a seeded random.Random(seed) instance"
                )
        elif len(parts) == 2 and parts[0] in time_roots:
            fn = parts[1]
            if fn in ("time", "time_ns"):
                return (
                    "time.time() is wall-clock state; deterministic code "
                    "must not fold the current time into its outputs"
                )
            if fn in ("gmtime", "localtime") and no_args:
                return (
                    f"time.{fn}() without an argument reads the wall "
                    "clock; pass an explicit timestamp"
                )
        elif parts[-1] in ("now", "utcnow") and "datetime" in parts:
            return (
                f"datetime.{parts[-1]}() reads the wall clock; "
                "deterministic code must not fold the current time "
                "into its outputs"
            )
        elif parts[-1] == "today" and (
            "date" in parts or "datetime" in parts
        ):
            return "date.today() reads the wall clock"
        return None


@register
class SharedMemoryLifecycleRule(Rule):
    """REP003: every created segment must reach unlink on every path."""

    id = "REP003"
    title = "SharedMemory(create=True) without a guaranteed unlink path"
    tags = None  # structural hazard: applies everywhere

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "SharedMemory":
                continue
            if not any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                continue
            if not self._unlink_guaranteed(ctx, node):
                yield self.finding(
                    ctx,
                    node,
                    "SharedMemory(create=True) must reach unlink() on an "
                    "always-executed path (finally block or context "
                    "manager), or the segment leaks when the owner dies",
                )

    def _unlink_guaranteed(self, ctx: FileContext, node: ast.Call) -> bool:
        scope: ast.AST = ctx.tree
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.withitem):
                return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = ancestor
                break
        # The idiomatic shape creates the segment *before* entering the
        # try (nothing to clean up if creation itself fails), so accept
        # any finally-unlink in the enclosing function, nested or not.
        return any(
            isinstance(sub, ast.Try) and self._finally_unlinks(sub)
            for sub in ast.walk(scope)
        )

    @staticmethod
    def _finally_unlinks(try_node: ast.Try) -> bool:
        for stmt in try_node.finalbody:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "unlink"
                ):
                    return True
                name = dotted_name(sub.func)
                if name is not None and name.split(".")[-1] in (
                    "release_shared",
                    "close",
                ):
                    return True
        return False


_SUM_CALL_ATTRS = frozenset({"sum", "cumsum", "nansum"})


def _dtype_kind(node: ast.AST) -> str:
    """Classify a dtype expression: 'float64', 'float32', or 'variable'."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "float64" if "float64" in node.value else node.value
    name = dotted_name(node)
    if name is not None:
        leaf = name.split(".")[-1]
        if leaf in ("float64", "double"):
            return "float64"
        if leaf == "float":  # builtin float is IEEE double
            return "float64"
        if leaf in ("float32", "single", "float16", "half"):
            return "float32"
    return "variable"


@register
class FloatAccumulationRule(Rule):
    """REP004: sum channels must provably accumulate in float64."""

    id = "REP004"
    title = "sum over a buffer not provably float64 in a sum-channel module"
    tags = frozenset({FLOAT64_SUMS})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_roots = ctx.roots("numpy")
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, np_roots)

    def _check_function(
        self, ctx: FileContext, func: ast.AST, np_roots: set[str]
    ) -> Iterator[Finding]:
        suspects = self._suspect_buffers(func)
        if not suspects:
            return
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            operand = self._sum_operand(node, np_roots)
            if (
                isinstance(operand, ast.Name)
                and operand.id in suspects
                and not self._widens_to_float64(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"accumulating {operand.id!r} ({suspects[operand.id]}); "
                    "sum channels in this module must be float64 "
                    "(pass dtype=np.float64 or allocate the buffer as "
                    "float64)",
                )

    @staticmethod
    def _suspect_buffers(func: ast.AST) -> dict[str, str]:
        """Local names holding buffers with non-float64 dtype evidence."""
        suspects: dict[str, str] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            evidence = FloatAccumulationRule._dtype_evidence(node.value)
            if evidence is not None:
                suspects[target.id] = evidence
        return suspects

    @staticmethod
    def _dtype_evidence(value: ast.AST) -> str | None:
        for sub in ast.walk(value):
            if not isinstance(sub, ast.Call):
                continue
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "astype"
                and sub.args
                and _dtype_kind(sub.args[0]) == "float32"
            ):
                return "cast to float32"
            for kw in sub.keywords:
                if kw.arg != "dtype":
                    continue
                kind = _dtype_kind(kw.value)
                if kind == "float32":
                    return "allocated as float32"
                if kind == "variable":
                    return "dtype is a runtime value, not provably float64"
        return None

    @staticmethod
    def _sum_operand(node: ast.Call, np_roots: set[str]) -> ast.AST | None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        name = dotted_name(func)
        parts = name.split(".") if name else []
        if len(parts) >= 2 and parts[0] in np_roots:
            if parts[-1] in _SUM_CALL_ATTRS or parts[-2:] in (
                ["add", "reduce"],
                ["add", "reduceat"],
            ):
                return node.args[0] if node.args else None
            return None
        if func.attr in _SUM_CALL_ATTRS:
            return func.value
        return None

    @staticmethod
    def _widens_to_float64(node: ast.Call) -> bool:
        return any(
            kw.arg == "dtype" and _dtype_kind(kw.value) == "float64"
            for kw in node.keywords
        )


#: Method calls that mutate a container in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


@register
class LockDisciplineRule(Rule):
    """REP005: private memo attributes are written only under the lock."""

    id = "REP005"
    title = "memo attribute written outside the owning lock"
    tags = None  # structural hazard: applies everywhere

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = self._lock_attributes(cls)
        if not lock_attrs:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction is single-threaded by contract
            for node in ast.walk(method):
                attr = self._mutated_private_attr(node)
                if attr is None or attr in lock_attrs:
                    continue
                if not self._under_lock(ctx, node, lock_attrs):
                    yield self.finding(
                        ctx,
                        node,
                        f"write to self.{attr} outside "
                        f"'with self.{sorted(lock_attrs)[0]}:' — this class "
                        "guards its memos with a lock, so every mutation "
                        "must hold it",
                    )

    @staticmethod
    def _lock_attributes(cls: ast.ClassDef) -> frozenset[str]:
        locks: set[str] = set()
        for node in ast.walk(cls):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                if name is not None and name.split(".")[-1] in (
                    "Lock",
                    "RLock",
                ):
                    locks.add(target.attr)
        return frozenset(locks)

    @staticmethod
    def _mutated_private_attr(node: ast.AST) -> str | None:
        """The private self-attribute ``node`` mutates, if any."""
        target: ast.AST | None = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [
                node.target
            ]
            for tgt in targets:
                if isinstance(tgt, ast.Subscript):
                    tgt = tgt.value
                if isinstance(tgt, ast.Attribute):
                    target = tgt
                    break
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Attribute)
        ):
            target = node.func.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr.startswith("_")
        ):
            return target.attr
        return None

    @staticmethod
    def _under_lock(
        ctx: FileContext, node: ast.AST, lock_attrs: frozenset[str]
    ) -> bool:
        guards = {f"self.{attr}" for attr in lock_attrs}
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if dotted_name(item.context_expr) in guards:
                        return True
        return False


#: Entry points whose callable arguments must be picklable to reach the
#: process backend (first positional argument, plus the ``setup`` kwarg).
POOL_ENTRY_POINTS = frozenset({"parallel_map", "scatter", "ShardedPool"})


@register
class UnpicklablePoolUnitRule(Rule):
    """REP006: pools silently fall back to serial on unpicklable units."""

    id = "REP006"
    title = "lambda/closure handed to a parallel pool entry point"
    tags = None  # structural hazard: applies everywhere

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        local_names: dict[ast.AST, frozenset[str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            entry = self._entry_point(node)
            if entry is None:
                continue
            scope = self._enclosing_scope(ctx, node)
            if scope not in local_names:
                local_names[scope] = self._locally_defined(scope)
            local_callables = local_names[scope]
            for arg in self._callable_args(node, entry):
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        ctx,
                        node,
                        f"lambda passed to {entry} cannot be pickled: the "
                        "pool silently degrades to serial execution; use "
                        "a module-level function (or pragma the "
                        "documented serial fallback)",
                    )
                elif (
                    isinstance(arg, ast.Name) and arg.id in local_callables
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{arg.id!r} is defined inside the enclosing "
                        f"function, so {entry} cannot pickle it and "
                        "silently degrades to serial execution; move it "
                        "to module level (or pragma the documented "
                        "serial fallback)",
                    )

    @staticmethod
    def _enclosing_scope(ctx: FileContext, node: ast.AST) -> ast.AST:
        for ancestor in ctx.ancestors(node):
            if isinstance(
                ancestor, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return ancestor
        return ctx.tree

    @staticmethod
    def _locally_defined(scope: ast.AST) -> frozenset[str]:
        """Nested function defs and lambda bindings of a function scope."""
        if isinstance(scope, ast.Module):
            # Module-level defs *are* picklable; only lambda bindings.
            return frozenset(
                stmt.targets[0].id
                for stmt in scope.body
                if isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Lambda)
            )
        names: set[str] = set()
        for stmt in ast.walk(scope):
            if stmt is scope:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Lambda)
            ):
                names.add(stmt.targets[0].id)
        return frozenset(names)

    @staticmethod
    def _entry_point(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in POOL_ENTRY_POINTS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in POOL_ENTRY_POINTS:
            return func.attr
        return None

    @staticmethod
    def _callable_args(node: ast.Call, entry: str) -> list[ast.AST]:
        args: list[ast.AST] = []
        if entry in ("parallel_map", "scatter") and node.args:
            args.append(node.args[0])
        for kw in node.keywords:
            if kw.arg == "setup":
                args.append(kw.value)
        return args


_LISTING_FUNCS = frozenset({"os.listdir", "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that syntactically produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class NondeterministicIterationRule(Rule):
    """REP007: unordered iteration must be sorted before it feeds output."""

    id = "REP007"
    title = "nondeterministic iteration order in a deterministic module"
    tags = frozenset({DETERMINISTIC})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(
                    ctx,
                    node.iter,
                    "iterating a set: string hashes (and therefore set "
                    "order) vary across processes; wrap in sorted(...)",
                )
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension over a set: iteration order "
                            "varies across processes; wrap in sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_listing(ctx, node)

    def _check_listing(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        is_listing = False
        what = None
        if name is not None:
            leaf_roots = {
                "os": ctx.roots("os"),
                "glob": ctx.roots("glob"),
            }
            parts = name.split(".")
            if len(parts) == 2 and (
                (parts[0] in leaf_roots["os"] and parts[1] == "listdir")
                or (
                    parts[0] in leaf_roots["glob"]
                    and parts[1] in ("glob", "iglob")
                )
            ):
                is_listing, what = True, name
        if (
            not is_listing
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
        ):
            is_listing, what = True, f".{node.func.attr}()"
        if not is_listing:
            return
        for ancestor in ctx.ancestors(node):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == "sorted"
            ):
                return
        yield self.finding(
            ctx,
            node,
            f"{what} returns entries in filesystem order, which is not "
            "deterministic across hosts; wrap in sorted(...)",
        )
