"""FIG7 bench — global SV dependence of one PRO item (paper Fig. 7).

Expected shape vs the paper: the population SHAP values of a PRO item
flip sign at a mid-scale answer value (the paper reports >= 3 on a
5-level item), i.e. the DD model rediscovers a KD-style cutoff.
"""

import numpy as np

from benchmarks.conftest import record
from repro.experiments import run_fig7
from repro.experiments.fig7_global_dependence import render_fig7


def test_fig7_global_dependence(benchmark, ctx, results_dir):
    curve = benchmark.pedantic(run_fig7, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig7_global_dependence", render_fig7(curve))

    assert curve.feature.startswith("pro_")
    # A data-driven threshold emerged.
    assert curve.threshold is not None
    assert curve.values.min() < curve.threshold <= curve.values.max()
    # The dependence is monotone in the mean over the answer range ends
    # (low answers on one side of zero, high answers on the other).
    assert np.sign(curve.mean_shap[0]) != np.sign(curve.mean_shap[-1])
