"""Deterministic fan-out execution of independent experiment units.

The evaluation grid decomposes into units that share inputs but not
state: the CV folds of one protocol run, the 12 grid cells of Fig. 4,
the per-clinic models of Table 1, each ablation arm.  Every unit is a
pure function of ``(item, shared arrays)`` with its own seed, so the
only thing scheduling could leak into results is *ordering* — and
:func:`parallel_map` removes that channel by gathering results strictly
in submission order.  The parallel result list is therefore
bitwise-identical to the serial one (asserted by
``tests/parallel/test_determinism.py`` over the full grid).

Backend selection
-----------------
``n_jobs`` argument beats the ``REPRO_JOBS`` environment variable beats
the serial default:

* ``1`` (default) — serial in-process execution, zero overhead;
* ``N > 1`` — a process pool of N workers;
* ``0`` or ``-1`` — one worker per CPU.

Large shared arrays are handed to workers through POSIX shared memory
(:mod:`repro.parallel.shared`), so a design matrix is mapped, not
pickled, and never per task.  Nested parallelism is suppressed: inside a
worker :func:`resolve_jobs` always answers 1, so e.g. a protocol run
fanned out by the grid does not fork a second-level pool.

Tasks must be picklable (module-level functions, plain-data items) to
run on the process backend; anything unpicklable — a lambda model
factory, say — silently degrades to the serial backend with identical
results.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.parallel.shared import attach_shared, export_shared, release_shared

__all__ = ["resolve_jobs", "parallel_map", "in_worker"]

_IN_WORKER = False
_WORKER_SHARED: dict[str, np.ndarray] = {}


def in_worker() -> bool:
    """True inside an executor worker process."""
    return _IN_WORKER


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve the worker count: argument over ``REPRO_JOBS`` over 1.

    ``0`` and ``-1`` mean "one per CPU".  Inside a worker process the
    answer is always 1 — nested pools would oversubscribe the machine
    without changing any result.
    """
    if _IN_WORKER:
        return 1
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if n_jobs in (0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ValueError(f"n_jobs must be >= -1, got {n_jobs}")
    return n_jobs


def parallel_map(
    fn: Callable,
    items: Iterable,
    *,
    n_jobs: int | None = None,
    shared: dict[str, np.ndarray] | None = None,
) -> list:
    """Evaluate ``fn(item, shared_arrays)`` for every item.

    Results come back in submission order regardless of completion
    order, so the output is identical to
    ``[fn(item, shared) for item in items]`` on every backend.

    Parameters
    ----------
    fn:
        A pure function of ``(item, shared)``.  Module-level (picklable)
        for the process backend; unpicklable callables/items fall back
        to serial execution.
    shared:
        Name -> array mapping handed to every call.  On the process
        backend large numeric arrays travel via shared memory, the rest
        piggybacks on the worker initializer — nothing is re-sent per
        task.
    n_jobs:
        See :func:`resolve_jobs`.
    """
    items = list(items)
    shared = dict(shared or {})
    jobs = min(resolve_jobs(n_jobs), len(items))
    if jobs <= 1 or not _picklable((fn, items)):
        return [fn(item, shared) for item in items]

    specs, segments = export_shared(shared)
    try:
        # fork is the cheap default (no re-import per worker), but
        # forking a multithreaded parent can deadlock a child on a lock
        # some other thread held at fork time — threaded callers (the
        # context's documented thread-safe sharing) get spawn instead.
        use_fork = (
            "fork" in mp.get_all_start_methods()
            and threading.active_count() == 1
        )
        context = mp.get_context("fork" if use_fork else "spawn")
        try:
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=context,
                initializer=_init_worker,
                initargs=(specs,),
            ) as pool:
                futures = [pool.submit(_run_unit, fn, item) for item in items]
                return [future.result() for future in futures]
        except BrokenProcessPool:
            # A worker died (resource limits, killed container, ...).
            # The units are pure, so re-running serially gives the same
            # results — slower, never different.
            return [fn(item, shared) for item in items]
    finally:
        release_shared(segments)


def _init_worker(specs) -> None:
    global _IN_WORKER, _WORKER_SHARED
    _IN_WORKER = True
    _WORKER_SHARED = attach_shared(specs)


def _run_unit(fn: Callable, item):
    return fn(item, _WORKER_SHARED)


def _picklable(payload: Sequence) -> bool:
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True
