"""Unit tests for repro.knowledge.scoring."""

import numpy as np
import pytest

from repro.knowledge import CutoffRule, LinearBandScore, ThresholdScore


class TestThresholdScore:
    def test_paper_stress_example(self):
        # "stress level (from 1 to 10): the score is mapped to 1 if the
        # value is lower than 3 and 0 otherwise" (paper section 4).
        scorer = ThresholdScore(threshold=3, healthy_if_low=True)
        assert scorer(np.array([1, 2, 3, 7])).tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_healthy_if_high(self):
        scorer = ThresholdScore(threshold=4, healthy_if_low=False)
        assert scorer(np.array([3, 4, 5])).tolist() == [0.0, 1.0, 1.0]

    def test_nan_propagates(self):
        scorer = ThresholdScore(threshold=3)
        out = scorer(np.array([np.nan, 5.0]))
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_scalar_input(self):
        scorer = ThresholdScore(threshold=2, healthy_if_low=True)
        assert scorer([1.0]).tolist() == [1.0]


class TestLinearBandScore:
    def test_paper_steps_example(self):
        # "Other variables are mapped to a score in the [0, 1] range,
        # for instance the number of steps per day."
        scorer = LinearBandScore(low=2000, high=8000)
        out = scorer(np.array([1000.0, 2000.0, 5000.0, 8000.0, 12000.0]))
        assert out.tolist() == [0.0, 0.0, 0.5, 1.0, 1.0]

    def test_inverted_band(self):
        scorer = LinearBandScore(low=0, high=10, inverted=True)
        out = scorer(np.array([0.0, 5.0, 10.0]))
        assert out.tolist() == [1.0, 0.5, 0.0]

    def test_nan_propagates(self):
        out = LinearBandScore(low=0, high=1)(np.array([np.nan]))
        assert np.isnan(out[0])

    def test_degenerate_band_rejected(self):
        with pytest.raises(ValueError, match="low"):
            LinearBandScore(low=5, high=5)

    def test_scores_always_in_unit_interval(self, rng):
        scorer = LinearBandScore(low=-3, high=7)
        out = scorer(rng.normal(0, 100, size=1000))
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestCutoffRule:
    def test_applies_scorer(self):
        rule = CutoffRule("steps", LinearBandScore(0, 10), rationale="test")
        assert rule.score(np.array([5.0]))[0] == pytest.approx(0.5)

    def test_carries_rationale(self):
        rule = CutoffRule("x", ThresholdScore(1), rationale="expert judgement")
        assert rule.rationale == "expert judgement"
