"""The documentation tree is load-bearing: links resolve, commands run.

Two mechanical gates over ``docs/**/*.md`` + ``README.md``:

* every relative markdown link points at a file that exists, and every
  intra-doc anchor points at a real heading (GitHub slug rules), so a
  rename or section edit cannot silently strand readers;
* every ``python -m repro ...`` command the guides show parses — each
  distinct subcommand is invoked with ``--help`` and must exit 0, so a
  CLI flag rename cannot silently rot the runbook.
"""

import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted((REPO / "docs").glob("**/*.md")) + [REPO / "README.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*```")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO))


def _body_lines(path: Path, *, in_code: bool):
    """Yield the file's lines inside or outside fenced code blocks."""
    fenced = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            fenced = not fenced
            continue
        if fenced == in_code:
            yield line


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: drop punctuation, hyphenate spaces."""
    text = heading.strip().lower()
    kept = [c for c in text if c.isalnum() or c in " -"]
    return "".join(kept).replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    return {
        _github_slug(match.group(1))
        for line in _body_lines(path, in_code=False)
        if (match := _HEADING.match(line))
    }


def _links(path: Path):
    for line in _body_lines(path, in_code=False):
        yield from _LINK.findall(line)


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc):
    """No dead relative links; intra-repo anchors hit real headings."""
    broken = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        dest = doc if not target else (doc.parent / target).resolve()
        if not dest.exists():
            broken.append(f"{target!r} does not exist")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in _anchors(dest):
                broken.append(f"{target}#{anchor}: no such heading")
    assert not broken, f"{_doc_id(doc)}: {broken}"


def _repro_subcommands() -> list[tuple[str, ...]]:
    """Every distinct `python -m repro <words...>` the docs show."""
    commands: set[tuple[str, ...]] = set()
    for doc in DOC_FILES:
        pending = ""
        for line in _body_lines(doc, in_code=True):
            line = pending + line.strip()
            pending = ""
            if line.endswith("\\"):
                pending = line[:-1] + " "
                continue
            try:
                tokens = shlex.split(line, comments=True)
            except ValueError:
                continue
            # Strip leading env assignments (REPRO_JOBS=8, PYTHONPATH=src).
            while tokens and "=" in tokens[0]:
                tokens.pop(0)
            if tokens[:3] != ["python", "-m", "repro"]:
                continue
            words = []
            for token in tokens[3:]:
                if token.startswith("-"):
                    break
                words.append(token)
            commands.add(tuple(words))
    assert commands, "no `python -m repro` commands found in the docs"
    return sorted(commands)


@pytest.mark.parametrize(
    "words", _repro_subcommands(), ids=lambda words: " ".join(words) or "(root)"
)
def test_documented_cli_commands_parse(words):
    """`python -m repro <words> --help` exits 0 for every documented one."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *words, "--help"],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, (words, proc.stderr[-500:])
