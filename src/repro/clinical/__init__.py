"""Clinical decision support on top of SHAP explanations.

The paper's conclusion argues that interpretable predictions "make them
actionable, i.e., in the form of recommendations to patients" and that
per-patient SHAP rankings "may lead to different interventions for
these two patients" (Fig. 6).  This package closes that loop: it maps a
patient's negative SHAP contributions through the Intrinsic Capacity
ontology onto IC domains, ranks the impaired domains, and attaches
intervention templates per domain.

Public API
----------
``DomainImpact`` / ``aggregate_by_domain``
    Per-domain aggregation of SHAP contributions.
``Recommendation`` / ``DecisionSupportReport`` / ``recommend``
    Ranked, rendered intervention guidance for one patient.
``DEFAULT_INTERVENTIONS``
    The per-domain intervention templates.
"""

from repro.clinical.recommendations import (
    DEFAULT_INTERVENTIONS,
    DecisionSupportReport,
    DomainImpact,
    Recommendation,
    aggregate_by_domain,
    recommend,
)

__all__ = [
    "DEFAULT_INTERVENTIONS",
    "DecisionSupportReport",
    "DomainImpact",
    "Recommendation",
    "aggregate_by_domain",
    "recommend",
]
