"""HTTP serving bench — a closed-loop load generator with a tail SLO.

The network edition of the serving benches: the paper-scale SPPB model
is published into a registry, the asyncio HTTP front end
(:class:`~repro.serve.server.ScoringServer`) serves it, and a
closed-loop load generator — N keep-alive clients, each posting its
next micro-batch the moment the previous response lands — drives it the
way `bobbydeveaux__starbucks-mugs`-style dashboards drive their REST
tier.  Closed-loop means offered load adapts to service rate, so the
measured percentiles are queueing-free lower bounds a saturating open
load would degrade from.

Recorded in ``results/bench.json`` under ``serve_http`` with the same
``latency_ms`` schema as every other serving bench (and mirrored live
by ``GET /metrics``); the bench *asserts* the tail SLO — p99 at or
under :data:`P99_SLO_MS` — so a latency regression fails CI rather than
just drifting the trajectory.
"""

import http.client
import json
import threading
import time

from benchmarks.conftest import latency_percentiles, record, record_bench
from repro.serve import ModelRegistry, ScoringServer, ServerThread

#: Concurrent closed-loop clients.
CLIENTS = 4
#: Sequential posts per client.
POSTS_PER_CLIENT = 40
#: Rows per post (one micro-batch each, within the server's max_batch).
ROWS_PER_POST = 8
#: The asserted tail SLO, generous enough for a 1-CPU CI box.
P99_SLO_MS = 250.0


def _client(port, rows_wire, latencies, failures):
    connection = http.client.HTTPConnection("127.0.0.1", port)
    body = json.dumps({"rows": rows_wire})
    try:
        for _ in range(POSTS_PER_CLIENT):
            t0 = time.perf_counter()
            connection.request("POST", "/predict", body=body)
            response = connection.getresponse()
            payload = response.read()
            latencies.append(time.perf_counter() - t0)
            if response.status != 200:
                failures.append((response.status, payload[:200]))
                return
    finally:
        connection.close()


def test_serve_http_closed_loop_slo(ctx, results_dir, tmp_path):
    samples = ctx.samples("sppb", "dd", with_fi=True)
    result = ctx.result("sppb", "dd", with_fi=True)
    rows = samples.X[result.test_idx][:ROWS_PER_POST]
    rows_wire = [
        [None if value != value else float(value) for value in row]
        for row in rows
    ]

    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(
        "sppb",
        result.model,
        metadata={"features": list(samples.feature_names)},
    )
    server = ScoringServer(
        registry,
        "sppb",
        jobs=1,
        flush_interval=0.001,
        poll_interval=0,
    )
    with ServerThread(server) as handle:
        per_client = [[] for _ in range(CLIENTS)]
        failures: list = []
        threads = [
            threading.Thread(
                target=_client,
                args=(handle.port, rows_wire, per_client[i], failures),
            )
            for i in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        metrics_connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port
        )
        metrics_connection.request("GET", "/metrics")
        metrics = json.loads(metrics_connection.getresponse().read())
        metrics_connection.close()

    assert not failures, failures
    latencies = [latency for client in per_client for latency in client]
    posts = CLIENTS * POSTS_PER_CLIENT
    assert len(latencies) == posts
    assert metrics["requests"]["posts"] == posts
    assert metrics["requests"]["rows"] == posts * ROWS_PER_POST
    # Every client resends the same micro-batch: after the first, the
    # exact cache answers — the repeated-cohort regime the cache targets.
    assert metrics["cache"]["hit_rate"] > 0.9

    tail = latency_percentiles(latencies)
    throughput = posts * ROWS_PER_POST / elapsed
    record(
        results_dir,
        "serve_http",
        (
            "SERVE HTTP bench (closed-loop load generator)\n"
            f"  {CLIENTS} keep-alive clients x {POSTS_PER_CLIENT} posts "
            f"x {ROWS_PER_POST} rows = {posts * ROWS_PER_POST} rows "
            f"in {elapsed:.3f}s ({throughput:.0f} rows/s)\n"
            f"  post latency: p50 {tail['p50']:.2f} ms, "
            f"p95 {tail['p95']:.2f} ms, p99 {tail['p99']:.2f} ms "
            f"(SLO: p99 <= {P99_SLO_MS:.0f} ms)\n"
            f"  server cache hit rate: "
            f"{100 * metrics['cache']['hit_rate']:.0f}%, "
            f"queue rejected: {metrics['queue']['rejected']}"
        ),
    )
    record_bench(
        results_dir,
        "serve_http",
        elapsed,
        config={
            "clients": CLIENTS,
            "posts_per_client": POSTS_PER_CLIENT,
            "rows_per_post": ROWS_PER_POST,
            "jobs": 1,
            "p99_slo_ms": P99_SLO_MS,
        },
        latency_ms=tail,
    )
    assert tail["p99"] <= P99_SLO_MS, (
        f"p99 {tail['p99']:.2f} ms blew the {P99_SLO_MS:.0f} ms SLO"
    )
