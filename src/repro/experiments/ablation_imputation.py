"""ABL2 — interpolation-aggressiveness ablation (paper section 3).

The paper: "We experimentally determined the max size of gaps that could
be safely interpolated (five missing steps), by assessing the predictive
performance of each of the models resulting from training sets obtained
from more or less aggressive interpolation."  This ablation reruns the
QoL protocol across interpolation bounds and reports sample counts and
held-out performance per bound — reproducing that model-selection
experiment.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext, default_context

__all__ = ["run_imputation_ablation", "render_imputation_ablation"]


def run_imputation_ablation(
    context: ExperimentContext | None = None,
    outcome: str = "qol",
    max_gaps: tuple[int, ...] = (0, 1, 3, 5, 9, 17),
) -> dict[int, dict[str, float]]:
    """Return ``{max_gap: {n_samples, one_minus_mape or accuracy}}``."""
    ctx = context or default_context()
    # Every interpolation arm is an independent protocol run; fan the
    # missing ones out before the serial memo-hit loop below.
    ctx.prefetch([(outcome, "dd", False, max_gap) for max_gap in max_gaps])
    out: dict[int, dict[str, float]] = {}
    for max_gap in max_gaps:
        result = ctx.result(outcome, "dd", with_fi=False, max_gap=max_gap)
        metrics = result.test_report.as_dict()
        key = "accuracy" if outcome == "falls" else "one_minus_mape"
        out[max_gap] = {
            "n_samples": float(result.samples.n_samples),
            key: metrics[key],
        }
    return out


def render_imputation_ablation(result: dict[int, dict[str, float]]) -> str:
    """Plain-text rendering of the sweep."""
    lines = ["ABL2: interpolation bound vs performance"]
    for max_gap, row in result.items():
        metric = {k: v for k, v in row.items() if k != "n_samples"}
        (name, value), = metric.items()
        lines.append(
            f"  max_gap={max_gap:2d}: n={int(row['n_samples'])} "
            f"{name}={100 * value:.2f}%"
        )
    return "\n".join(lines)
