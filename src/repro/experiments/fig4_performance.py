"""FIG4 — DD vs KD predictive performance (paper Fig. 4).

Left block: 1-MAPE for QoL and SPPB, for KD/DD x with/without FI.
Right block: accuracy and per-class precision/recall/F1 for Falls.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext, default_context

__all__ = ["run_fig4", "render_fig4"]


def run_fig4(context: ExperimentContext | None = None) -> dict[str, dict]:
    """Return the Fig. 4 performance grid.

    Returns
    -------
    dict
        ``{outcome: {(kind, with_fi): metrics_dict}}`` with metrics as
        produced by the report ``as_dict`` methods.
    """
    ctx = context or default_context()
    cells = [
        (outcome, kind, with_fi)
        for outcome in ("qol", "sppb", "falls")
        for kind in ("kd", "dd")
        for with_fi in (False, True)
    ]
    # One fan-out over all 12 grid cells (no-op for memo hits); the
    # loop below then reads pure memo hits.
    ctx.prefetch(cells)
    grid: dict[str, dict] = {}
    for outcome, kind, with_fi in cells:
        result = ctx.result(outcome, kind, with_fi)
        grid.setdefault(outcome, {})[(kind, with_fi)] = (
            result.test_report.as_dict()
        )
    return grid


def render_fig4(grid: dict[str, dict]) -> str:
    """Plain-text rendering in the paper's layout."""
    lines = ["FIG4 left: 1-MAPE (regression outcomes)"]
    header = f"  {'':10s}" + "".join(
        f"{label:>10s}" for label in ("KD", "DD", "KD+FI", "DD+FI")
    )
    lines.append(header)
    for outcome in ("qol", "sppb"):
        cells = grid[outcome]
        row = [
            cells[("kd", False)]["one_minus_mape"],
            cells[("dd", False)]["one_minus_mape"],
            cells[("kd", True)]["one_minus_mape"],
            cells[("dd", True)]["one_minus_mape"],
        ]
        lines.append(
            f"  {outcome:10s}" + "".join(f"{100 * v:9.1f}%" for v in row)
        )

    lines.append("FIG4 right: Falls classification")
    metrics = (
        ("accuracy", "Acc"),
        ("precision_true", "Prec-T"),
        ("precision_false", "Prec-F"),
        ("recall_true", "Rec-T"),
        ("recall_false", "Rec-F"),
        ("f1_true", "F1-T"),
        ("f1_false", "F1-F"),
    )
    lines.append(header)
    for key, label in metrics:
        cells = grid["falls"]
        row = [
            cells[("kd", False)][key],
            cells[("dd", False)][key],
            cells[("kd", True)][key],
            cells[("dd", True)][key],
        ]
        lines.append(
            f"  {label:10s}" + "".join(f"{100 * v:9.1f}%" for v in row)
        )
    return "\n".join(lines)
