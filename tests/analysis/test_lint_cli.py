"""Exit-code and report-format contract for ``python -m repro lint``."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
POSITIVES = sorted(FIXTURES.glob("*_pos.py"))
NEGATIVES = sorted(FIXTURES.glob("*_neg.py"))


@pytest.mark.parametrize("fixture", POSITIVES, ids=lambda p: p.stem)
def test_positive_fixtures_exit_nonzero(fixture, capsys):
    assert main([str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "violation" in out


@pytest.mark.parametrize("fixture", NEGATIVES, ids=lambda p: p.stem)
def test_negative_fixtures_exit_zero(fixture, capsys):
    assert main([str(fixture)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_format_is_valid(capsys):
    assert main([str(FIXTURES / "rep001_pos.py"), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["clean"] is False
    assert all(f["rule"] == "REP001" for f in payload["findings"])
    # Columns are 1-based in reports.
    assert all(f["col"] >= 1 for f in payload["findings"])


def test_json_records_suppressions(capsys):
    assert main([str(FIXTURES / "pragma_neg.py"), "--format=json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert len(payload["suppressed"]) == 2
    assert all(s["reason"] for s in payload["suppressed"])


def test_out_writes_json_file(tmp_path, capsys):
    out_file = tmp_path / "reports" / "lint.json"
    code = main([str(FIXTURES / "rep002_pos.py"), "--out", str(out_file)])
    assert code == 1
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["clean"] is False
    # Human-readable report still goes to stdout alongside --out.
    assert "REP002" in capsys.readouterr().out


def test_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "no_such_file.py")]) == 2
    assert "no_such_file" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (f"REP{i:03d}" for i in range(1, 8)):
        assert rule_id in out


def test_module_dispatch_runs_lint():
    """``python -m repro lint`` reaches the analyzer CLI."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(FIXTURES / "rep004_pos.py")],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=Path(__file__).resolve().parents[2],
    )
    assert proc.returncode == 1
    assert "REP004" in proc.stdout
