"""In-source pragmas: suppressions and module scope markers.

Two comment forms are recognised (anywhere a comment is legal; the
tokenizer, not a regex over raw lines, finds them, so string literals
that merely *look* like pragmas are ignored):

``# repro: allow[REP003] -- reason text``
    Suppress the named rule(s) with a mandatory justification.  A
    trailing pragma covers findings on its own line; a pragma alone on
    a line covers the line below (the first line of the statement it
    annotates).  A pragma without justification text, or naming an
    unknown rule, is itself a violation (REP000) — silent suppressions
    are not allowed.

``# repro: scope[row-deterministic]``
    Add contract tags to this module on top of its package default
    (see :mod:`repro.analysis.config`).

Unused ``allow`` pragmas are reported as notes so stale suppressions
surface without failing the build.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.config import KNOWN_TAGS

__all__ = ["Pragma", "PragmaSheet", "scan_pragmas"]

_ALLOW_RE = re.compile(
    r"^#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)
_SCOPE_RE = re.compile(r"^#\s*repro:\s*scope\[(?P<tags>[^\]]*)\]\s*$")
_ANY_PRAGMA_RE = re.compile(r"^#\s*repro\s*:")
_RULE_ID_RE = re.compile(r"^REP\d{3}$")


@dataclass
class Pragma:
    """One well-formed ``allow`` pragma."""

    line: int  #: line the pragma *covers* (not necessarily its own)
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class PragmaSheet:
    """Every pragma-ish comment of one source file, parsed."""

    #: covered line -> allow pragmas for that line.
    allows: dict[int, list[Pragma]] = field(default_factory=dict)
    #: tags declared by ``scope[...]`` markers.
    scopes: frozenset[str] = frozenset()
    #: (line, message) for pragmas that must be reported as REP000.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def suppression_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma allowing ``rule`` on ``line``, if any (marks it used)."""
        for pragma in self.allows.get(line, ()):
            if rule in pragma.rules:
                pragma.used = True
                return pragma
        return None

    def unused(self) -> list[Pragma]:
        """Allow pragmas that never suppressed a finding."""
        out: list[Pragma] = []
        for line in sorted(self.allows):
            out.extend(p for p in self.allows[line] if not p.used)
        return out


def scan_pragmas(source: str) -> PragmaSheet:
    """Parse every ``# repro:`` comment of ``source``."""
    sheet = PragmaSheet()
    scopes: set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        # The engine reports unparsable files separately; no pragmas.
        return sheet
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string.strip()
        if not _ANY_PRAGMA_RE.match(comment):
            continue
        line = token.start[0]
        own_line = token.line[: token.start[1]].strip() == ""
        allow = _ALLOW_RE.match(comment)
        if allow is not None:
            _parse_allow(sheet, allow, line, own_line)
            continue
        scope = _SCOPE_RE.match(comment)
        if scope is not None:
            _parse_scope(sheet, scopes, scope, line)
            continue
        sheet.malformed.append(
            (line, f"unrecognised repro pragma: {comment!r}")
        )
    sheet.scopes = frozenset(scopes)
    return sheet


def _parse_allow(
    sheet: PragmaSheet, match: re.Match, line: int, own_line: bool
) -> None:
    rules = tuple(
        part.strip() for part in match.group("rules").split(",") if part.strip()
    )
    reason = (match.group("reason") or "").strip()
    bad = [rule for rule in rules if not _RULE_ID_RE.match(rule)]
    if not rules or bad:
        sheet.malformed.append(
            (line, f"allow pragma names no valid REP rule: {bad or '[]'}")
        )
        return
    if not reason:
        sheet.malformed.append(
            (
                line,
                f"allow[{', '.join(rules)}] pragma is missing its "
                "justification ('-- reason'); silent suppressions are "
                "not allowed",
            )
        )
        return
    covered = line + 1 if own_line else line
    pragma = Pragma(line=covered, rules=rules, reason=reason)
    sheet.allows.setdefault(covered, []).append(pragma)


def _parse_scope(
    sheet: PragmaSheet, scopes: set[str], match: re.Match, line: int
) -> None:
    tags = [
        part.strip() for part in match.group("tags").split(",") if part.strip()
    ]
    unknown = [tag for tag in tags if tag not in KNOWN_TAGS]
    if not tags or unknown:
        sheet.malformed.append(
            (
                line,
                f"scope pragma names unknown tag(s) {unknown}; known: "
                f"{sorted(KNOWN_TAGS)}",
            )
        )
        return
    scopes.update(tags)
