"""Unit and property tests for repro.synth.ordinal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import OrdinalLink


class TestValidation:
    def test_too_few_levels(self):
        with pytest.raises(ValueError, match="n_levels"):
            OrdinalLink(1, [])

    def test_threshold_count_mismatch(self):
        with pytest.raises(ValueError, match="thresholds"):
            OrdinalLink(3, [0.5])

    def test_non_increasing_thresholds(self):
        with pytest.raises(ValueError, match="increasing"):
            OrdinalLink(3, [0.6, 0.4])

    def test_thresholds_outside_unit_interval(self):
        with pytest.raises(ValueError, match="inside"):
            OrdinalLink(3, [0.0, 0.5])

    def test_negative_noise(self):
        with pytest.raises(ValueError, match="noise"):
            OrdinalLink(3, [0.3, 0.6], noise_sd=-0.1)

    def test_equispaced_invalid_skew(self):
        with pytest.raises(ValueError, match="skew"):
            OrdinalLink.equispaced(5, skew=1.0)


class TestMapping:
    def test_noise_free_boundaries(self):
        link = OrdinalLink(3, [0.33, 0.66], noise_sd=0.0)
        assert link.expected_answer(0.1) == 1
        assert link.expected_answer(0.5) == 2
        assert link.expected_answer(0.9) == 3

    def test_reversed_scale_flips(self):
        link = OrdinalLink(3, [0.33, 0.66], reversed_scale=True, noise_sd=0.0)
        assert link.expected_answer(0.1) == 3
        assert link.expected_answer(0.9) == 1

    def test_sample_matches_expected_when_noise_free(self, rng):
        link = OrdinalLink.equispaced(5, noise_sd=0.0)
        latent = np.linspace(0.05, 0.95, 20)
        answers = link.sample(latent, rng)
        expected = np.array([link.expected_answer(v) for v in latent])
        assert (answers == expected).all()

    def test_sample_monotone_in_latent_on_average(self, rng):
        link = OrdinalLink.equispaced(5, noise_sd=0.1)
        low = link.sample(np.full(3000, 0.2), rng).mean()
        high = link.sample(np.full(3000, 0.8), rng).mean()
        assert high > low

    def test_skew_bunches_answers(self, rng):
        skewed = OrdinalLink.equispaced(5, noise_sd=0.0, skew=0.5)
        uniform_latent = np.linspace(0.01, 0.99, 500)
        answers = skewed.sample(uniform_latent, rng)
        # positive skew pushes thresholds towards 1 -> lower answers rare
        assert np.mean(answers >= 4) < 0.5

    @given(
        n_levels=st.integers(2, 10),
        reversed_scale=st.booleans(),
        noise=st.floats(0.0, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_answers_always_in_range(self, n_levels, reversed_scale, noise):
        link = OrdinalLink.equispaced(
            n_levels, reversed_scale=reversed_scale, noise_sd=noise
        )
        rng = np.random.default_rng(0)
        latent = rng.uniform(-0.5, 1.5, size=200)  # deliberately out of range
        answers = link.sample(latent, rng)
        assert answers.min() >= 1
        assert answers.max() <= n_levels
