"""Commercial-grade wearable trace simulation (steps, calories, sleep).

The MySAwH protocol collects step count, calories and sleep hours daily
from an activity tracker.  Here each patient-day draws from person-level
base rates scaled by the relevant latent domain score of the month
(locomotion for steps/calories, vitality for sleep), with day-of-week
seasonality and heavy-tailed sensor noise.  Traces are complete: unlike
the PRO app, trackers log passively, and the paper's missing-data
discussion concerns the PRO series only.
"""

from __future__ import annotations

import numpy as np

from repro.cohort.config import ClinicConfig, CohortConfig
from repro.cohort.patients import PatientLatent
from repro.synth import SeedSequenceFactory, clipped_noise, weekly_profile

__all__ = ["generate_daily_trace"]

#: Population base rates for a subject at mid-scale latent health.
_BASE_STEPS = 5200.0
_BASE_CALORIES = 1950.0
_BASE_SLEEP = 6.4


def generate_daily_trace(
    cfg: CohortConfig,
    clinic: ClinicConfig,
    patient: PatientLatent,
    seeds: SeedSequenceFactory,
) -> dict[str, np.ndarray]:
    """Simulate the full daily trace for one patient.

    Returns arrays of length ``n_months * days_per_month`` keyed by
    ``day`` (0-based study day), ``month`` (1-based month the day falls
    in), ``steps``, ``calories`` and ``sleep_hours``.

    The month attribution is used later by monthly aggregation: month m
    covers study days ``(m-1)*days_per_month .. m*days_per_month - 1``.
    """
    rng = seeds.child(patient.patient_id).generator("wearable")
    n_days = cfg.n_months * cfg.days_per_month
    days = np.arange(n_days, dtype=np.int64)
    months = days // cfg.days_per_month + 1

    person_scale = np.exp(rng.normal(0.0, 0.25))
    profile = weekly_profile(rng)
    dow = days % 7

    loco = patient.domain_scores["locomotion"][months]
    vita = patient.domain_scores["vitality"][months]
    noise_scale = 1.0 + clinic.protocol_noise

    steps = (
        _BASE_STEPS
        * person_scale
        * (0.35 + 1.3 * loco)
        * profile[dow]
        * np.exp(clipped_noise(rng, n_days, 0.28 * noise_scale, heavy_tail=0.05))
    )
    calories = (
        _BASE_CALORIES
        * person_scale**0.5
        * (0.7 + 0.6 * loco)
        * profile[dow] ** 0.5
        * np.exp(clipped_noise(rng, n_days, 0.12 * noise_scale, heavy_tail=0.03))
    )
    sleep = np.clip(
        _BASE_SLEEP * (0.75 + 0.4 * vita)
        + clipped_noise(rng, n_days, 0.9 * noise_scale, heavy_tail=0.05),
        0.5,
        13.0,
    )

    return {
        "day": days,
        "month": months,
        "steps": np.round(steps).astype(np.float64),
        "calories": np.round(calories, 1),
        "sleep_hours": np.round(sleep, 2),
    }
