"""Unit tests for repro.serve.cache (exact LRU result cache)."""

import pytest

from repro.serve import LRUCache


class TestLRUSemantics:
    def test_get_put_round_trip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_missing_key_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        assert cache.get("nope", 42) == 42

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via put
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_contains_does_not_touch_recency_or_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # must NOT refresh "a"
        cache.put("c", 3)
        assert "a" not in cache  # "a" was still the LRU entry
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(-1)


class TestStats:
    def test_counters_and_hit_rate(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)  # evicts a
        cache.get("b")
        cache.get("a")
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 1
        assert stats.capacity == 1
        assert stats.hit_rate == 0.5

    def test_idle_hit_rate_is_zero(self):
        assert LRUCache(4).stats.hit_rate == 0.0
