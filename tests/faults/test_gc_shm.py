"""Orphaned shared-memory sweeper: scan, dry-run, unlink, guard rails.

A worker-pool crash (or a SIGKILL'd parent) can leave ``psm_*``
segments in ``/dev/shm`` with no process mapping them.  The sweeper
must find exactly those, leave mapped segments alone, refuse anything
that is not a bare segment basename, and stay dry-run by default from
the CLI.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import pytest

from repro.parallel.shared import scan_orphan_segments, unlink_segments
from repro.serve.driver import main as serve_main

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


@pytest.fixture
def orphan_segment():
    """A real orphan: created, unregistered, and abandoned by a child.

    The child creates the segment, detaches the resource tracker from
    it (so the tracker does not clean it up at child exit — exactly the
    bookkeeping a SIGKILL destroys), and exits without unlinking.
    """
    from multiprocessing import resource_tracker

    segment = shared_memory.SharedMemory(create=True, size=64)
    name = segment.name
    # Drop our mapping and the tracker registration; the file stays.
    resource_tracker.unregister(segment._name, "shared_memory")
    segment.close()
    yield name
    try:
        os.unlink(f"/dev/shm/{name}")
    except FileNotFoundError:
        pass


class TestScan:
    def test_orphan_is_found(self, orphan_segment):
        assert orphan_segment in scan_orphan_segments()

    def test_mapped_segment_is_not_an_orphan(self):
        segment = shared_memory.SharedMemory(create=True, size=64)
        try:
            assert segment.name not in scan_orphan_segments()
        finally:
            segment.close()
            segment.unlink()


class TestUnlink:
    def test_unlink_removes_the_orphan(self, orphan_segment):
        removed = unlink_segments([orphan_segment])
        assert removed == [orphan_segment]
        assert not os.path.exists(f"/dev/shm/{orphan_segment}")
        assert orphan_segment not in scan_orphan_segments()

    def test_missing_segment_is_skipped(self):
        assert unlink_segments(["psm_definitely_not_there"]) == []

    @pytest.mark.parametrize(
        "name", ["../etc/passwd", "psm_x/../../etc/passwd", "notpsm_abc", ""]
    )
    def test_refuses_anything_but_bare_segment_names(self, name):
        with pytest.raises(ValueError, match="refusing to unlink"):
            unlink_segments([name])


class TestCli:
    def test_dry_run_lists_but_keeps(self, orphan_segment, capsys):
        assert serve_main(["gc-shm"]) == 0
        out = capsys.readouterr().out
        assert f"orphan: /dev/shm/{orphan_segment}" in out
        assert "dry run" in out and "--yes" in out
        assert os.path.exists(f"/dev/shm/{orphan_segment}")

    def test_yes_unlinks(self, orphan_segment, capsys):
        assert serve_main(["gc-shm", "--yes"]) == 0
        out = capsys.readouterr().out
        assert f"unlinked: /dev/shm/{orphan_segment}" in out
        assert not os.path.exists(f"/dev/shm/{orphan_segment}")
