"""Integration tests for the gradient-boosting estimators."""

import numpy as np
import pytest

from repro.boosting import GBClassifier, GBConfig, GBRegressor


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(600, 8))
    X[rng.random(X.shape) < 0.1] = np.nan
    y = (
        2.0 * np.nan_to_num(X[:, 0])
        + np.sin(2.0 * np.nan_to_num(X[:, 1]))
        + rng.normal(0, 0.2, 600)
    )
    return X, y


@pytest.fixture(scope="module")
def classification_data():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(600, 6))
    logits = 4.0 * X[:, 0] - 2.5 * X[:, 1]
    y = rng.random(600) < 1 / (1 + np.exp(-logits))
    return X, y


class TestConfig:
    def test_defaults_valid(self):
        GBConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"max_depth": 0},
            {"min_child_weight": -1.0},
            {"reg_lambda": -0.1},
            {"gamma": -0.1},
            {"subsample": 0.0},
            {"colsample_bytree": 1.0001},
            {"max_bins": 1},
            {"early_stopping_rounds": -1},
        ],
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            GBConfig(**kwargs)

    def test_estimator_rejects_config_plus_overrides(self):
        with pytest.raises(ValueError, match="either"):
            GBRegressor(GBConfig(), n_estimators=10)

    def test_estimator_accepts_overrides(self):
        model = GBRegressor(n_estimators=13)
        assert model.config.n_estimators == 13


class TestRegressor:
    def test_learns_signal(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=80, max_depth=3)
        model.fit(X[:500], y[:500])
        pred = model.predict(X[500:])
        mae = float(np.mean(np.abs(pred - y[500:])))
        baseline = float(np.mean(np.abs(np.mean(y[:500]) - y[500:])))
        assert mae < 0.5 * baseline

    def test_deterministic_given_seed(self, regression_data):
        X, y = regression_data
        a = GBRegressor(n_estimators=10).fit(X, y).predict(X[:5])
        b = GBRegressor(n_estimators=10).fit(X, y).predict(X[:5])
        assert np.array_equal(a, b)

    def test_different_seed_differs(self, regression_data):
        X, y = regression_data
        a = GBRegressor(n_estimators=10, random_state=0).fit(X, y).predict(X[:20])
        b = GBRegressor(n_estimators=10, random_state=1).fit(X, y).predict(X[:20])
        assert not np.array_equal(a, b)

    def test_early_stopping_truncates(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=300, early_stopping_rounds=5)
        model.fit(X[:400], y[:400], eval_set=(X[400:], y[400:]))
        assert model.best_iteration_ < 300
        assert len(model.ensemble_.trees) == model.best_iteration_

    def test_eval_history_recorded(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=20, early_stopping_rounds=0)
        model.fit(X[:400], y[:400], eval_set=(X[400:], y[400:]))
        assert len(model.eval_history_) == 20

    def test_eval_history_truncated_with_ensemble(self, regression_data):
        # After early stopping rewinds to best_iteration_, the recorded
        # history must not keep the post-best entries.
        X, y = regression_data
        model = GBRegressor(n_estimators=300, early_stopping_rounds=5)
        model.fit(X[:400], y[:400], eval_set=(X[400:], y[400:]))
        assert model.best_iteration_ < 300
        assert len(model.eval_history_) == model.best_iteration_
        assert model.eval_history_[-1] == min(model.eval_history_)

    def test_constant_target_predicts_constant(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        y = np.full(50, 7.0)
        model = GBRegressor(n_estimators=5).fit(X, y)
        assert np.allclose(model.predict(X), 7.0)

    def test_single_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 1))
        y = 3.0 * X[:, 0]
        model = GBRegressor(n_estimators=60, max_depth=2).fit(X, y)
        assert float(np.mean(np.abs(model.predict(X) - y))) < 0.5

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GBRegressor().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=3).fit(X, y)
        with pytest.raises(ValueError, match="expected shape"):
            model.predict(np.zeros((2, 3)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            GBRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_length_mismatch_rejected(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="rows"):
            GBRegressor().fit(X, y[:-1])

    def test_feature_importances_normalised(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=20).fit(X, y)
        imp = model.feature_importances()
        assert imp.shape == (8,)
        assert float(imp.sum()) == pytest.approx(1.0)
        assert imp[0] > imp[5]  # signal feature beats noise feature

    def test_missing_values_at_predict_time(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=20).fit(X, y)
        X_missing = X[:10].copy()
        X_missing[:, 0] = np.nan
        assert np.isfinite(model.predict(X_missing)).all()

    def test_gamma_prunes_splits(self, regression_data):
        X, y = regression_data
        free = GBRegressor(n_estimators=10, gamma=0.0).fit(X, y)
        pruned = GBRegressor(n_estimators=10, gamma=1e6).fit(X, y)
        n_free = sum(t.n_leaves for t in free.ensemble_.trees)
        n_pruned = sum(t.n_leaves for t in pruned.ensemble_.trees)
        assert n_pruned < n_free

    def test_max_depth_respected(self, regression_data):
        X, y = regression_data
        model = GBRegressor(n_estimators=5, max_depth=2).fit(X, y)
        assert all(t.max_depth() <= 2 for t in model.ensemble_.trees)


class TestClassifier:
    def test_learns_signal(self, classification_data):
        X, y = classification_data
        model = GBClassifier(n_estimators=60, max_depth=3)
        model.fit(X[:500], y[:500])
        acc = float(np.mean(model.predict(X[500:]) == y[500:]))
        assert acc > 0.75

    def test_probabilities_in_unit_interval(self, classification_data):
        X, y = classification_data
        model = GBClassifier(n_estimators=20).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_predict_returns_int_labels(self, classification_data):
        # The docstring promises class labels, not booleans.
        X, y = classification_data
        model = GBClassifier(n_estimators=20).fit(X, y)
        pred = model.predict(X)
        assert pred.dtype == np.int64
        assert set(np.unique(pred)) <= {0, 1}
        assert np.array_equal(pred, (model.predict_proba(X) >= 0.5).astype(np.int64))

    def test_predict_int_labels_with_bool_targets(self, classification_data):
        X, y = classification_data
        model = GBClassifier(n_estimators=10).fit(X, y.astype(bool))
        pred = model.predict(X)
        assert pred.dtype == np.int64
        assert float(np.mean(pred == y.astype(np.int64))) > 0.7

    def test_threshold_shifts_predictions(self, classification_data):
        X, y = classification_data
        model = GBClassifier(n_estimators=20).fit(X, y)
        strict = model.predict(X, threshold=0.9).sum()
        lax = model.predict(X, threshold=0.1).sum()
        assert lax > strict

    def test_invalid_threshold(self, classification_data):
        X, y = classification_data
        model = GBClassifier(n_estimators=5).fit(X, y)
        with pytest.raises(ValueError):
            model.predict(X, threshold=0.0)

    def test_bool_targets_accepted(self, classification_data):
        X, y = classification_data
        GBClassifier(n_estimators=3).fit(X, y.astype(bool))

    def test_non_binary_targets_rejected(self, classification_data):
        X, _ = classification_data
        with pytest.raises(ValueError, match="binary"):
            GBClassifier().fit(X, np.full(len(X), 2.0))
