"""Expert scoring functions ``s_i(x)`` for the ICI.

The paper (section 4): "For most of the variables V_i, a binary score is
defined, i.e. s_i(x) in {0, 1}, based on a single threshold, for instance
when V_i = stress level (from 1 to 10) the score is mapped to 1 if the
value is lower than 3 and 0 otherwise.  Other variables are mapped to a
score in the [0, 1] range, for instance the number of steps per day."

Two scoring families cover this:

``ThresholdScore``
    Binary cutoff (1 on the healthy side of a threshold, else 0).
``LinearBandScore``
    Piecewise-linear ramp to [0, 1] between two anchor values.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["ScoreFunction", "ThresholdScore", "LinearBandScore", "CutoffRule"]


class ScoreFunction(abc.ABC):
    """A map from raw variable values to scores in [0, 1]."""

    @abc.abstractmethod
    def score(self, values: np.ndarray) -> np.ndarray:
        """Vectorised scoring; NaN inputs yield NaN scores."""

    def __call__(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = self.score(values)
        finite = ~np.isnan(out)
        if finite.any() and (out[finite].min() < 0 or out[finite].max() > 1):
            raise AssertionError(
                f"{type(self).__name__} produced scores outside [0, 1]"
            )  # pragma: no cover - guards subclass bugs
        return out


@dataclass(frozen=True)
class ThresholdScore(ScoreFunction):
    """Binary cutoff score.

    ``healthy_if_low=True`` scores 1 when ``value < threshold`` (e.g.
    stress level < 3); otherwise 1 when ``value >= threshold`` (e.g.
    mobility answer >= 4).
    """

    threshold: float
    healthy_if_low: bool = False

    def score(self, values: np.ndarray) -> np.ndarray:
        if self.healthy_if_low:
            healthy = values < self.threshold
        else:
            healthy = values >= self.threshold
        out = healthy.astype(np.float64)
        out[np.isnan(values)] = np.nan
        return out


@dataclass(frozen=True)
class LinearBandScore(ScoreFunction):
    """Piecewise-linear ramp: 0 at/below ``low``, 1 at/above ``high``.

    Used for continuous variables such as daily step count, where the
    experts grade rather than binarise (e.g. 0 below 2 000 steps/day,
    1 above 8 000, linear in between).  ``inverted=True`` flips the ramp
    for variables where lower is healthier.
    """

    low: float
    high: float
    inverted: bool = False

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError("low must be strictly less than high")

    def score(self, values: np.ndarray) -> np.ndarray:
        ramp = (values - self.low) / (self.high - self.low)
        ramp = np.clip(ramp, 0.0, 1.0)
        if self.inverted:
            ramp = 1.0 - ramp
        ramp = np.where(np.isnan(values), np.nan, ramp)
        return ramp


@dataclass(frozen=True)
class CutoffRule:
    """An expert rule: variable name + scoring function + rationale.

    ``rationale`` records why the expert chose this cutoff; it is carried
    into reports so the KD arm stays auditable (the paper stresses that
    the KD approach "relies on easy-to-interpret metrics ... defined
    manually by clinical experts").
    """

    variable: str
    scorer: ScoreFunction
    rationale: str = ""

    def score(self, values) -> np.ndarray:
        """Apply the rule's scorer to raw values."""
        return self.scorer(values)
