"""Tests for the server's admission controller (repro.serve.admission)."""

import pytest

from repro.serve import AdmissionController


class TestAdmission:
    def test_admits_until_the_row_bound(self):
        admission = AdmissionController(10)
        assert admission.try_admit(6)
        assert admission.try_admit(4)
        assert admission.depth == 10
        assert not admission.try_admit(1)
        assert admission.depth == 10  # a refusal charges nothing
        assert admission.admitted == 2
        assert admission.rejected == 1

    def test_release_frees_budget(self):
        admission = AdmissionController(4)
        assert admission.try_admit(4)
        assert not admission.try_admit(1)
        admission.release(4)
        assert admission.depth == 0
        assert admission.try_admit(3)

    def test_oversized_single_request_is_refused(self):
        admission = AdmissionController(4)
        assert not admission.try_admit(5)
        assert admission.depth == 0

    def test_release_cannot_go_negative(self):
        admission = AdmissionController(4)
        admission.try_admit(2)
        with pytest.raises(ValueError):
            admission.release(3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(4).try_admit(0)

    def test_retry_after_estimates_drain_time(self):
        admission = AdmissionController(100)
        admission.try_admit(50)
        assert admission.retry_after(10.0) == 5
        assert admission.retry_after(1000.0) == 1  # floored at a second
        assert admission.retry_after(0.0) == 1  # cold plane: no rate yet
        admission.release(50)
        assert admission.retry_after(10.0) == 1
