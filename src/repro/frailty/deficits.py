"""The 37-deficit catalogue behind the Frailty Index.

Composition follows section 3 of the paper ("37 of these variables were
used to measure the Frailty Index"): 27 blood-test deficits, 3 body
composition deficits, 7 HIV-related / patient-reported deficits.

Each deficit carries the parameters of its *generation model* — how
strongly it responds to declining latent health (``sensitivity``), its
baseline prevalence in a fully healthy subject (``base_rate``) and whether
it is binary (present/absent) or graded (0, 0.5, 1 severity steps, as the
Searle procedure allows).  A deficit value is always in [0, 1], so the FI
(mean deficit) is too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Deficit", "DEFICIT_CATALOGUE", "deficit_names"]

#: Deficit categories with the paper's counts.
CATEGORY_COUNTS = {"blood": 27, "body_composition": 3, "hiv_pro": 7}


@dataclass(frozen=True)
class Deficit:
    """One health deficit contributing to the Frailty Index.

    Attributes
    ----------
    name:
        Column name in the visits table, e.g. ``"blood_07"``.
    category:
        One of ``blood``, ``body_composition``, ``hiv_pro``.
    base_rate:
        Probability (binary) or expected severity (graded) of the deficit
        for a subject at perfect latent health (h = 1).
    sensitivity:
        How steeply expression rises as latent health falls; the
        expression probability is
        ``clip(base_rate + sensitivity * (1 - h), 0, 1)``.
    graded:
        If True the deficit takes values {0, 0.5, 1} (partial
        expression); if False it is binary {0, 1}.
    """

    name: str
    category: str
    base_rate: float
    sensitivity: float
    graded: bool

    def __post_init__(self):
        if self.category not in CATEGORY_COUNTS:
            raise ValueError(f"unknown deficit category {self.category!r}")
        if not 0.0 <= self.base_rate <= 1.0:
            raise ValueError("base_rate must be in [0, 1]")
        if self.sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")

    def expression_probability(self, latent_health) -> np.ndarray:
        """Probability of (full) expression given latent health in [0, 1]."""
        h = np.asarray(latent_health, dtype=np.float64)
        return np.clip(self.base_rate + self.sensitivity * (1.0 - h), 0.0, 1.0)

    def sample(self, latent_health, rng: np.random.Generator) -> np.ndarray:
        """Draw deficit values for latent health values.

        Binary deficits return {0, 1}; graded ones {0, 0.5, 1} with the
        half step representing sub-clinical expression.
        """
        p = self.expression_probability(latent_health)
        if not self.graded:
            return (rng.random(p.shape) < p).astype(np.float64)
        # Graded: split the expression probability between partial (2/3 of
        # the mass) and full (1/3) so means stay comparable to binary.
        u = rng.random(p.shape)
        full = u < p / 3.0
        partial = (~full) & (u < p)
        return np.where(full, 1.0, np.where(partial, 0.5, 0.0))


def _build_catalogue() -> tuple[Deficit, ...]:
    """Construct the 37-deficit catalogue.

    Parameters are varied deterministically so deficits span weakly to
    strongly health-linked markers; a handful of near-insensitive
    deficits model lab values that vary for reasons other than frailty.
    """
    deficits: list[Deficit] = []
    sensitivities = (0.65, 0.45, 0.30, 0.15, 0.05)
    base_rates = (0.02, 0.05, 0.10, 0.08, 0.03)
    for cat, count in CATEGORY_COUNTS.items():
        prefix = {"blood": "blood", "body_composition": "body", "hiv_pro": "hivp"}[cat]
        for k in range(count):
            deficits.append(
                Deficit(
                    name=f"{prefix}_{k + 1:02d}",
                    category=cat,
                    base_rate=base_rates[k % len(base_rates)],
                    sensitivity=sensitivities[k % len(sensitivities)],
                    graded=(k % 4 == 2),
                )
            )
    assert len(deficits) == 37, f"catalogue has {len(deficits)}, expected 37"
    return tuple(deficits)


#: The canonical 37-deficit catalogue.
DEFICIT_CATALOGUE: tuple[Deficit, ...] = _build_catalogue()


def deficit_names() -> list[str]:
    """Names of all 37 deficits in canonical order."""
    return [d.name for d in DEFICIT_CATALOGUE]
