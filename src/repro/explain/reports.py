"""Attribution reports: local rankings (Fig. 6), global dependence (Fig. 7).

The paper's clinical use of SHAP:

* **Local** — for each patient, the clinician receives the prediction
  plus the features ranked by their Shapley contribution, split into
  positively (green) and negatively (red) contributing groups; two
  patients with the *same* prediction can have entirely different
  rankings (Fig. 6), which is the personalisation argument.
* **Global** — plotting one variable's SHAP value against its raw value
  across the population reveals data-driven thresholds (Fig. 7 shows a
  PRO item whose contribution flips sign at answer >= 3), mimicking the
  manually chosen KD cutoffs but learned from data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LocalExplanation",
    "top_k_features",
    "local_reports",
    "GlobalDependence",
    "dependence_curve",
    "detect_threshold",
    "GlobalImportance",
    "global_importance",
]


@dataclass(frozen=True)
class LocalExplanation:
    """A per-sample attribution report.

    Attributes
    ----------
    prediction:
        The model output being explained (raw scale).
    expected_value:
        The population baseline (prediction with no feature knowledge).
    features:
        Feature names ranked by |SHAP|, descending, truncated to k.
    contributions:
        The corresponding signed SHAP values.
    values:
        The corresponding raw feature values of the sample.
    """

    prediction: float
    expected_value: float
    features: tuple[str, ...]
    contributions: tuple[float, ...]
    values: tuple[float, ...]

    def positive(self) -> list[tuple[str, float]]:
        """Features pushing the prediction up (paper's green bars)."""
        return [
            (f, c) for f, c in zip(self.features, self.contributions) if c > 0
        ]

    def negative(self) -> list[tuple[str, float]]:
        """Features pushing the prediction down (paper's red bars)."""
        return [
            (f, c) for f, c in zip(self.features, self.contributions) if c < 0
        ]

    def render(self) -> str:
        """Plain-text rendering of the report (for examples/CLI)."""
        lines = [
            f"prediction = {self.prediction:+.4f} "
            f"(baseline {self.expected_value:+.4f})"
        ]
        for name, contrib, value in zip(
            self.features, self.contributions, self.values
        ):
            # Exactly-zero contributions are neutral (consistent with
            # positive()/negative(), which exclude them).
            arrow = "+" if contrib > 0 else ("-" if contrib < 0 else "=")
            shown = "missing" if np.isnan(value) else f"{value:g}"
            lines.append(f"  [{arrow}] {name} = {shown}: {contrib:+.4f}")
        return "\n".join(lines)


def top_k_features(
    shap_row: np.ndarray,
    x_row: np.ndarray,
    feature_names: list[str],
    prediction: float,
    expected_value: float,
    k: int = 5,
) -> LocalExplanation:
    """Build the paper's top-k local report for one sample.

    The paper reports "the 5 most relevant Shapley Values" per patient
    (Fig. 6); ``k`` defaults accordingly.
    """
    shap_row = np.asarray(shap_row, dtype=np.float64)
    x_row = np.asarray(x_row, dtype=np.float64)
    if len(shap_row) != len(feature_names) or len(x_row) != len(feature_names):
        raise ValueError("shap/x/feature_names lengths differ")
    if k < 1:
        raise ValueError("k must be >= 1")
    order = np.argsort(-np.abs(shap_row))[:k]
    return LocalExplanation(
        prediction=float(prediction),
        expected_value=float(expected_value),
        features=tuple(feature_names[i] for i in order),
        contributions=tuple(float(shap_row[i]) for i in order),
        values=tuple(float(x_row[i]) for i in order),
    )


def local_reports(
    shap_matrix: np.ndarray,
    X: np.ndarray,
    feature_names: list[str],
    expected_value: float,
    k: int = 5,
) -> list[LocalExplanation]:
    """Top-k local reports for a whole batch from one SHAP matrix.

    Companion of the batched
    :meth:`~repro.explain.treeshap.TreeShapExplainer.shap_values`: the
    per-sample predictions are recovered from the efficiency axiom
    (``expected_value + row.sum()``), so a cohort's reports need no
    second model pass.
    """
    shap_matrix = np.asarray(shap_matrix, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    if shap_matrix.ndim != 2 or shap_matrix.shape != X.shape:
        raise ValueError(
            f"shap matrix shape {shap_matrix.shape} does not match "
            f"X shape {X.shape}"
        )
    predictions = expected_value + shap_matrix.sum(axis=1)
    return [
        top_k_features(
            shap_matrix[i], X[i], feature_names,
            float(predictions[i]), expected_value, k=k,
        )
        for i in range(X.shape[0])
    ]


@dataclass(frozen=True)
class GlobalDependence:
    """SV-vs-value summary of one feature across a population.

    Attributes
    ----------
    feature:
        Feature name.
    values:
        Sorted distinct raw values observed (categorical PRO answers in
        the paper's Fig. 7).
    mean_shap:
        Mean SHAP value at each raw value.
    counts:
        Number of samples at each raw value.
    threshold:
        The detected sign-change threshold (see
        :func:`detect_threshold`), or None when the curve does not
        cross zero monotonically.
    """

    feature: str
    values: np.ndarray
    mean_shap: np.ndarray
    counts: np.ndarray
    threshold: float | None

    def flip_direction(self) -> str | None:
        """Orientation of the sign change at ``threshold``.

        ``"negative_to_positive"`` when the contribution turns positive
        at values >= threshold (the paper's Fig. 7 orientation),
        ``"positive_to_negative"`` for the opposite flip, None when no
        threshold was detected.
        """
        if self.threshold is None:
            return None
        signs = np.sign(self.mean_shap)
        after = np.flatnonzero((self.values >= self.threshold) & (signs != 0))
        if after.size == 0:  # defensive; cannot happen for detected thresholds
            return None
        return (
            "negative_to_positive" if signs[after[0]] > 0
            else "positive_to_negative"
        )

    def render(self) -> str:
        """Plain-text rendering of the dependence curve."""
        lines = [f"global dependence for {self.feature!r}"]
        for v, s, c in zip(self.values, self.mean_shap, self.counts):
            bar = "#" * min(40, int(abs(s) * 200))
            sign = "+" if s >= 0 else "-"
            lines.append(f"  value {v:g} (n={c}): {s:+.4f} {sign}{bar}")
        if self.threshold is not None:
            flip = (
                "flips - to +"
                if self.flip_direction() == "negative_to_positive"
                else "flips + to -"
            )
            lines.append(
                f"  detected threshold: >= {self.threshold:g} "
                f"(contribution {flip})"
            )
        return "\n".join(lines)


def dependence_curve(
    shap_column: np.ndarray,
    x_column: np.ndarray,
    feature: str,
    max_points: int = 25,
) -> GlobalDependence:
    """Aggregate one feature's SHAP values per raw value.

    Continuous features are quantile-bucketed to at most ``max_points``
    representative values; categorical (few distinct values) features
    keep exact categories, as in the paper's PRO example.
    """
    shap_column = np.asarray(shap_column, dtype=np.float64)
    x_column = np.asarray(x_column, dtype=np.float64)
    keep = ~np.isnan(x_column)
    xs, ss = x_column[keep], shap_column[keep]
    if xs.size == 0:
        raise ValueError(f"feature {feature!r} has no observed values")

    distinct = np.unique(xs)
    if len(distinct) > max_points:
        edges = np.quantile(xs, np.linspace(0, 1, max_points + 1))
        edges = np.unique(edges)
        codes = np.clip(np.searchsorted(edges, xs, side="right") - 1, 0, len(edges) - 2)
        distinct = np.array(
            [xs[codes == b].mean() for b in range(len(edges) - 1) if (codes == b).any()]
        )
        groups = [
            np.flatnonzero(codes == b)
            for b in range(len(edges) - 1)
            if (codes == b).any()
        ]
    else:
        groups = [np.flatnonzero(xs == v) for v in distinct]

    mean_shap = np.array([ss[g].mean() for g in groups])
    counts = np.array([len(g) for g in groups], dtype=np.int64)
    threshold = detect_threshold(distinct, mean_shap)
    return GlobalDependence(
        feature=feature,
        values=distinct,
        mean_shap=mean_shap,
        counts=counts,
        threshold=threshold,
    )


@dataclass(frozen=True)
class GlobalImportance:
    """Population-level feature ranking by mean |SHAP|.

    This is the SHAP "summary" view: for the whole study population,
    which variables drive the model, regardless of direction.  The
    paper uses it implicitly when it says SHAP ranks "the relative
    influence of each feature ... globally, i.e. when considering the
    model predictions for an entire population".
    """

    features: tuple[str, ...]
    mean_abs_shap: tuple[float, ...]
    mean_shap: tuple[float, ...]

    def render(self) -> str:
        """Plain-text ranking."""
        lines = ["global feature importance (mean |SHAP|)"]
        top = max(self.mean_abs_shap) if self.mean_abs_shap else 1.0
        for name, mag, signed in zip(
            self.features, self.mean_abs_shap, self.mean_shap
        ):
            bar = "#" * int(30 * mag / top) if top > 0 else ""
            lines.append(f"  {name:16s} {mag:.4f} (mean {signed:+.4f}) {bar}")
        return "\n".join(lines)


def global_importance(
    shap_matrix: np.ndarray,
    feature_names: list[str],
    k: int = 15,
) -> GlobalImportance:
    """Rank features by mean absolute SHAP value over a population.

    Parameters
    ----------
    shap_matrix:
        ``(n_samples, n_features)`` SHAP values.
    feature_names:
        Column names, length ``n_features``.
    k:
        Number of top features to keep.
    """
    shap_matrix = np.asarray(shap_matrix, dtype=np.float64)
    if shap_matrix.ndim != 2 or shap_matrix.shape[1] != len(feature_names):
        raise ValueError(
            f"shap matrix shape {shap_matrix.shape} does not match "
            f"{len(feature_names)} feature names"
        )
    if k < 1:
        raise ValueError("k must be >= 1")
    magnitude = np.abs(shap_matrix).mean(axis=0)
    order = np.argsort(-magnitude)[:k]
    signed = shap_matrix.mean(axis=0)
    return GlobalImportance(
        features=tuple(feature_names[i] for i in order),
        mean_abs_shap=tuple(float(magnitude[i]) for i in order),
        mean_shap=tuple(float(signed[i]) for i in order),
    )


def detect_threshold(values: np.ndarray, mean_shap: np.ndarray) -> float | None:
    """Find the cutoff where the mean SHAP contribution changes sign.

    This is the paper's observation that the DD model re-discovers the
    experts' manual cutoffs: in Fig. 7 the PRO item's contribution turns
    positive at answers >= 3.  The detector returns the smallest value
    whose side of the curve is (weakly) consistently opposite in sign to
    the other side; None when there is no single sign change.
    """
    values = np.asarray(values, dtype=np.float64)
    mean_shap = np.asarray(mean_shap, dtype=np.float64)
    if len(values) != len(mean_shap):
        raise ValueError("values and mean_shap lengths differ")
    if len(values) < 2:
        return None
    signs = np.sign(mean_shap)
    nz = np.flatnonzero(signs)
    if nz.size < 2 or len(set(signs[nz])) == 1:
        return None
    # A single sign change along the nonzero subsequence: k values of
    # one polarity followed only by the other polarity.  The threshold
    # is the first value carrying the new sign.
    nz_signs = signs[nz]
    changes = np.flatnonzero(np.diff(nz_signs) != 0)
    if len(changes) != 1:
        return None
    return float(values[nz[changes[0] + 1]])
