"""FIG6 bench — matched-pair local explanations (paper Fig. 6).

Expected shape vs the paper: two distinct patients with (nearly)
identical SPPB predictions whose top-5 Shapley rankings differ — the
basis of the paper's personalised-medicine argument.
"""

import time

import numpy as np

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_fig6
from repro.experiments.fig6_local_explanations import render_fig6
from repro.explain import ReferenceTreeShapExplainer, TreeShapExplainer


def test_fig6_local_explanations(benchmark, ctx, results_dir):
    runner = timed(run_fig6)
    pair = benchmark.pedantic(runner, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig6_local_explanations", render_fig6(pair))
    record_bench(
        results_dir,
        "fig6_local_explanations",
        min(runner.times),
        config={"seed": ctx.seed},
    )

    assert pair.patient_a != pair.patient_b
    assert abs(pair.prediction_a - pair.prediction_b) <= 0.25
    assert len(pair.explanation_a.features) == 5
    assert len(pair.explanation_b.features) == 5
    # The two top-5 sets differ (same outcome, different explanation).
    assert len(pair.shared_top_features) < 5
    # Each report decomposes its own prediction exactly (efficiency is
    # checked in unit tests; here check the reports carry signed parts).
    assert pair.explanation_a.positive() or pair.explanation_a.negative()


def test_fig6_shap_engine_speedup(ctx, results_dir):
    """Batched vs recursive TreeSHAP at the Fig. 6 configuration.

    The batched engine explains the full 220-sample held-out block; the
    recursive reference is timed on a 24-sample slice (it is far too
    slow for the full block) and compared per row.  The tentpole target
    is a >= 10x wall-time speedup; in practice it is ~100x.
    """
    result = ctx.result("sppb", "dd", with_fi=True)
    X = result.samples.X[result.test_idx[:220]]
    n_ref = 24

    batched = TreeShapExplainer(result.model)
    t_batched = min(
        _timed(lambda: batched.shap_values(X)) for _ in range(3)
    )
    phi = batched.shap_values(X)

    reference = ReferenceTreeShapExplainer(result.model)
    t0 = time.perf_counter()
    phi_ref = reference.shap_values(X[:n_ref])
    t_reference = time.perf_counter() - t0

    assert np.allclose(phi[:n_ref], phi_ref, atol=1e-10)
    speedup = (t_reference / n_ref) / (t_batched / X.shape[0])
    record(
        results_dir,
        "fig6_shap_engine_speedup",
        (
            "FIG6 explain bench (batched vs recursive TreeSHAP)\n"
            f"  config: {len(result.model.ensemble_.trees)} trees, "
            f"X = {X.shape[0]}x{X.shape[1]}\n"
            f"  batched: {t_batched:.3f}s for {X.shape[0]} rows\n"
            f"  recursive: {t_reference:.3f}s for {n_ref} rows\n"
            f"  per-row speedup: {speedup:.1f}x (target >= 10x)"
        ),
    )
    record_bench(
        results_dir,
        "fig6_shap_engine_speedup",
        t_batched,
        speedup=speedup,
        config={
            "trees": len(result.model.ensemble_.trees),
            "rows": int(X.shape[0]),
            "features": int(X.shape[1]),
        },
    )
    assert speedup >= 10.0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
