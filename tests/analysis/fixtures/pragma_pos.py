"""REP000 positive: malformed pragmas are themselves violations."""

# repro: scope[deterministic]

import time


def stamp():
    # repro: allow[REP002]
    return time.time()  # suppression without justification: rejected


def other():
    # repro: allow[NOTARULE] -- bogus rule id
    return 1
