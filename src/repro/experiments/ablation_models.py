"""ABL1 — model-family ablation (paper section 5: GBM vs GA2M).

The paper justifies its model choice: "The Gradient Boosting algorithm
proved to offer better predictive performance than other popular
intelligible learning frameworks such as GA2M".  This ablation trains
the GBM, the GA2M-style EBM, a linear model and a dummy on the same DD
sample sets and reports the headline metric of each.
"""

from __future__ import annotations

from repro.baselines import (
    EBMClassifier,
    EBMRegressor,
    LogisticRegressor,
    MajorityClassifier,
    MeanRegressor,
    RidgeRegressor,
)
from repro.experiments.context import ExperimentContext, default_context
from repro.learning.framework import run_protocol
from repro.pipeline.samples import SampleSet

__all__ = ["run_model_ablation", "render_model_ablation"]


def _factories(outcome: str) -> dict[str, object]:
    if outcome == "falls":
        return {
            "gbm": None,  # None -> default_model_factory (the GBM)
            "ebm": lambda s: EBMClassifier(n_cycles=40),
            "linear": lambda s: LogisticRegressor(alpha=1.0),
            "dummy": lambda s: MajorityClassifier(),
        }
    return {
        "gbm": None,
        "ebm": lambda s: EBMRegressor(n_cycles=40),
        "linear": lambda s: RidgeRegressor(alpha=1.0),
        "dummy": lambda s: MeanRegressor(),
    }


def run_model_ablation(
    context: ExperimentContext | None = None,
    with_fi: bool = True,
) -> dict[str, dict[str, dict]]:
    """Return ``{outcome: {model_name: metrics_dict}}``.

    Every model runs through the identical Fig. 3 protocol on the same
    DD sample set, so differences are attributable to the model family.
    """
    ctx = context or default_context()
    grid: dict[str, dict[str, dict]] = {}
    for outcome in ("qol", "sppb", "falls"):
        samples: SampleSet = ctx.samples(outcome, "dd", with_fi)
        row: dict[str, dict] = {}
        for name, factory in _factories(outcome).items():
            result = run_protocol(
                samples,
                model_factory=factory,
                n_folds=ctx.n_folds,
                seed=ctx.seed,
            )
            row[name] = result.test_report.as_dict()
        grid[outcome] = row
    return grid


def render_model_ablation(grid: dict[str, dict[str, dict]]) -> str:
    """Plain-text rendering of the ablation grid."""
    lines = ["ABL1: model-family ablation (DD features, with FI)"]
    for outcome, row in grid.items():
        key = "accuracy" if outcome == "falls" else "one_minus_mape"
        label = "acc" if outcome == "falls" else "1-MAPE"
        cells = "  ".join(
            f"{name}={100 * metrics[key]:.1f}%" for name, metrics in row.items()
        )
        lines.append(f"  {outcome:6s} ({label}): {cells}")
    return "\n".join(lines)
