"""ABL2 bench — interpolation-aggressiveness ablation (paper section 3).

Expected shape vs the paper: the training-set size grows with the
interpolation bound while held-out performance stays flat-to-slightly-
better around the paper's chosen bound (5), justifying it as the safe
maximum.
"""

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_imputation_ablation
from repro.experiments.ablation_imputation import render_imputation_ablation


def test_imputation_bound_ablation(benchmark, ctx, results_dir):
    runner = timed(run_imputation_ablation)
    sweep = benchmark.pedantic(
        runner,
        args=(ctx,),
        kwargs={"max_gaps": (0, 1, 3, 5, 9, 17)},
        rounds=1,
        iterations=1,
    )
    record(results_dir, "ablation_imputation", render_imputation_ablation(sweep))
    record_bench(
        results_dir,
        "ablation_imputation",
        min(runner.times),
        config={"seed": ctx.seed, "max_gaps": [0, 1, 3, 5, 9, 17]},
    )

    sizes = [sweep[g]["n_samples"] for g in (0, 1, 3, 5, 9, 17)]
    assert sizes == sorted(sizes)  # retention monotone in the bound
    # Performance at the paper's bound is within noise of the best.
    best = max(row["one_minus_mape"] for row in sweep.values())
    assert sweep[5]["one_minus_mape"] >= best - 0.02
