"""CSV (de)serialisation for :class:`repro.tabular.Table`.

The format is deliberately plain: a header row, comma separation, RFC-4180
quoting via the standard library ``csv`` module.  Missing values are
written as empty fields and read back as NaN (FLOAT) or None (STRING).

Streaming
---------
Whole-file :func:`read_csv`/:func:`write_csv` materialise everything;
for cohort-scale scoring (:mod:`repro.serve.driver`) the streamed
counterparts bound peak memory by the chunk size instead of the file
size:

* :func:`scan_csv_types` infers every column's logical type in one
  row-streaming pass (no rows retained) with exactly the same rules as
  :func:`read_csv`, so chunked parsing is byte-equivalent to whole-file
  parsing;
* :func:`iter_csv_batches` yields :class:`Table` chunks of at most
  ``batch_rows`` rows under those fixed types;
* :class:`CsvBatchWriter` appends table chunks to one output file,
  writing the header once.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.tabular.column import Column, ColumnType
from repro.tabular.table import Table

__all__ = [
    "read_csv",
    "write_csv",
    "scan_csv_types",
    "iter_csv_batches",
    "CsvBatchWriter",
]


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as UTF-8 CSV with a header row."""
    with CsvBatchWriter(path) as writer:
        writer.write(table)


def read_csv(
    path: str | Path,
    types: Mapping[str, ColumnType] | None = None,
    columns: Sequence[str] | None = None,
) -> Table:
    """Read a CSV file written by :func:`write_csv` (or compatible).

    Parameters
    ----------
    path:
        File to read.
    types:
        Optional explicit logical types per column.  Columns not listed
        are inferred: a column parses as FLOAT if every non-empty cell is
        numeric, as BOOL if every cell is ``true``/``false``, otherwise
        STRING.
    columns:
        Optional projection: parse only these columns, in this order.
        Wide cohort exports are common while a scoring model pins a
        small feature list (cf. ``repro.serve``), and skipping the
        other columns avoids parsing work and memory.  Unknown names
        raise ``KeyError``.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            if columns:
                raise KeyError(f"CSV {path} has no columns {list(columns)!r}")
            return Table()
        rows = list(reader)

    if columns is None:
        selected = list(enumerate(header))
    else:
        position = {name: j for j, name in enumerate(header)}
        missing = [name for name in columns if name not in position]
        if missing:
            raise KeyError(f"CSV {path} has no columns {missing!r}")
        selected = [(position[name], name) for name in columns]

    out = []
    for j, name in selected:
        raw = [row[j] if j < len(row) else "" for row in rows]
        ctype = types.get(name) if types else None
        out.append(_parse_column(name, raw, ctype))
    return Table(out)


class _TypeScan:
    """Incremental replica of :func:`_infer_csv_type` for one column.

    Feeding every cell and then calling :meth:`resolve` gives exactly
    the type the whole-column pass would infer, without retaining rows.
    """

    __slots__ = ("non_empty", "saw_empty", "all_bool", "all_float", "all_int")

    def __init__(self):
        self.non_empty = 0
        self.saw_empty = False
        self.all_bool = True
        self.all_float = True
        self.all_int = True

    def feed(self, cell: str) -> None:
        if cell == "":
            self.saw_empty = True
            return
        self.non_empty += 1
        if self.all_bool and cell.strip().lower() not in ("true", "false"):
            self.all_bool = False
        if self.all_float:
            try:
                value = float(cell)
            except ValueError:
                self.all_float = False
                self.all_int = False
            else:
                if self.all_int and not value.is_integer():
                    self.all_int = False

    def resolve(self) -> ColumnType:
        if self.non_empty == 0:
            return ColumnType.STRING
        if self.all_bool:
            return ColumnType.BOOL
        if not self.all_float:
            return ColumnType.STRING
        if self.all_int and not self.saw_empty:
            return ColumnType.INT
        return ColumnType.FLOAT


def _open_rows(path: Path, columns: Sequence[str] | None):
    """Header + selected (index, name) pairs + a live row reader."""
    fh = path.open("r", newline="", encoding="utf-8")
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        fh.close()
        if columns:
            raise KeyError(f"CSV {path} has no columns {list(columns)!r}")
        return None, [], None
    if columns is None:
        selected = list(enumerate(header))
    else:
        position = {name: j for j, name in enumerate(header)}
        missing = [name for name in columns if name not in position]
        if missing:
            fh.close()
            raise KeyError(f"CSV {path} has no columns {missing!r}")
        selected = [(position[name], name) for name in columns]
    return fh, selected, reader


def scan_csv_types(
    path: str | Path,
    types: Mapping[str, ColumnType] | None = None,
    columns: Sequence[str] | None = None,
) -> dict[str, ColumnType]:
    """Infer column types in one streaming pass (no rows retained).

    The result matches what :func:`read_csv` would infer for the whole
    file, with explicit ``types`` taking precedence — pinning the types
    up front is what makes chunked parsing equivalent to whole-file
    parsing (a column that *looks* INT in one chunk and FLOAT in
    another must resolve identically everywhere).
    """
    path = Path(path)
    fh, selected, reader = _open_rows(path, columns)
    if fh is None:
        return {}
    scans = {name: _TypeScan() for _, name in selected}
    try:
        for row in reader:
            for j, name in selected:
                scans[name].feed(row[j] if j < len(row) else "")
    finally:
        fh.close()
    out = {}
    for _, name in selected:
        explicit = types.get(name) if types else None
        out[name] = explicit if explicit is not None else scans[name].resolve()
    return out


def iter_csv_batches(
    path: str | Path,
    batch_rows: int,
    types: Mapping[str, ColumnType] | None = None,
    columns: Sequence[str] | None = None,
) -> Iterator[Table]:
    """Yield :class:`Table` chunks of at most ``batch_rows`` rows.

    Types are resolved once for the whole file (:func:`scan_csv_types`),
    so the concatenation of the yielded chunks is cell-for-cell
    identical to ``read_csv(path, types, columns)`` while peak memory is
    bounded by the chunk size.  An empty file yields nothing.
    """
    if batch_rows < 1:
        raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
    path = Path(path)
    resolved = scan_csv_types(path, types, columns)
    fh, selected, reader = _open_rows(path, columns)
    if fh is None:
        return
    try:
        buffer: list[list[str]] = []
        for row in reader:
            buffer.append(row)
            if len(buffer) >= batch_rows:
                yield _parse_rows(buffer, selected, resolved)
                buffer = []
        if buffer:
            yield _parse_rows(buffer, selected, resolved)
    finally:
        fh.close()


def _parse_rows(rows: list[list[str]], selected, resolved) -> Table:
    out = []
    for j, name in selected:
        raw = [row[j] if j < len(row) else "" for row in rows]
        out.append(_parse_column(name, raw, resolved[name]))
    return Table(out)


class CsvBatchWriter:
    """Stream table chunks into one CSV file (header written once).

    Every chunk must carry the same columns in the same order; closing
    (or exiting the context) flushes the file.  :func:`write_csv` is
    the one-chunk special case, so whole-file and streamed output share
    one serialisation code path (and stay byte-identical).  Writing
    zero chunks leaves an empty, headerless file.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._fh = self._path.open("w", newline="", encoding="utf-8")
        self._writer = csv.writer(self._fh)
        self._names: list[str] | None = None

    def write(self, table: Table) -> None:
        """Append one chunk (the first chunk fixes header and order)."""
        names = table.column_names
        if self._names is None:
            self._names = names
            self._writer.writerow(names)
        elif names != self._names:
            raise ValueError(
                f"chunk columns {names!r} do not match the header "
                f"{self._names!r}"
            )
        arrays = [table[n] for n in names]
        types = [table.column(n).ctype for n in names]
        for i in range(table.num_rows):
            self._writer.writerow(
                [_format_cell(arr[i], t) for arr, t in zip(arrays, types)]
            )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CsvBatchWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _format_cell(value, ctype: ColumnType) -> str:
    if ctype is ColumnType.FLOAT:
        return "" if np.isnan(value) else repr(float(value))
    if ctype is ColumnType.BOOL:
        return "true" if value else "false"
    if ctype is ColumnType.STRING:
        return "" if value is None else str(value)
    return str(int(value))


def _parse_column(name: str, raw: list[str], ctype: ColumnType | None) -> Column:
    if ctype is None:
        ctype = _infer_csv_type(raw)
    if ctype is ColumnType.FLOAT:
        vals = [float(c) if c else np.nan for c in raw]
        return Column(name, np.asarray(vals, dtype=np.float64), ColumnType.FLOAT)
    if ctype is ColumnType.INT:
        return Column(
            name,
            np.asarray([int(float(c)) for c in raw], dtype=np.int64),
            ColumnType.INT,
        )
    if ctype is ColumnType.BOOL:
        return Column(
            name,
            np.asarray([c.strip().lower() == "true" for c in raw], dtype=bool),
            ColumnType.BOOL,
        )
    return Column(name, [c if c else None for c in raw], ColumnType.STRING)


def _infer_csv_type(raw: list[str]) -> ColumnType:
    non_empty = [c for c in raw if c != ""]
    if not non_empty:
        return ColumnType.STRING
    lowered = {c.strip().lower() for c in non_empty}
    if lowered <= {"true", "false"}:
        return ColumnType.BOOL
    all_int = True
    for c in non_empty:
        try:
            f = float(c)
        except ValueError:
            return ColumnType.STRING
        if not f.is_integer():
            all_int = False
    if all_int and len(non_empty) == len(raw):
        return ColumnType.INT
    return ColumnType.FLOAT
