"""Deterministic fault injection for the concurrent planes.

The supervisor code in :mod:`repro.parallel` and the registry/serve
plane call :func:`inject` / :func:`should_kill` at a fixed set of
sites; with no plan armed both are no-ops, so production paths pay one
``is None`` test.  A plan — parsed from the ``REPRO_FAULTS``
environment variable or armed explicitly with :func:`fault_plan` —
turns those sites into deterministic crashes, hangs and torn writes,
which is what lets `tests/faults/` prove the recovery paths are
bitwise-safe instead of hoping.

See :mod:`repro.faults.plan` for the spec grammar and action/site
catalogue, :mod:`repro.faults.runtime` for activation semantics.
"""

from __future__ import annotations

from repro.faults.plan import (
    ACTIONS,
    PARENT_SITES,
    SITES,
    FaultPlan,
    FaultRule,
    kill_schedule,
    parse_plan,
)
from repro.faults.runtime import (
    InjectedFault,
    active_plan,
    fault_plan,
    faults_active,
    inject,
    should_kill,
)

__all__ = [
    "ACTIONS",
    "PARENT_SITES",
    "SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "fault_plan",
    "faults_active",
    "inject",
    "kill_schedule",
    "parse_plan",
    "should_kill",
]
