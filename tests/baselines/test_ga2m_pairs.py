"""Tests for the GA2M pairwise stage of the EBM."""

import numpy as np
import pytest

from repro.baselines import EBMClassifier, EBMRegressor


@pytest.fixture(scope="module")
def interaction_data():
    rng = np.random.default_rng(16)
    X = rng.normal(size=(1200, 5))
    y = (
        np.sign(X[:, 0]) * np.sign(X[:, 1])  # pure pairwise term
        + 0.3 * X[:, 2]
        + rng.normal(0, 0.1, 1200)
    )
    return X, y


class TestPairSelection:
    def test_true_interaction_pair_selected(self, interaction_data):
        X, y = interaction_data
        model = EBMRegressor(n_cycles=40, n_pairs=1).fit(X[:900], y[:900])
        assert (0, 1) in model.pair_shape_

    def test_number_of_pairs_respected(self, interaction_data):
        X, y = interaction_data
        model = EBMRegressor(n_cycles=30, n_pairs=2).fit(X[:900], y[:900])
        assert len(model.pair_shape_) == 2

    def test_no_pairs_by_default(self, interaction_data):
        X, y = interaction_data
        model = EBMRegressor(n_cycles=10).fit(X[:300], y[:300])
        assert model.pair_shape_ == {}


class TestPairAccuracy:
    def test_pairs_capture_pure_interaction(self, interaction_data):
        X, y = interaction_data
        additive = EBMRegressor(n_cycles=40).fit(X[:900], y[:900])
        ga2m = EBMRegressor(n_cycles=40, n_pairs=1).fit(X[:900], y[:900])
        mae_add = float(np.mean(np.abs(additive.predict(X[900:]) - y[900:])))
        mae_pair = float(np.mean(np.abs(ga2m.predict(X[900:]) - y[900:])))
        # The additive model cannot express sign(x0)*sign(x1); the pair
        # term must cut the error drastically.
        assert mae_pair < 0.6 * mae_add

    def test_classifier_supports_pairs(self):
        rng = np.random.default_rng(17)
        X = rng.normal(size=(900, 4))
        y = (X[:, 0] * X[:, 1]) > 0  # XOR-like
        additive = EBMClassifier(n_cycles=30).fit(X[:700], y[:700])
        ga2m = EBMClassifier(n_cycles=30, n_pairs=1).fit(X[:700], y[:700])
        acc_add = float(np.mean(additive.predict(X[700:]) == y[700:]))
        acc_pair = float(np.mean(ga2m.predict(X[700:]) == y[700:]))
        assert acc_pair > acc_add + 0.15

    def test_pair_tables_enter_prediction_additively(self, interaction_data):
        X, y = interaction_data
        model = EBMRegressor(n_cycles=20, n_pairs=1).fit(X[:600], y[:600])
        coarse = model._pair_mapper.transform(X[:10])
        stride = model._pair_mapper.missing_bin + 1
        binned = model.mapper_.transform(X[:10])
        manual = model.base_score_ + sum(
            model.shape_[f][binned[:, f]] for f in range(5)
        )
        for (i, j), table in model.pair_shape_.items():
            manual = manual + table.reshape(-1)[
                coarse[:, i].astype(np.int64) * stride + coarse[:, j]
            ]
        assert np.allclose(manual, model.predict(X[:10]))


class TestValidation:
    def test_negative_pairs_rejected(self):
        with pytest.raises(ValueError):
            EBMRegressor(n_pairs=-1)

    def test_pair_cycles_validated(self):
        with pytest.raises(ValueError):
            EBMRegressor(pair_cycles=0)

    def test_pair_candidates_validated(self):
        with pytest.raises(ValueError):
            EBMRegressor(pair_candidates=1)
