"""Preprocessed tree geometry for the batched TreeSHAP engine.

Exact path-dependent TreeSHAP only needs, per leaf, the root-to-leaf
path summarised as one entry per *distinct* split feature: the product
of cover fractions along the path branch (the "zero fraction") and, per
explained sample, whether the sample agrees with the path branch at
every node splitting on that feature (the "one fraction", always 0 or
1).  :class:`TreeStructure` computes that summary once per tree —
parent/depth bookkeeping, duplicate-feature merging, cover fractions,
and the scatter tables that map path entries back to feature columns —
so that :class:`repro.explain.treeshap.TreeShapExplainer` can answer
whole-matrix queries with array operations instead of re-deriving the
structure per (sample, tree) pass.

Paths are padded to a common per-tree length with *null entries*
(``zero = one = 1``).  A null entry is a null player of the per-leaf
Shapley game (its presence changes no other player's marginal
contribution and its own attribution factor ``one - zero`` is exactly
0), so padding is mathematically exact — it is the same trick as the
dummy root entry of Lundberg et al.'s Algorithm 2.

Row determinism
---------------
Every reduction a structure participates in (``hot_fractions``'s
``logical_and.reduceat``, :meth:`TreeStructure.fold`'s
``add.reduceat``) runs in a fixed element order along a fixed-length
axis, independently per sample row.  Combined with the elementwise
EXTEND/UNWIND recurrences in :mod:`repro.explain.treeshap`, a row's
SHAP values are therefore **bitwise identical no matter which batch the
row arrives in** — the property that lets the multi-worker scoring
plane (:mod:`repro.serve.router`) shard batches across processes and
the parallel sweeps (:func:`repro.serve.plane.parallel_shap`) shard
rows across the executor without changing a single output bit.
(``tests/explain/test_row_determinism.py`` asserts it.)

For shared-memory serving the per-tree summary also round-trips through
flat arrays: :meth:`TreeStructure.to_flat` exports every field,
:meth:`TreeStructure.from_flat` rebuilds the structure from (possibly
shared-memory-backed, read-only) views without recomputing anything.

The module also hosts the sample-routing primitives
(:func:`node_decisions`, :func:`node_decisions_binned`) which replicate
:meth:`repro.boosting.tree.Tree.predict` / ``predict_binned`` routing —
NaN follows the learned default direction; pre-binned uint8 codes are
compared against ``bin_threshold`` — but evaluate the decision at
*every* internal node for every sample at once (TreeSHAP needs the
hot/cold direction off-path too, not just along the sample's own
descent).

:func:`tree_expected_value` is the topologically-correct replacement
for the old reverse-index expected-value pass, which silently assumed
the grower's children-after-parent node ordering and returned garbage
on deserialized trees with arbitrary layouts.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import LEAF, Tree

__all__ = [
    "TreeStructure",
    "node_decisions",
    "node_decisions_binned",
    "tree_expected_value",
]


def _bfs_order(tree: Tree) -> list[int]:
    """Nodes reachable from the root, parents before children."""
    order = [0]
    left, right = tree.children_left, tree.children_right
    i = 0
    while i < len(order):
        node = order[i]
        i += 1
        if left[node] != LEAF:
            order.append(int(left[node]))
            order.append(int(right[node]))
    return order


def tree_expected_value(tree: Tree) -> float:
    """Cover-weighted mean leaf value (the tree's baseline prediction).

    Processes nodes in reverse topological (BFS) order, so the result is
    correct for any node layout — including deserialized or hand-built
    trees where a child may be stored at a lower index than its parent.
    """
    expected = np.array(tree.value, dtype=np.float64, copy=True)
    left, right, cover = tree.children_left, tree.children_right, tree.cover
    for node in reversed(_bfs_order(tree)):
        lc, rc = left[node], right[node]
        if lc != LEAF:
            expected[node] = (
                cover[lc] * expected[lc] + cover[rc] * expected[rc]
            ) / cover[node]
    return float(expected[0])


def node_decisions(tree: Tree, X: np.ndarray) -> np.ndarray:
    """Per-sample go-left decision at every internal node.

    Returns a ``(n_samples, n_nodes)`` boolean matrix; columns of leaf
    nodes carry no meaning.  Routing matches :meth:`Tree.predict`:
    ``x <= threshold`` goes left, NaN follows ``missing_left``.
    """
    internal = tree.children_left != LEAF
    feats = np.where(internal, tree.feature, 0)
    thr = np.where(internal, tree.threshold, np.inf)
    xv = X[:, feats]
    with np.errstate(invalid="ignore"):
        go_left = xv <= thr
    return np.where(np.isnan(xv), tree.missing_left, go_left)


def node_decisions_binned(
    tree: Tree, binned: np.ndarray, missing_bin: int
) -> np.ndarray:
    """Like :func:`node_decisions`, from pre-binned uint8 codes.

    Routing matches :meth:`Tree.predict_binned`: ``code <=
    bin_threshold`` goes left, ``missing_bin`` follows ``missing_left``.
    Requires the tree to carry ``bin_threshold``.
    """
    internal = tree.children_left != LEAF
    feats = np.where(internal, tree.feature, 0)
    bthr = np.where(internal, tree.bin_threshold, 0)
    codes = binned[:, feats].astype(np.int64)
    return np.where(codes == missing_bin, tree.missing_left, codes <= bthr)


class TreeStructure:
    """One tree's leaf-path summary, computed once and queried many times.

    Attributes
    ----------
    n_entries:
        Padded per-leaf path length ``m`` (max distinct split features
        on any root-to-leaf path; 0 for a single-node tree).
    n_leaves:
        Number of leaves ``L`` with a non-empty path.
    leaf_values:
        ``(L,)`` leaf predictions.
    zeros:
        ``(L, m)`` per-entry zero fractions (cover-fraction products
        along the path, duplicate features merged; null padding = 1).
    used:
        Sorted distinct feature ids split on by the tree.
    expected_value:
        Cover-weighted mean leaf value.
    min_features:
        Smallest feature-count an input matrix must have.
    """

    __slots__ = (
        "tree",
        "expected_value",
        "min_features",
        "n_entries",
        "n_leaves",
        "leaf_values",
        "zeros",
        "used",
        "feat_compact",
        "seg_nodes",
        "seg_dirs",
        "seg_starts",
        "real_cols",
        "fold_perm",
        "fold_starts",
        "fold_codes",
        "_pair_scatter",
    )

    #: 1-D array fields exported by :meth:`to_flat` (2-D fields are
    #: flattened; their shapes are recovered from the scalars).
    _FLAT_FIELDS = (
        "leaf_values",
        "zeros",
        "used",
        "feat_compact",
        "seg_nodes",
        "seg_dirs",
        "seg_starts",
        "real_cols",
        "fold_perm",
        "fold_starts",
        "fold_codes",
    )

    def __init__(self, tree: Tree):
        self.tree = tree
        self.expected_value = tree_expected_value(tree)
        self._pair_scatter = None

        left, right, cover = tree.children_left, tree.children_right, tree.cover
        # Depth-first walk collecting each leaf's (node, went_left) trail.
        leaves: list[float] = []
        merged: list[tuple[list[int], list[float], list[list[tuple[int, bool]]]]] = []
        stack: list[tuple[int, list[tuple[int, bool]]]] = [(0, [])]
        while stack:
            node, trail = stack.pop()
            if left[node] == LEAF:
                feats: list[int] = []
                zs: list[float] = []
                segs: list[list[tuple[int, bool]]] = []
                entry_of: dict[int, int] = {}
                for split_node, went_left in trail:
                    f = int(tree.feature[split_node])
                    child = left[split_node] if went_left else right[split_node]
                    frac = float(cover[child] / cover[split_node])
                    if f in entry_of:
                        j = entry_of[f]
                        zs[j] *= frac
                        segs[j].append((split_node, went_left))
                    else:
                        entry_of[f] = len(feats)
                        feats.append(f)
                        zs.append(frac)
                        segs.append([(split_node, went_left)])
                leaves.append(float(tree.value[node]))
                merged.append((feats, zs, segs))
                continue
            stack.append((int(left[node]), trail + [(node, True)]))
            stack.append((int(right[node]), trail + [(node, False)]))

        m = max((len(feats) for feats, _, _ in merged), default=0)
        self.n_entries = m
        self.min_features = (
            1 + max((max(feats) for feats, _, _ in merged if feats), default=-1)
        )
        if m == 0:
            # Single-node tree: only the expected value matters.
            self.n_leaves = 0
            self.leaf_values = np.empty(0, dtype=np.float64)
            self.zeros = np.empty((0, 0), dtype=np.float64)
            self.used = np.empty(0, dtype=np.int64)
            self.feat_compact = np.empty((0, 0), dtype=np.int64)
            self.seg_nodes = np.empty(0, dtype=np.int64)
            self.seg_dirs = np.empty(0, dtype=bool)
            self.seg_starts = np.empty(0, dtype=np.int64)
            self.real_cols = np.empty(0, dtype=np.int64)
            self.fold_perm = np.empty(0, dtype=np.int64)
            self.fold_starts = np.empty(0, dtype=np.int64)
            self.fold_codes = np.empty(0, dtype=np.int64)
            return

        L = len(merged)
        self.n_leaves = L
        self.leaf_values = np.asarray(leaves, dtype=np.float64)
        used = sorted({f for feats, _, _ in merged for f in feats})
        self.used = np.asarray(used, dtype=np.int64)
        compact = {f: u for u, f in enumerate(used)}
        U = len(used)

        zeros = np.ones((L, m), dtype=np.float64)
        feat_compact = np.full((L, m), U, dtype=np.int64)  # U = null padding
        seg_nodes: list[int] = []
        seg_dirs: list[bool] = []
        seg_starts: list[int] = []
        real_cols: list[int] = []
        for leaf, (feats, zs, segs) in enumerate(merged):
            for j, f in enumerate(feats):
                zeros[leaf, j] = zs[j]
                feat_compact[leaf, j] = compact[f]
                seg_starts.append(len(seg_nodes))
                real_cols.append(leaf * m + j)
                for split_node, went_left in segs[j]:
                    seg_nodes.append(split_node)
                    seg_dirs.append(went_left)
        self.zeros = zeros
        self.feat_compact = feat_compact
        self.seg_nodes = np.asarray(seg_nodes, dtype=np.int64)
        self.seg_dirs = np.asarray(seg_dirs, dtype=bool)
        self.seg_starts = np.asarray(seg_starts, dtype=np.int64)
        self.real_cols = np.asarray(real_cols, dtype=np.int64)

        # Sorted-group fold tables mapping flattened (L, m) entry deltas
        # onto used-feature columns: positions are grouped by compact
        # feature code so one np.add.reduceat accumulates every entry of
        # a feature in a fixed order — unlike a (L*m, U) matmul, whose
        # accumulation order can vary with the batch shape, this keeps
        # per-row results bitwise independent of batch composition.
        # The null-padding group (code U, deltas exactly 0) sorts last
        # and is dropped by fold()'s code < U mask.
        flat = feat_compact.reshape(-1)
        perm = np.argsort(flat, kind="stable")
        sorted_codes = flat[perm]
        starts = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )
        self.fold_perm = perm
        self.fold_starts = starts
        self.fold_codes = sorted_codes[starts]

    def hot_fractions(self, decisions: np.ndarray) -> np.ndarray:
        """Per-(sample, leaf, entry) one fractions from a decision matrix.

        ``decisions`` is the ``(n_samples, n_nodes)`` go-left matrix of
        :func:`node_decisions`; the result is ``(n, L, m)`` float64 with
        entries in {0, 1}: 1 iff the sample agrees with the leaf's path
        branch at every node splitting on the entry's feature (null
        padding is always 1).
        """
        n = decisions.shape[0]
        match = decisions[:, self.seg_nodes] == self.seg_dirs
        o = np.ones((n, self.n_leaves * self.n_entries), dtype=np.float64)
        if self.seg_starts.size:
            o[:, self.real_cols] = np.logical_and.reduceat(
                match, self.seg_starts, axis=1
            )
        return o.reshape(n, self.n_leaves, self.n_entries)

    def fold(self, delta_flat: np.ndarray) -> np.ndarray:
        """Fold flattened per-entry deltas onto used-feature columns.

        ``delta_flat`` is ``(n, L * m)`` (the per-(leaf, entry) deltas of
        one tree, flattened); the result is ``(n, U)`` — each used
        feature's summed delta.  The sum runs via ``np.add.reduceat``
        over positions grouped by feature, in a fixed order per group,
        so every row's result is bitwise independent of ``n``.
        """
        sums = np.add.reduceat(
            delta_flat[:, self.fold_perm], self.fold_starts, axis=1
        )
        U = len(self.used)
        out = np.zeros((delta_flat.shape[0], U), dtype=np.float64)
        real = self.fold_codes < U
        out[:, self.fold_codes[real]] = sums[:, real]
        return out

    def to_flat(self) -> tuple[dict[str, np.ndarray], dict]:
        """Export the structure as flat arrays + picklable scalars.

        Returns ``(fields, scalars)``: every array field flattened to
        1-D (ready for concatenation into shared-memory segments) and
        the scalars needed to reassemble shapes.  Round-trips through
        :meth:`from_flat` without recomputation.
        """
        fields = {
            name: np.ascontiguousarray(getattr(self, name)).reshape(-1)
            for name in self._FLAT_FIELDS
        }
        scalars = {
            "n_entries": int(self.n_entries),
            "n_leaves": int(self.n_leaves),
            "min_features": int(self.min_features),
            "expected_value": float(self.expected_value),
        }
        return fields, scalars

    @classmethod
    def from_flat(
        cls, tree: Tree, fields: dict[str, np.ndarray], scalars: dict
    ) -> "TreeStructure":
        """Rebuild a structure from :meth:`to_flat` output (zero-copy).

        ``fields`` arrays are kept as given — views into shared-memory
        segments stay views, so N workers can map one exported plane
        instead of each re-deriving the path summaries.
        """
        self = object.__new__(cls)
        self.tree = tree
        self.n_entries = int(scalars["n_entries"])
        self.n_leaves = int(scalars["n_leaves"])
        self.min_features = int(scalars["min_features"])
        self.expected_value = float(scalars["expected_value"])
        self._pair_scatter = None
        L, m = self.n_leaves, self.n_entries
        for name in cls._FLAT_FIELDS:
            array = fields[name]
            if name in ("zeros", "feat_compact"):
                array = array.reshape(L, m)
            setattr(self, name, array)
        return self

    def pair_scatter(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted-group tables folding (entry, entry) pair deltas.

        Returns ``(perm, starts, group_codes)`` over the flattened
        ``(L, m, m)`` pair-delta layout, grouping positions by their
        ``(feature_a, feature_b)`` compact pair code so one
        ``np.add.reduceat`` accumulates every duplicate pair at once.
        Built lazily (only the interaction explainer needs it).
        """
        if self._pair_scatter is None:
            U = len(self.used)
            fc = self.feat_compact
            codes = (fc[:, :, None] * (U + 1) + fc[:, None, :]).reshape(-1)
            perm = np.argsort(codes, kind="stable")
            sorted_codes = codes[perm]
            starts = np.flatnonzero(
                np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
            )
            self._pair_scatter = (perm, starts, sorted_codes[starts])
        return self._pair_scatter
