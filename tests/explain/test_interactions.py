"""Correctness tests for SHAP interaction values.

Gold standard: the Shapley interaction index computed by brute-force
subset enumeration over the same path-dependent value function (SHAP's
convention splits each pair's total effect across the two symmetric
off-diagonal cells).
"""

from itertools import combinations
from math import factorial

import numpy as np
import pytest

from repro.boosting import GBRegressor, Tree, TreeEnsemble
from repro.explain import TreeShapExplainer, TreeShapInteractionExplainer
from repro.explain.exact import tree_value_function


def xor_tree():
    """Depth-2 tree encoding sign(x0) == sign(x1) -> +1 else -1."""
    return Tree(
        children_left=np.array([1, 3, 5, -1, -1, -1, -1]),
        children_right=np.array([2, 4, 6, -1, -1, -1, -1]),
        feature=np.array([0, 1, 1, -1, -1, -1, -1]),
        threshold=np.array([0.0, 0.0, 0.0, np.nan, np.nan, np.nan, np.nan]),
        missing_left=np.array([True] * 7),
        value=np.array([0.0, 0.0, 0.0, 1.0, -1.0, -1.0, 1.0]),
        cover=np.array([8.0, 4.0, 4.0, 2.0, 2.0, 2.0, 2.0]),
    )


def brute_pair_interaction(trees, x, i, j) -> float:
    """Total pair effect phi_ij + phi_ji by subset enumeration."""
    total = 0.0
    for tree in trees:
        used = [int(f) for f in tree.used_features()]
        if i not in used or j not in used:
            continue
        others = [f for f in used if f not in (i, j)]
        m = len(used)
        for size in range(len(others) + 1):
            w = factorial(size) * factorial(m - size - 2) / factorial(m - 1)
            for combo in combinations(others, size):
                s = frozenset(combo)
                delta = (
                    tree_value_function(tree, x, s | {i, j})
                    - tree_value_function(tree, x, s | {i})
                    - tree_value_function(tree, x, s | {j})
                    + tree_value_function(tree, x, s)
                )
                total += w * delta
    return total


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(14)
    X = rng.normal(size=(300, 4))
    # An explicit, greedily-learnable interaction: the x1 effect only
    # exists where x0 > 0.
    y = 1.5 * X[:, 0] + 2.0 * (X[:, 0] > 0) * X[:, 1] + rng.normal(0, 0.05, 300)
    model = GBRegressor(
        n_estimators=25, max_depth=3, subsample=1.0, colsample_bytree=1.0
    ).fit(X, y)
    return model, X


class TestAgainstBruteForce:
    def test_xor_tree_pair_effect(self):
        ens = TreeEnsemble(0.0, [xor_tree()])
        explainer = TreeShapInteractionExplainer(ens)
        for raw in ([-1.0, -1.0], [1.0, -1.0], [2.0, 0.5]):
            x = np.array(raw)
            matrix = explainer.shap_interaction_values(x, 2)
            expected_pair = brute_pair_interaction([xor_tree()], x, 0, 1)
            assert matrix[0, 1] + matrix[1, 0] == pytest.approx(expected_pair)

    def test_fitted_model_pair_effects(self, fitted_model):
        model, X = fitted_model
        explainer = TreeShapInteractionExplainer(model)
        for idx in range(3):
            x = X[idx]
            matrix = explainer.shap_interaction_values(x, 4)
            expected = brute_pair_interaction(model.ensemble_.trees, x, 0, 1)
            assert matrix[0, 1] + matrix[1, 0] == pytest.approx(expected, abs=1e-8)


class TestIdentities:
    def test_rows_sum_to_shap_values(self, fitted_model):
        model, X = fitted_model
        inter = TreeShapInteractionExplainer(model)
        shap = TreeShapExplainer(model)
        for idx in range(3):
            matrix = inter.shap_interaction_values(X[idx], 4)
            phi = shap.shap_values_single(X[idx])
            assert np.allclose(matrix.sum(axis=1), phi, atol=1e-8)

    def test_symmetry(self, fitted_model):
        model, X = fitted_model
        inter = TreeShapInteractionExplainer(model)
        matrix = inter.shap_interaction_values(X[0], 4)
        assert np.allclose(matrix, matrix.T, atol=1e-10)

    def test_xor_has_pure_interaction(self):
        ens = TreeEnsemble(0.0, [xor_tree()])
        matrix = TreeShapInteractionExplainer(ens).shap_interaction_values(
            np.array([1.0, 1.0]), 2
        )
        # All attribution lives on the pair; main effects vanish by the
        # symmetry of the XOR structure.
        assert matrix[0, 0] == pytest.approx(0.0, abs=1e-10)
        assert matrix[1, 1] == pytest.approx(0.0, abs=1e-10)
        assert matrix[0, 1] == pytest.approx(0.5)

    def test_learned_conditional_effect_is_detected(self, fitted_model):
        model, X = fitted_model
        inter = TreeShapInteractionExplainer(model)
        # Average |interaction| over samples: the (0,1) pair must carry
        # substantially more mass than a non-interacting pair like (2,3).
        acc = np.zeros((4, 4))
        for idx in range(12):
            acc += np.abs(inter.shap_interaction_values(X[idx], 4))
        assert acc[0, 1] > 5 * acc[2, 3]

    def test_unused_feature_has_zero_row(self, fitted_model):
        model, X = fitted_model
        matrix = TreeShapInteractionExplainer(model).shap_interaction_values(
            X[0], 6  # two phantom features beyond the model's 4
        )
        assert np.allclose(matrix[4], 0.0) and np.allclose(matrix[5], 0.0)


class TestValidation:
    def test_single_sample_only(self, fitted_model):
        model, X = fitted_model
        with pytest.raises(ValueError, match="single sample"):
            TreeShapInteractionExplainer(model).shap_interaction_values(X[:2], 4)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            TreeShapInteractionExplainer(TreeEnsemble(0.0, []))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            TreeShapInteractionExplainer([1, 2])
