"""Unit tests for repro.pipeline.aggregate."""

import numpy as np
import pytest

from repro.pipeline import monthly_activity
from repro.pipeline.aggregate import activity_lookup
from repro.tabular import Table


@pytest.fixture()
def daily():
    return Table(
        {
            "patient_id": ["p1"] * 4 + ["p2"] * 2,
            "day": [0, 1, 30, 31, 0, 1],
            "month": [1, 1, 2, 2, 1, 1],
            "steps": [1000.0, 3000.0, 5000.0, 7000.0, 400.0, 600.0],
            "calories": [1800.0, 2000.0, 1900.0, 2100.0, 1500.0, 1700.0],
            "sleep_hours": [6.0, 8.0, 7.0, 7.0, 5.0, 5.0],
        }
    )


class TestMonthlyActivity:
    def test_means_per_patient_month(self, daily):
        monthly = monthly_activity(daily)
        lookup = activity_lookup(monthly)
        assert lookup[("p1", 1)][0] == pytest.approx(2000.0)  # steps mean
        assert lookup[("p1", 2)][0] == pytest.approx(6000.0)
        assert lookup[("p2", 1)][2] == pytest.approx(5.0)  # sleep mean

    def test_row_count(self, daily):
        assert monthly_activity(daily).num_rows == 3

    def test_missing_required_column(self, daily):
        with pytest.raises(KeyError):
            monthly_activity(daily.drop(["steps"]))

    def test_cohort_aggregation_covers_all_months(self, small_cohort):
        monthly = monthly_activity(small_cohort.daily)
        cfg = small_cohort.config
        assert monthly.num_rows == cfg.n_patients * cfg.n_months

    def test_cohort_monthly_means_finite(self, small_cohort):
        monthly = monthly_activity(small_cohort.daily)
        for var in ("steps", "calories", "sleep_hours"):
            assert np.isfinite(monthly[var]).all()
