"""Patient demographics and latent intrinsic-health trajectories.

Every patient carries a latent monthly health state ``h_p(t) in [0, 1]``
(an AR(1) with ageing drift) plus persistent per-domain offsets, giving
five monthly *domain score* paths.  All observables — wearable traces,
PRO answers, clinical deficits, outcomes — are noisy views of these
latents, which is what makes the paper's empirical effects (DD > KD,
FI helps) emerge from the pipeline instead of being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cohort.config import ClinicConfig, CohortConfig
from repro.cohort.schema import IC_DOMAINS
from repro.synth import SeedSequenceFactory, ar1_process

__all__ = ["PatientLatent", "generate_patients"]

#: Clamp for latent health, keeping every downstream link well-defined.
_H_MIN, _H_MAX = 0.02, 0.98


@dataclass(frozen=True)
class PatientLatent:
    """Demographics plus ground-truth latent paths for one patient.

    Attributes
    ----------
    patient_id:
        Stable identifier, e.g. ``"modena_007"``.
    clinic:
        Clinic name.
    age / years_with_hiv:
        Demographics (the study enrols 50+ year-olds; years with HIV is
        the paper's proxy for accentuated biological ageing).
    health:
        Array of length ``n_months + 1``: ``health[t]`` is h_p at month t
        (month 0 = enrolment visit).
    domain_scores:
        ``{domain: array(n_months + 1)}`` monthly domain scores.
    """

    patient_id: str
    clinic: str
    age: int
    years_with_hiv: int
    health: np.ndarray
    domain_scores: dict[str, np.ndarray]

    def health_at(self, month: int) -> float:
        """Latent health at a given month."""
        return float(self.health[month])

    def window_mean(self, months: list[int], domain: str | None = None) -> float:
        """Mean latent (or domain) score over the given months."""
        path = self.health if domain is None else self.domain_scores[domain]
        return float(np.mean(path[months]))


def _one_patient(
    cfg: CohortConfig,
    clinic: ClinicConfig,
    index: int,
    seeds: SeedSequenceFactory,
) -> PatientLatent:
    pid = f"{clinic.name}_{index:03d}"
    scope = seeds.child(pid)
    rng = scope.generator("latent")

    age = int(np.clip(rng.normal(57.0, 6.0), 50, 85))
    years_with_hiv = int(np.clip(rng.normal(18.0, 7.0), 1, 40))

    # Baseline worsens with biological age (age + HIV duration), cf. [3].
    biological_load = 0.002 * (age - 57) + 0.003 * (years_with_hiv - 18)
    baseline = rng.normal(clinic.health_mean - biological_load, clinic.health_spread)
    baseline = float(np.clip(baseline, _H_MIN + 0.05, _H_MAX - 0.05))

    n_points = cfg.n_months + 1
    path = ar1_process(
        rng,
        n_steps=n_points,
        mean=baseline,
        phi=cfg.health_phi,
        sigma=cfg.health_sigma,
        start=baseline,
        drift=cfg.ageing_drift_per_month,
    )
    health = np.clip(path, _H_MIN, _H_MAX)

    domain_scores: dict[str, np.ndarray] = {}
    for domain in IC_DOMAINS:
        offset = rng.normal(0.0, cfg.domain_offset_sd)
        wobble = ar1_process(
            rng,
            n_steps=n_points,
            mean=0.0,
            phi=0.6,
            sigma=cfg.domain_noise_sd,
            start=0.0,
        )
        domain_scores[domain] = np.clip(health + offset + wobble, 0.0, 1.0)

    return PatientLatent(
        patient_id=pid,
        clinic=clinic.name,
        age=age,
        years_with_hiv=years_with_hiv,
        health=health,
        domain_scores=domain_scores,
    )


def generate_patients(
    cfg: CohortConfig, seeds: SeedSequenceFactory
) -> list[PatientLatent]:
    """Generate all patients of all clinics (deterministic in the seed)."""
    patients: list[PatientLatent] = []
    for clinic in cfg.clinics:
        for index in range(clinic.n_patients):
            patients.append(_one_patient(cfg, clinic, index, seeds))
    return patients
