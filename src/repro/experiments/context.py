"""Shared, memoised state for the experiment runners.

Generating the cohort, building the 12 sample sets and running the
Fig. 3 protocol are pure functions of (seed, parameters); the context
caches them so that e.g. the FIG5/FIG6/FIG7 runners reuse the models
FIG4 trained instead of refitting.

Concurrency contract
--------------------
Every memo (cohort, sample sets, protocol plans, results) is guarded by
one re-entrant lock, so a context may be shared across *threads*.
Parallel execution follows a strict **compute-in-worker /
merge-in-parent** policy: worker processes never see the context — a
:meth:`prefetch` unit receives only shared-memory matrices and a
precomputed :class:`~repro.learning.framework.ProtocolPlan`, returns a
sample-stripped result, and the parent merges it into the memo under
the lock.  Nothing a worker does can therefore race the caches, and a
context must never be pickled into a worker (each worker that needs one
builds its own).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.cohort import CohortConfig, CohortDataset, generate_cohort
from repro.learning.framework import (
    EvaluationResult,
    ProtocolPlan,
    run_protocol,
    strip_samples,
)
from repro.parallel import pack_samples, parallel_map, unpack_samples
from repro.pipeline.samples import (
    SampleSet,
    build_dd_samples,
    build_kd_samples,
)

__all__ = ["ExperimentContext", "default_context"]

#: Reduced fold count for experiment runs; the paper uses "standard
#: KFold", and 3 folds keep the full grid affordable while preserving
#: the protocol structure.
EXPERIMENT_FOLDS = 3

#: Memo key: (outcome, kind, with_fi, max_gap).
ResultKey = tuple[str, str, bool, int]


@dataclass(frozen=True)
class _ResultUnit:
    """One protocol run shipped to a worker (matrices ride in shm)."""

    handle: object
    plan: ProtocolPlan
    n_folds: int
    seed: int


def _run_result_unit(unit: _ResultUnit, shared: dict) -> EvaluationResult:
    samples = unpack_samples(unit.handle, shared)
    # n_jobs=1: grid-level fan-out owns the parallelism; a unit must not
    # fork a nested pool (inside a worker this is a no-op anyway).
    result = run_protocol(
        samples,
        n_folds=unit.n_folds,
        seed=unit.seed,
        plan=unit.plan,
        n_jobs=1,
    )
    return strip_samples(result)


class ExperimentContext:
    """Cohort + sample sets + fitted protocol results, cached.

    Parameters
    ----------
    seed:
        Root seed of the synthetic cohort and of all protocol splits.
    n_folds:
        CV folds used by every protocol run in this context.
    n_jobs:
        Worker processes for the grid runners (see
        :func:`repro.parallel.resolve_jobs`): ``None`` honours
        ``REPRO_JOBS``, ``1`` forces serial, ``0``/``-1`` use every CPU.
        Parallel and serial execution produce bitwise-identical results.
    """

    def __init__(
        self,
        seed: int = 7,
        n_folds: int = EXPERIMENT_FOLDS,
        cohort_config: CohortConfig | None = None,
        n_jobs: int | None = None,
    ):
        self.seed = seed
        self.n_folds = n_folds
        self.n_jobs = n_jobs
        self._cohort_config = cohort_config
        self._lock = threading.RLock()
        self._cohort: CohortDataset | None = None
        self._samples: dict[ResultKey, SampleSet] = {}
        self._results: dict[ResultKey, EvaluationResult] = {}
        self._plans: dict[tuple[str, int], ProtocolPlan] = {}

    @property
    def cohort(self) -> CohortDataset:
        """The synthetic cohort (generated on first access)."""
        with self._lock:
            if self._cohort is None:
                cfg = self._cohort_config or CohortConfig(seed=self.seed)
                self._cohort = generate_cohort(cfg)
            return self._cohort

    def samples(
        self,
        outcome: str,
        kind: str = "dd",
        with_fi: bool = False,
        max_gap: int = 5,
    ) -> SampleSet:
        """Memoised sample-set construction."""
        key = (outcome, kind, with_fi, max_gap)
        with self._lock:
            if key not in self._samples:
                dd_key = (outcome, "dd", with_fi, max_gap)
                if dd_key not in self._samples:
                    self._samples[dd_key] = build_dd_samples(
                        self.cohort, outcome, with_fi=with_fi, max_gap=max_gap
                    )
                if kind == "kd":
                    self._samples[key] = build_kd_samples(self._samples[dd_key])
            return self._samples[key]

    def plan(self, outcome: str, max_gap: int = 5) -> ProtocolPlan:
        """Memoised protocol splits for one outcome's sample geometry.

        The DD/KD/±FI arms of an outcome share rows and labels, so they
        share one plan — splits are computed once per sample set, not
        once per fit.
        """
        key = (outcome, max_gap)
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                samples = self.samples(outcome, "dd", False, max_gap)
                plan = ProtocolPlan.build(
                    samples.n_samples,
                    samples.y,
                    stratified=outcome == "falls",
                    n_folds=self.n_folds,
                    seed=self.seed,
                )
                self._plans[key] = plan
            return plan

    def result(
        self,
        outcome: str,
        kind: str = "dd",
        with_fi: bool = False,
        max_gap: int = 5,
    ) -> EvaluationResult:
        """Memoised protocol run (Fig. 3) for one configuration."""
        key = (outcome, kind, with_fi, max_gap)
        with self._lock:
            cached = self._results.get(key)
        if cached is not None:
            return cached
        samples = self.samples(outcome, kind, with_fi, max_gap)
        result = run_protocol(
            samples,
            n_folds=self.n_folds,
            seed=self.seed,
            plan=self.plan(outcome, max_gap),
            n_jobs=self.n_jobs,
        )
        with self._lock:
            # A concurrent thread may have finished first; first one in
            # wins so every caller sees the same object (the results are
            # equal either way — the computation is deterministic).
            return self._results.setdefault(key, result)

    def prefetch(
        self,
        keys: list[tuple] | list[ResultKey],
        n_jobs: int | None = None,
    ) -> None:
        """Compute missing protocol results for ``keys``, concurrently.

        Keys are ``(outcome, kind, with_fi[, max_gap])``.  Sample sets
        and plans are built in the parent (memoised), matrices are
        handed to workers via shared memory, and the stripped results
        are merged back under the lock with the parent's sample sets
        re-attached — the compute-in-worker / merge-in-parent policy.
        Subsequent :meth:`result` calls are memo hits.
        """
        normalised: list[ResultKey] = []
        for key in keys:
            if len(key) == 3:
                key = (*key, 5)
            if key not in normalised:
                normalised.append(key)  # preserve submission order
        with self._lock:
            missing = [k for k in normalised if k not in self._results]
        if not missing:
            return

        shared: dict = {}
        units = []
        for outcome, kind, with_fi, max_gap in missing:
            samples = self.samples(outcome, kind, with_fi, max_gap)
            units.append(
                _ResultUnit(
                    handle=pack_samples(
                        samples,
                        shared,
                        f"{outcome}:{kind}:{with_fi}:{max_gap}",
                    ),
                    plan=self.plan(outcome, max_gap),
                    n_folds=self.n_folds,
                    seed=self.seed,
                )
            )
        results = parallel_map(
            _run_result_unit,
            units,
            n_jobs=n_jobs if n_jobs is not None else self.n_jobs,
            shared=shared,
        )
        with self._lock:
            for key, result in zip(missing, results):
                restored = replace(result, samples=self.samples(*key))
                self._results.setdefault(key, restored)


_DEFAULT_LOCK = threading.Lock()
_DEFAULT_CONTEXTS: OrderedDict[int, ExperimentContext] = OrderedDict()
_DEFAULT_CAPACITY = 4


def default_context(seed: int = 7) -> ExperimentContext:
    """Process-wide shared context (one per seed, LRU of 4).

    Lock-guarded so concurrent first calls for a seed cannot race into
    building two contexts (the hazard the bare ``lru_cache`` had: cache
    *misses* are not atomic).
    """
    with _DEFAULT_LOCK:
        context = _DEFAULT_CONTEXTS.get(seed)
        if context is None:
            context = ExperimentContext(seed=seed)
            _DEFAULT_CONTEXTS[seed] = context
            while len(_DEFAULT_CONTEXTS) > _DEFAULT_CAPACITY:
                _DEFAULT_CONTEXTS.popitem(last=False)
        else:
            _DEFAULT_CONTEXTS.move_to_end(seed)
        return context
