"""Static analysis enforcing the repo's bitwise-reproducibility contract.

Every guarantee this reproduction ships — bitwise-identical parallel
grids, shard-affine multi-worker scoring, row-deterministic TreeSHAP —
rests on coding rules that used to live only in review comments:
fixed-order reductions, float64 sum channels, guaranteed shared-memory
unlink, lock-guarded memos, picklable pool units, sorted iteration.
``python -m repro lint`` walks the AST of every module and enforces
those rules mechanically (REP001-REP007; see
:mod:`repro.analysis.rulepack`), with per-module scoping
(:mod:`repro.analysis.config`) and justified in-source suppressions
(:mod:`repro.analysis.pragmas`).
"""

from repro.analysis.engine import (
    LintReport,
    Suppression,
    lint_file,
    lint_source,
    run_lint,
)
from repro.analysis.report import render_json, render_text, report_to_dict
from repro.analysis.rules import RULES, FileContext, Finding, Rule

__all__ = [
    "RULES",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Suppression",
    "lint_file",
    "lint_source",
    "render_json",
    "render_text",
    "report_to_dict",
    "run_lint",
]
