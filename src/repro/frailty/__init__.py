"""Frailty Index (FI) substrate.

The paper computes a 37-variable Frailty Index following the standard
procedure of Searle et al. [22] as instantiated for HIV cohorts by
Franconi et al. [6]: each clinical variable is mapped to a *deficit* value
in [0, 1] (0 = deficit absent, 1 = fully expressed) and the FI is the mean
deficit.  The catalogue mirrors the paper's composition: 27 blood-test
deficits, 3 body-composition deficits and 7 HIV-related / patient-reported
deficits.

Public API
----------
``DEFICIT_CATALOGUE`` / ``Deficit``
    The 37-deficit catalogue.
``FrailtyIndexCalculator``
    Validated Searle-procedure FI computation over a deficit table.
``frailty_category``
    Conventional FI banding (fit / pre-frail / frail / most frail).
"""

from repro.frailty.deficits import DEFICIT_CATALOGUE, Deficit, deficit_names
from repro.frailty.index import FrailtyIndexCalculator, frailty_category

__all__ = [
    "DEFICIT_CATALOGUE",
    "Deficit",
    "deficit_names",
    "FrailtyIndexCalculator",
    "frailty_category",
]
