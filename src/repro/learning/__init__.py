"""Model training, evaluation protocol and metrics (paper Fig. 3 / 4).

``repro.learning.metrics``
    Regression (MAE, MAPE/1-MAPE) and classification (accuracy,
    per-class precision/recall/F1, confusion counts) metrics.
``repro.learning.split``
    Reproducible train/test splitting and (stratified) K-fold CV.
``repro.learning.framework``
    The paper's protocol: 80/20 split, K-fold CV on the training side,
    final fit with early stopping, held-out evaluation; runs a model
    over any :class:`repro.pipeline.SampleSet`.
``repro.learning.stratify``
    Per-clinic model training (Table 1).
"""

from repro.learning.framework import (
    EvaluationResult,
    ModelFactory,
    default_model_factory,
    run_protocol,
)
from repro.learning.metrics import (
    ClassificationReport,
    RegressionReport,
    accuracy,
    brier_score,
    classification_report,
    confusion_counts,
    mae,
    mape,
    one_minus_mape,
    precision_recall_f1,
    regression_report,
    roc_auc,
)
from repro.learning.split import KFoldSplitter, train_test_split
from repro.learning.stratify import per_clinic_results

__all__ = [
    "ClassificationReport",
    "RegressionReport",
    "accuracy",
    "brier_score",
    "roc_auc",
    "classification_report",
    "confusion_counts",
    "mae",
    "mape",
    "one_minus_mape",
    "precision_recall_f1",
    "regression_report",
    "KFoldSplitter",
    "train_test_split",
    "EvaluationResult",
    "ModelFactory",
    "default_model_factory",
    "run_protocol",
    "per_clinic_results",
]
