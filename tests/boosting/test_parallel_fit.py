"""Intra-fit histogram parallelism is invisible in the results.

The contract under test (see ``docs/determinism.md``): a fit with
``n_jobs`` ∈ {2, 4} — process or thread backend — produces **bitwise
identical** trees, eval history and predictions to the serial path,
across unit/varying hessians, row/column subsampling and missing
values; and a worker dying mid-fit degrades to in-process recompute of
its feature block without changing a bit either.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting.binning import BinMapper
from repro.boosting.config import GBConfig
from repro.boosting.gbm import GBClassifier, GBRegressor
from repro.faults import faults_active
from repro.parallel.hist import HistogramPool


def make_data(seed: int, n: int = 500, d: int = 9):
    """Noisy nonlinear targets over a matrix with ~8% missing cells."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[rng.random(size=X.shape) < 0.08] = np.nan
    filled = np.nan_to_num(X)
    y = (
        2.0 * filled[:, 0]
        + np.sin(filled[:, 1] * 2.0)
        + np.where(np.isnan(X[:, 2]), 0.7, -0.1)
        + rng.normal(scale=0.1, size=n)
    )
    return X, y


def assert_models_identical(a, b):
    assert len(a.ensemble_.trees) == len(b.ensemble_.trees)
    for ta, tb in zip(a.ensemble_.trees, b.ensemble_.trees):
        assert np.array_equal(ta.feature, tb.feature)
        assert np.array_equal(ta.bin_threshold, tb.bin_threshold)
        assert np.array_equal(ta.threshold, tb.threshold, equal_nan=True)
        assert np.array_equal(ta.missing_left, tb.missing_left)
        assert np.array_equal(ta.value, tb.value)
        assert np.array_equal(ta.cover, tb.cover)
    assert a.eval_history_ == b.eval_history_
    assert a.best_iteration_ == b.best_iteration_


class TestBitwiseEquivalence:
    """jobs ∈ {1, 2, 4} × hessian kind × subsampling: one fit result."""

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize(
        "kind,subsample,colsample",
        [
            ("regressor", 1.0, 1.0),  # unit hessians, full data
            ("regressor", 0.8, 0.6),  # unit hessians, both subsamplings
            ("classifier", 1.0, 1.0),  # varying hessians, full data
            ("classifier", 0.7, 0.7),  # varying hessians, both subsamplings
        ],
    )
    def test_fit_matches_serial(self, jobs, kind, subsample, colsample):
        X, y = make_data(3)
        if kind == "classifier":
            y = (y > np.median(y)).astype(np.int64)
        X_val, y_val = X[:120], y[:120]
        base = dict(
            n_estimators=20,
            max_depth=5,
            subsample=subsample,
            colsample_bytree=colsample,
            early_stopping_rounds=5,
        )
        cls = GBRegressor if kind == "regressor" else GBClassifier
        serial = cls(GBConfig(**base, n_jobs=1)).fit(X, y, eval_set=(X_val, y_val))
        par = cls(GBConfig(**base, n_jobs=jobs)).fit(X, y, eval_set=(X_val, y_val))
        assert_models_identical(serial, par)
        assert np.array_equal(serial.predict(X), par.predict(X))
        if kind == "classifier":
            assert np.array_equal(
                serial.predict_proba(X), par.predict_proba(X)
            )

    def test_env_variable_backend(self, monkeypatch):
        """``REPRO_JOBS`` reaches the histogram pool when n_jobs is unset."""
        X, y = make_data(5)
        serial = GBRegressor(n_estimators=10, max_depth=4).fit(X, y)
        monkeypatch.setenv("REPRO_JOBS", "2")
        par = GBRegressor(n_estimators=10, max_depth=4).fit(X, y)
        assert_models_identical(serial, par)

    def test_thread_backend_matches_process(self):
        """Both backends assemble the same bits as the serial grower."""
        X, y = make_data(7, n=1400)
        mapper = BinMapper(max_bins=32).fit(X)
        binned = mapper.transform(X, order="F")
        rng = np.random.default_rng(0)
        grad = rng.normal(size=X.shape[0])
        hess = np.abs(rng.normal(size=X.shape[0])) + 0.5
        mask = np.ones(X.shape[1], dtype=bool)
        mask[1] = False
        rows_big = np.arange(0, X.shape[0], 2)  # > flat threshold
        rows_small = np.arange(1, 300, 2)  # flat path

        results = {}
        for backend in ("serial", "thread", "process"):
            pool = HistogramPool(
                binned, mapper.missing_bin, n_jobs=3, backend=backend
            )
            try:
                pool.begin_round(grad, hess, mask, n_channels=3)
                results[backend] = pool.accumulate([rows_big, rows_small])
            finally:
                pool.close()
        for backend in ("thread", "process"):
            for ref, got in zip(results["serial"], results[backend]):
                # Masked-out features are never read by the split scan;
                # compare the cells that are.
                assert np.array_equal(ref[:, mask], got[:, mask]), backend


class TestDegradation:
    """Losing workers slows the fit down but never changes a bit."""

    def test_worker_death_mid_fit(self):
        X, y = make_data(11, n=1600)
        mapper = BinMapper(max_bins=32).fit(X)
        binned = mapper.transform(X, order="F")
        rng = np.random.default_rng(1)
        grad = rng.normal(size=X.shape[0])
        hess = np.ones(X.shape[0])
        mask = np.ones(X.shape[1], dtype=bool)
        rows = np.arange(X.shape[0])

        pool = HistogramPool(binned, mapper.missing_bin, n_jobs=2)
        try:
            if pool.mode != "process":
                pytest.skip("fork process backend unavailable")
            pool.begin_round(grad, hess, mask, n_channels=2)
            before = pool.accumulate([rows])[0]
            if not faults_active():  # ambient chaos may already be killing
                assert pool.workers_alive == 2
            # Kill one worker between waves; its feature block is
            # recomputed in-process for the wave that lost it.
            pool._procs[0].terminate()
            pool._procs[0].join(timeout=10)
            after = pool.accumulate([rows])[0]
            # The loss is detected mid-wave; the supervisor respawns the
            # slot at the start of a *later* wave (see tests/faults for
            # the recovery side), so right here the slot is still down.
            if not faults_active():
                assert pool.workers_alive == 1
            assert np.array_equal(before, after)
            # And again — healed or not, the bits cannot change.
            assert np.array_equal(before, pool.accumulate([rows])[0])
        finally:
            pool.close()

    def test_all_workers_dead_degrades_to_serial(self):
        X, y = make_data(13, n=1400)
        mapper = BinMapper(max_bins=32).fit(X)
        binned = mapper.transform(X, order="F")
        grad = np.random.default_rng(2).normal(size=X.shape[0])
        hess = np.ones(X.shape[0])
        mask = np.ones(X.shape[1], dtype=bool)
        rows = np.arange(X.shape[0])
        pool = HistogramPool(binned, mapper.missing_bin, n_jobs=2)
        try:
            if pool.mode != "process":
                pytest.skip("fork process backend unavailable")
            pool.begin_round(grad, hess, mask, n_channels=2)
            reference = pool.accumulate([rows])[0]
            for proc in pool._procs:
                proc.terminate()
                proc.join(timeout=10)
            assert np.array_equal(reference, pool.accumulate([rows])[0])
        finally:
            pool.close()


class TestPoolMechanics:
    def test_feature_blocks_partition(self):
        from repro.parallel.hist import _feature_blocks

        for d in (1, 2, 7, 12, 64):
            for jobs in (1, 2, 3, 5, 100):
                blocks = _feature_blocks(d, jobs)
                assert blocks[0][0] == 0 and blocks[-1][1] == d
                spans = [f1 - f0 for f0, f1 in blocks]
                assert all(s >= 1 for s in spans)
                assert max(spans) - min(spans) <= 1
                assert all(
                    a[1] == b[0] for a, b in zip(blocks, blocks[1:])
                )

    def test_wave_chunking(self):
        """Waves larger than the output buffer are chunked, not truncated."""
        X, _ = make_data(17, n=600)
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X, order="F")
        grad = np.random.default_rng(3).normal(size=X.shape[0])
        hess = np.ones(X.shape[0])
        mask = np.ones(X.shape[1], dtype=bool)
        pool = HistogramPool(binned, mapper.missing_bin, n_jobs=2, out_slots=2)
        try:
            pool.begin_round(grad, hess, mask, n_channels=2)
            # 5 disjoint nodes through a 2-slot buffer.
            rows_list = [np.arange(i, X.shape[0], 5) for i in range(5)]
            got = pool.accumulate(rows_list)
            assert len(got) == 5
            ref_pool = HistogramPool(
                binned, mapper.missing_bin, n_jobs=1, backend="serial"
            )
            try:
                ref_pool.begin_round(grad, hess, mask, n_channels=2)
                for ref, hist in zip(ref_pool.accumulate(rows_list), got):
                    assert np.array_equal(ref, hist)
            finally:
                ref_pool.close()
        finally:
            pool.close()

    def test_close_is_idempotent_and_unlinks(self):
        X, _ = make_data(19)
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X, order="F")
        pool = HistogramPool(binned, mapper.missing_bin, n_jobs=2)
        names = [segment.name for segment in pool._segments]
        pool.close()
        pool.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_n_jobs_validation(self):
        with pytest.raises(ValueError, match="n_jobs"):
            GBConfig(n_jobs=0)
        with pytest.raises(ValueError, match="n_jobs"):
            GBConfig(n_jobs=-2)
        assert GBConfig(n_jobs=-1).n_jobs == -1

    def test_n_jobs_not_serialized(self):
        """Execution config never enters the model document."""
        from repro.boosting.serialize import model_from_dict, model_to_dict

        X, y = make_data(23)
        model = GBRegressor(
            GBConfig(n_estimators=5, max_depth=3, n_jobs=2)
        ).fit(X, y)
        doc = model_to_dict(model)
        assert "n_jobs" not in doc["config"]
        restored = model_from_dict(doc)
        assert restored.config.n_jobs is None
        assert np.array_equal(model.predict(X), restored.predict(X))
        # Old/hand-edited documents carrying the key stay loadable.
        doc["config"]["n_jobs"] = 4
        assert model_from_dict(doc).config.n_jobs is None
