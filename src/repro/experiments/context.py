"""Shared, memoised state for the experiment runners.

Generating the cohort, building the 12 sample sets and running the
Fig. 3 protocol are pure functions of (seed, parameters); the context
caches them so that e.g. the FIG5/FIG6/FIG7 runners reuse the models
FIG4 trained instead of refitting.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cohort import CohortConfig, CohortDataset, generate_cohort
from repro.learning.framework import EvaluationResult, run_protocol
from repro.pipeline.samples import (
    SampleSet,
    build_dd_samples,
    build_kd_samples,
)

__all__ = ["ExperimentContext", "default_context"]

#: Reduced fold count for experiment runs; the paper uses "standard
#: KFold", and 3 folds keep the full grid affordable on one core while
#: preserving the protocol structure.
EXPERIMENT_FOLDS = 3


class ExperimentContext:
    """Cohort + sample sets + fitted protocol results, cached.

    Parameters
    ----------
    seed:
        Root seed of the synthetic cohort and of all protocol splits.
    n_folds:
        CV folds used by every protocol run in this context.
    """

    def __init__(
        self,
        seed: int = 7,
        n_folds: int = EXPERIMENT_FOLDS,
        cohort_config: CohortConfig | None = None,
    ):
        self.seed = seed
        self.n_folds = n_folds
        self._cohort_config = cohort_config
        self._cohort: CohortDataset | None = None
        self._samples: dict[tuple[str, str, bool, int], SampleSet] = {}
        self._results: dict[tuple[str, str, bool, int], EvaluationResult] = {}

    @property
    def cohort(self) -> CohortDataset:
        """The synthetic cohort (generated on first access)."""
        if self._cohort is None:
            cfg = self._cohort_config or CohortConfig(seed=self.seed)
            self._cohort = generate_cohort(cfg)
        return self._cohort

    def samples(
        self,
        outcome: str,
        kind: str = "dd",
        with_fi: bool = False,
        max_gap: int = 5,
    ) -> SampleSet:
        """Memoised sample-set construction."""
        key = (outcome, kind, with_fi, max_gap)
        if key not in self._samples:
            dd_key = (outcome, "dd", with_fi, max_gap)
            if dd_key not in self._samples:
                self._samples[dd_key] = build_dd_samples(
                    self.cohort, outcome, with_fi=with_fi, max_gap=max_gap
                )
            if kind == "kd":
                self._samples[key] = build_kd_samples(self._samples[dd_key])
        return self._samples[key]

    def result(
        self,
        outcome: str,
        kind: str = "dd",
        with_fi: bool = False,
        max_gap: int = 5,
    ) -> EvaluationResult:
        """Memoised protocol run (Fig. 3) for one configuration."""
        key = (outcome, kind, with_fi, max_gap)
        if key not in self._results:
            self._results[key] = run_protocol(
                self.samples(outcome, kind, with_fi, max_gap),
                n_folds=self.n_folds,
                seed=self.seed,
            )
        return self._results[key]


@lru_cache(maxsize=4)
def default_context(seed: int = 7) -> ExperimentContext:
    """Process-wide shared context (one per seed)."""
    return ExperimentContext(seed=seed)
