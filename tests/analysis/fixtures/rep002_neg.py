"""REP002 negative: seeded generators and argument-fed time formatting."""

# repro: scope[deterministic]

import random
import time

import numpy as np


def draw(n, seed):
    return np.random.default_rng(seed).random(n)


def local_rng(seed):
    return random.Random(seed).random()


def render_stamp(created_at):
    return time.strftime("%Y-%m-%d", time.gmtime(created_at))
