"""REP005 positive: memo writes outside the class's own lock."""

import threading


class Memo:
    def __init__(self):
        self._lock = threading.RLock()
        self._cache = {}

    def put(self, key, value):
        self._cache[key] = value  # racy: not under self._lock

    def merge(self, other):
        self._cache.update(other)  # racy mutator call
