"""Unit tests for repro.boosting.serialize (JSON model round trips)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.boosting import (
    GBClassifier,
    GBRegressor,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)


@pytest.fixture(scope="module")
def fitted_regressor():
    rng = np.random.default_rng(9)
    X = rng.normal(size=(200, 5))
    X[rng.random(X.shape) < 0.1] = np.nan
    y = 2 * np.nan_to_num(X[:, 0]) + rng.normal(0, 0.1, 200)
    return GBRegressor(n_estimators=15, max_depth=3).fit(X, y), X


@pytest.fixture(scope="module")
def fitted_classifier():
    rng = np.random.default_rng(10)
    X = rng.normal(size=(200, 4))
    y = X[:, 0] > 0
    return GBClassifier(n_estimators=10, max_depth=2).fit(X, y), X


class TestRoundTrip:
    def test_regressor_predictions_identical(self, fitted_regressor, tmp_path):
        model, X = fitted_regressor
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.predict(X), model.predict(X))

    def test_classifier_probabilities_identical(self, fitted_classifier, tmp_path):
        model, X = fitted_classifier
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.predict_proba(X), model.predict_proba(X))
        assert isinstance(restored, GBClassifier)

    def test_config_preserved(self, fitted_regressor):
        model, _ = fitted_regressor
        restored = model_from_dict(model_to_dict(model))
        assert restored.config == model.config
        assert restored.best_iteration_ == model.best_iteration_

    def test_missing_routing_preserved(self, fitted_regressor):
        model, X = fitted_regressor
        restored = model_from_dict(model_to_dict(model))
        X_missing = X[:20].copy()
        X_missing[:, 0] = np.nan
        assert np.array_equal(
            restored.predict(X_missing), model.predict(X_missing)
        )

    def test_document_is_valid_json(self, fitted_regressor, tmp_path):
        model, _ = fitted_regressor
        path = tmp_path / "model.json"
        save_model(model, path)
        doc = json.loads(path.read_text())
        assert doc["kind"] == "regressor"
        assert doc["format_version"] == 3
        assert doc["mapper"] is not None
        assert len(doc["trees"]) == model.ensemble_.n_trees
        # v3 stores the shared hash-consed node table once...
        assert set(doc["dag"]) == {
            "children_left",
            "children_right",
            "feature",
            "bin_threshold",
            "missing_left",
            "leaves_left",
        }
        # ...and per tree only the root row, leaf values and node stats.
        assert set(doc["trees"][0]) == {"root", "value", "cover", "threshold"}

    def test_inf_threshold_round_trips(self):
        # A split separating non-missing from missing uses a +inf
        # threshold; JSON cannot hold inf natively.
        from repro.boosting import Tree
        from repro.boosting.serialize import _tree_from_dict, _tree_to_dict

        tree = Tree(
            children_left=np.array([1, -1, -1]),
            children_right=np.array([2, -1, -1]),
            feature=np.array([0, -1, -1]),
            threshold=np.array([np.inf, np.nan, np.nan]),
            missing_left=np.array([False, False, False]),
            value=np.array([0.0, 1.0, 2.0]),
            cover=np.array([3.0, 2.0, 1.0]),
        )
        doc = json.loads(json.dumps(_tree_to_dict(tree)))
        restored = _tree_from_dict(doc)
        assert restored.threshold[0] == np.inf
        assert np.isnan(restored.threshold[1])
        assert restored.bin_threshold is None  # absent -> stays absent

    def test_bin_thresholds_round_trip(self, fitted_regressor):
        # Grown trees carry bin-space thresholds; the binned prediction
        # fast path must survive a save/load cycle.
        from repro.boosting.serialize import _tree_from_dict, _tree_to_dict

        model, _ = fitted_regressor
        for tree in model.ensemble_.trees[:3]:
            assert tree.bin_threshold is not None
            restored = _tree_from_dict(json.loads(json.dumps(_tree_to_dict(tree))))
            assert np.array_equal(restored.bin_threshold, tree.bin_threshold)


class TestMapperRoundTrip:
    """The fitted BinMapper must survive (de)serialisation bitwise.

    Regression suite for the silent-downgrade bug: pre-v2 documents
    dropped ``mapper_``, so reloaded models lost the binned
    predict/explain fast paths without any error.
    """

    def test_mapper_restored_bitwise(self, fitted_regressor):
        model, _ = fitted_regressor
        restored = model_from_dict(model_to_dict(model))
        assert restored.mapper_ is not None
        assert restored.mapper_.max_bins == model.mapper_.max_bins
        assert np.array_equal(restored.mapper_.n_bins_, model.mapper_.n_bins_)
        for a, b in zip(restored.mapper_.bin_edges_, model.mapper_.bin_edges_):
            assert np.array_equal(a, b)

    def test_binned_predict_path_survives_reload(self, fitted_regressor):
        model, X = fitted_regressor
        restored = model_from_dict(model_to_dict(model))
        codes = restored.bin(X)
        assert np.array_equal(restored.predict_binned(codes), model.predict(X))

    def test_binned_classifier_paths_survive_reload(self, fitted_classifier):
        model, X = fitted_classifier
        restored = model_from_dict(model_to_dict(model))
        codes = restored.bin(X)
        assert np.array_equal(
            restored.predict_proba_binned(codes), model.predict_proba(X)
        )
        assert np.array_equal(restored.predict_binned(codes), model.predict(X))

    def test_json_file_round_trip_preserves_mapper(
        self, fitted_regressor, tmp_path
    ):
        model, X = fitted_regressor
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.bin(X), model.bin(X))

    def test_v1_document_still_loads_without_mapper(self, fitted_regressor):
        # v1 documents store dense per-tree node arrays and no mapper;
        # fabricate one from the fitted trees directly (the current
        # writer emits the v3 DAG layout).
        from repro.boosting.serialize import _tree_to_dict

        model, X = fitted_regressor
        v3 = model_to_dict(model)
        doc = {
            "format_version": 1,
            "kind": v3["kind"],
            "config": v3["config"],
            "n_features": v3["n_features"],
            "best_iteration": v3["best_iteration"],
            "base_score": v3["base_score"],
            "trees": [_tree_to_dict(t) for t in model.ensemble_.trees],
        }
        restored = model_from_dict(doc)
        assert restored.mapper_ is None
        assert np.array_equal(restored.predict(X), model.predict(X))
        with pytest.raises(RuntimeError, match="mapper_"):
            restored.predict_binned(np.zeros((1, 5), dtype=np.uint8))

    def test_unfitted_mapper_rejected(self):
        from repro.boosting.binning import BinMapper
        from repro.boosting.serialize import mapper_to_dict

        with pytest.raises(ValueError, match="not fitted"):
            mapper_to_dict(BinMapper())


class TestGoldenDocuments:
    """Committed fixture documents pin the on-disk formats.

    ``goldens/`` holds one frozen document per readable format version
    (all serialising the same fitted regressor) plus the model's
    expected predictions on ten fixed rows.  These files never change:
    they prove that documents written by *older* code keep loading and
    predicting bitwise-identically, and that the current writer is
    byte-stable over a load/save cycle.
    """

    GOLDENS = Path(__file__).parent / "goldens"

    @pytest.fixture(scope="class")
    def expected(self):
        doc = json.loads((self.GOLDENS / "expected.json").read_text())
        X = np.array(
            [
                [np.nan if v is None else v for v in row]
                for row in doc["X"]
            ],
            dtype=np.float64,
        )
        return X, np.asarray(doc["raw_predict"], dtype=np.float64)

    def _load(self, version: int):
        return json.loads(
            (self.GOLDENS / f"model_v{version}.json").read_text()
        )

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_golden_document_loads_and_predicts(self, version, expected):
        X, raw = expected
        model = model_from_dict(self._load(version))
        assert np.array_equal(model.predict(X), raw)

    def test_golden_v1_has_no_mapper(self, expected):
        model = model_from_dict(self._load(1))
        assert model.mapper_ is None

    @pytest.mark.parametrize("version", [2, 3])
    def test_golden_binned_path_survives(self, version, expected):
        X, raw = expected
        model = model_from_dict(self._load(version))
        assert np.array_equal(model.predict_binned(model.bin(X)), raw)

    def test_golden_v3_round_trips_bitwise(self):
        doc = self._load(3)
        rebuilt = model_to_dict(model_from_dict(doc))
        assert json.dumps(rebuilt, sort_keys=True) == json.dumps(
            doc, sort_keys=True
        )

    def test_golden_v3_carries_compact_ensemble(self, expected):
        X, raw = expected
        model = model_from_dict(self._load(3))
        assert model.compact_ is not None
        codes = model.bin(X)
        assert np.array_equal(
            model.compact_.predict_raw_binned(
                codes, model.mapper_.missing_bin
            ),
            raw,
        )

    def test_golden_v2_resaves_as_v3_with_same_predictions(self, expected):
        X, raw = expected
        model = model_from_dict(self._load(2))
        resaved = model_to_dict(model)
        assert resaved["format_version"] == 3
        assert np.array_equal(model_from_dict(resaved).predict(X), raw)


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            model_to_dict(GBRegressor())

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict("nope")

    def test_bad_version_rejected(self, fitted_regressor):
        model, _ = fitted_regressor
        doc = model_to_dict(model)
        doc["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            model_from_dict(doc)

    def test_bad_kind_rejected(self, fitted_regressor):
        model, _ = fitted_regressor
        doc = model_to_dict(model)
        doc["kind"] = "svm"
        with pytest.raises(ValueError, match="kind"):
            model_from_dict(doc)
