"""Per-clinic model stratification (paper Table 1).

"To account for possible differences in data collection protocols
between the clinics, we also created one separate model for each."
The small Hong Kong cohort (33 patients) is expected to produce unstable
metrics — the anomalies the paper remarks on.

Each clinic's protocol run is an independent unit: the parent filters
the subset and derives the (size-reduced) fold count, workers run the
protocol on shared-memory matrices, and results merge back in clinic
order — bitwise-identical to the serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.learning.framework import (
    EvaluationResult,
    run_protocol,
    strip_samples,
)
from repro.parallel import pack_samples, parallel_map, unpack_samples
from repro.pipeline.samples import SampleSet

__all__ = [
    "per_clinic_results",
    "clinic_fold_count",
    "build_clinic_units",
    "run_clinic_unit",
]


def clinic_fold_count(subset: SampleSet, n_folds: int) -> int:
    """Reduce the fold count for small clinic subsets (never below 2).

    Stratified folds need >= n_folds members of each class, and tiny
    subsets (Hong Kong in the paper's setting) cannot sustain the
    requested K.
    """
    folds = n_folds
    if subset.outcome == "falls":
        _, class_counts = np.unique(subset.y, return_counts=True)
        folds = int(min(folds, class_counts.min()))
    return max(2, min(folds, subset.n_samples // 10 or 2))


@dataclass(frozen=True)
class _ClinicUnit:
    handle: object
    factory: Callable[[SampleSet], object] | None
    n_folds: int
    seed: int


def run_clinic_unit(unit: _ClinicUnit, shared: dict) -> EvaluationResult:
    """Execute one clinic's protocol run (executor unit function)."""
    subset = unpack_samples(unit.handle, shared)
    result = run_protocol(
        subset,
        model_factory=unit.factory,
        n_folds=unit.n_folds,
        seed=unit.seed,
    )
    return strip_samples(result)


def build_clinic_units(
    samples: SampleSet,
    shared: dict,
    n_folds: int,
    seed: int,
    model_factory: Callable[[SampleSet], object] | None = None,
    clinics: list[str] | None = None,
    prefix: str = "",
) -> tuple[list[str], list[SampleSet], list[_ClinicUnit]]:
    """Build one executor unit per clinic of a sample set.

    The single source of the per-clinic protocol setup — clinic
    enumeration (largest first), subset filtering, fold-count reduction,
    shared-array packing — used by both :func:`per_clinic_results` and
    the Table 1 runner so the two can never drift apart.

    Returns ``(clinics, subsets, units)`` aligned by position; run the
    units with :func:`run_clinic_unit` via
    :func:`repro.parallel.parallel_map` and re-attach each subset to its
    (sample-stripped) result.
    """
    if clinics is None:
        names, counts = np.unique(samples.clinics.astype(str), return_counts=True)
        clinics = [str(n) for n in names[np.argsort(-counts)]]
    subsets: list[SampleSet] = []
    units: list[_ClinicUnit] = []
    for clinic in clinics:
        subset = samples.filter_clinic(clinic)
        subsets.append(subset)
        units.append(
            _ClinicUnit(
                handle=pack_samples(subset, shared, f"{prefix}{clinic}"),
                factory=model_factory,
                n_folds=clinic_fold_count(subset, n_folds),
                seed=seed,
            )
        )
    return clinics, subsets, units


def per_clinic_results(
    samples: SampleSet,
    clinics: list[str] | None = None,
    model_factory: Callable[[SampleSet], object] | None = None,
    n_folds: int = 5,
    seed: int = 0,
    n_jobs: int | None = None,
) -> dict[str, EvaluationResult]:
    """Run the Fig. 3 protocol separately on each clinic's samples.

    Parameters
    ----------
    clinics:
        Clinic names to evaluate; defaults to every clinic present in
        the sample set, sorted by size (largest first).
    n_jobs:
        Fan the clinics out across a process pool; ``None`` honours
        ``REPRO_JOBS``.  Results are bitwise-identical to serial.
    """
    shared: dict[str, np.ndarray] = {}
    clinics, subsets, units = build_clinic_units(
        samples,
        shared,
        n_folds,
        seed,
        model_factory=model_factory,
        clinics=clinics,
        prefix="clinic:",
    )
    results = parallel_map(run_clinic_unit, units, n_jobs=n_jobs, shared=shared)
    return {
        clinic: replace(result, samples=subset)
        for clinic, subset, result in zip(clinics, subsets, results)
    }
