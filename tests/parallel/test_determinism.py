"""Parallel-vs-serial determinism: the executor must not change results.

The contract of ``repro.parallel``: scheduling must never leak into
results.  These tests run the full Fig. 4 grid — and one unit of every
other parallelised runner — under both backends and assert bitwise
equality of reports, predictions and rendered artefacts.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    run_fig4,
    run_imbalance_ablation,
    run_table1,
)
from repro.experiments.fig4_performance import render_fig4
from repro.learning import per_clinic_results, run_protocol

from tests.conftest import small_config


@pytest.fixture(scope="module")
def serial_ctx():
    return ExperimentContext(
        seed=11, n_folds=2, cohort_config=small_config(), n_jobs=1
    )


@pytest.fixture(scope="module")
def parallel_ctx():
    return ExperimentContext(
        seed=11, n_folds=2, cohort_config=small_config(), n_jobs=2
    )


class TestFig4Grid:
    def test_full_grid_bitwise_equal(self, serial_ctx, parallel_ctx):
        serial = run_fig4(serial_ctx)
        parallel = run_fig4(parallel_ctx)
        assert serial == parallel  # every metric of every cell, exactly

    def test_rendered_artefacts_identical(self, serial_ctx, parallel_ctx):
        assert render_fig4(run_fig4(serial_ctx)) == render_fig4(
            run_fig4(parallel_ctx)
        )

    def test_predictions_bitwise_equal(self, serial_ctx, parallel_ctx):
        run_fig4(serial_ctx)
        run_fig4(parallel_ctx)
        for outcome in ("qol", "sppb", "falls"):
            for kind in ("kd", "dd"):
                a = serial_ctx.result(outcome, kind, True)
                b = parallel_ctx.result(outcome, kind, True)
                assert np.array_equal(a.test_predictions(), b.test_predictions())
                assert np.array_equal(a.train_idx, b.train_idx)
                assert np.array_equal(a.test_idx, b.test_idx)

    def test_models_bitwise_equal(self, serial_ctx, parallel_ctx):
        a = serial_ctx.result("qol", "dd", True)
        b = parallel_ctx.result("qol", "dd", True)
        assert len(a.model.ensemble_.trees) == len(b.model.ensemble_.trees)
        for ta, tb in zip(a.model.ensemble_.trees, b.model.ensemble_.trees):
            assert np.array_equal(ta.value, tb.value)
            assert np.array_equal(ta.feature, tb.feature)

    def test_cv_reports_equal(self, serial_ctx, parallel_ctx):
        a = serial_ctx.result("falls", "dd", False)
        b = parallel_ctx.result("falls", "dd", False)
        assert [r.as_dict() for r in a.cv_reports] == [
            r.as_dict() for r in b.cv_reports
        ]


class TestOtherRunners:
    def test_table1_grid_identical(self, serial_ctx, parallel_ctx):
        serial = run_table1(serial_ctx, kinds=("dd",))
        parallel = run_table1(parallel_ctx, kinds=("dd",))
        assert list(serial) == list(parallel)  # clinic order too
        assert serial == parallel

    def test_imbalance_arms_identical(self, serial_ctx, parallel_ctx):
        weights = (1.0, 6.0)
        assert run_imbalance_ablation(
            serial_ctx, pos_weights=weights
        ) == run_imbalance_ablation(parallel_ctx, pos_weights=weights)

    def test_per_clinic_results_identical(self, serial_ctx, parallel_ctx):
        samples = serial_ctx.samples("qol", "dd", True)
        serial = per_clinic_results(samples, n_folds=2, seed=0, n_jobs=1)
        parallel = per_clinic_results(samples, n_folds=2, seed=0, n_jobs=2)
        assert list(serial) == list(parallel)
        for clinic in serial:
            assert (
                serial[clinic].test_report.as_dict()
                == parallel[clinic].test_report.as_dict()
            )
            # the parent re-attaches full sample sets on merge
            assert set(parallel[clinic].samples.clinics.tolist()) == {clinic}

    def test_protocol_fold_fanout_identical(self, serial_ctx):
        samples = serial_ctx.samples("qol", "dd", False)
        a = run_protocol(samples, n_folds=3, seed=5, n_jobs=1)
        b = run_protocol(samples, n_folds=3, seed=5, n_jobs=2)
        assert a.test_report.as_dict() == b.test_report.as_dict()
        assert [r.as_dict() for r in a.cv_reports] == [
            r.as_dict() for r in b.cv_reports
        ]
        assert np.array_equal(a.test_predictions(), b.test_predictions())


class TestContextSafety:
    def test_prefetch_merges_into_memo(self, parallel_ctx):
        keys = [("sppb", "kd", False), ("sppb", "kd", True)]
        parallel_ctx.prefetch(keys)
        # memo hit: same object identity on repeated access
        first = parallel_ctx.result("sppb", "kd", False)
        assert parallel_ctx.result("sppb", "kd", False) is first
        # merged results carry the parent's sample sets
        assert first.samples is parallel_ctx.samples("sppb", "kd", False)

    def test_prefetch_accepts_short_and_long_keys(self, parallel_ctx):
        parallel_ctx.prefetch([("qol", "kd", False), ("qol", "kd", False, 5)])
        assert parallel_ctx.result("qol", "kd", False) is parallel_ctx.result(
            "qol", "kd", False, 5
        )

    def test_concurrent_result_calls_converge(self, serial_ctx):
        import threading

        outputs = []

        def fetch():
            outputs.append(serial_ctx.result("qol", "kd", True))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o is outputs[0] for o in outputs)
