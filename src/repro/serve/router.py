"""Multi-worker request router: coalesce, shard, score, reassemble.

:class:`ScoringRouter` is the front end of the multi-worker scoring
plane.  It accepts heterogeneous predict/explain requests from any
number of callers, coalesces them into micro-batches bounded by *size*
(``max_batch``) and *deadline* (``max_delay`` seconds a request may wait
for co-travellers), and fans every micro-batch over a pool of scoring
workers that each map the shared-memory :class:`~repro.serve.plane
.ModelPlane` once (:class:`~repro.parallel.executor.ShardedPool`).

Sharding and the cache contract
-------------------------------
Rows are routed to workers by a stable hash of their **bin codes** (the
model's own quantized view of the row).  Each worker owns one shard of
the exact-result LRU, and every entry — cached or computed, in any
worker layout — was produced by the row-deterministic batched engine,
so every *answer* (raw score, prediction, probability, attribution
report) is **bitwise identical** to the single-process
:class:`~repro.serve.service.ScoringService` on the same request
stream, cache-cold and cache-hot (asserted in
``tests/serve/test_router.py``).  The ``cached`` flag and hit
statistics coincide with the single process as well while the distinct
working set fits the cache; under eviction pressure the per-shard LRUs
age entries by shard-local rather than global recency, which can only
flip ``cached`` bookkeeping — never a value (also asserted, under
forced eviction).

Worker selection follows the executor's convention: ``n_jobs`` argument
over ``REPRO_JOBS`` over the serial default; the serial path scores
in-process on one plane-materialised service, with zero IPC.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.parallel import ShardedPool
from repro.serve.cache import CacheStats
from repro.serve.plane import ModelPlane
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    ScoreRequest,
    ScoreResult,
    ScoringService,
    registry_model,
    stack_request_rows,
)

__all__ = ["RouterStats", "ScoringRouter"]


@dataclass
class RouterStats:
    """Lifetime counters of one :class:`ScoringRouter`."""

    requests: int = 0
    micro_batches: int = 0
    shard_batches: int = 0
    total_seconds: float = 0.0
    #: Rows executed per cache shard (shard id -> row count); the
    #: occupancy view the ops plane's ``/metrics`` endpoint exposes.
    shard_rows: dict[int, int] = field(default_factory=dict)

    @property
    def rows_per_second(self) -> float:
        """Lifetime request throughput (0 when idle)."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.requests / self.total_seconds


def _plane_service(
    arrays: dict,
    manifest: dict,
    feature_names: tuple,
    cache_size: int,
    top_k: int,
) -> ScoringService:
    """Worker initializer: map the plane into one shard's service."""
    model, explainer = ModelPlane.materialize(manifest, arrays)
    return ScoringService(
        model,
        version=manifest["version"],
        feature_names=list(feature_names),
        cache_size=cache_size,
        top_k=top_k,
        explainer=explainer,
    )


def _score_shard(payload, service: ScoringService):
    """One shard's slice of a micro-batch, scored on its own service."""
    rows, explain, codes = payload
    results = service.score_batch(
        [
            ScoreRequest(row=rows[i], explain=explain[i])
            for i in range(rows.shape[0])
        ],
        codes=codes,
    )
    return results, os.getpid(), service.cache_stats


class ScoringRouter:
    """Route request streams over N plane-mapped scoring workers.

    Parameters
    ----------
    model:
        A fitted estimator carrying its ``mapper_`` and bin thresholds
        (anything :class:`~repro.serve.plane.ModelPlane` accepts).
    version:
        Cache-namespace tag; defaults to the model's content
        fingerprint (same convention as ``ScoringService``).
    feature_names:
        Column names for attribution reports.
    n_jobs:
        Scoring workers: argument over ``REPRO_JOBS`` over serial.
        Results are bitwise-identical for every value.
    max_batch:
        Micro-batch size bound: a flush happens at the latest when this
        many requests are pending.
    max_delay:
        Deadline bound in seconds: on the next :meth:`submit` or
        :meth:`poll` after the oldest pending request has waited this
        long, the batch flushes regardless of size.
    cache_size:
        Per-shard LRU capacity in rows (each worker owns one shard).
    top_k:
        Features per attribution report.
    task_deadline:
        Per-shard-task deadline in seconds (default: the pool's
        ``REPRO_TASK_DEADLINE`` convention).  A worker stuck past it is
        killed mid-batch, its slice recomputed in-process, and the slot
        respawned — answers stay bitwise identical either way.
    clock:
        Injectable monotonic clock (tests drive the deadline logic).
    """

    def __init__(
        self,
        model,
        *,
        version: str | None = None,
        feature_names: Sequence[str] | None = None,
        n_jobs: int | None = None,
        max_batch: int = 64,
        max_delay: float = 0.005,
        cache_size: int = 4096,
        top_k: int = 5,
        task_deadline: float | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        plane = ModelPlane.pack(model, version=version)
        self.version = plane.version
        self.n_features = int(model.n_features_)
        if feature_names is None:
            feature_names = [f"f{i}" for i in range(self.n_features)]
        if len(feature_names) != self.n_features:
            raise ValueError(
                f"got {len(feature_names)} feature names for a model "
                f"fitted on {self.n_features} features"
            )
        self.feature_names = list(feature_names)
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._model = model  # parent-side binning for shard routing
        self._clock = clock
        self._pool = ShardedPool(
            n_jobs=n_jobs,
            shared=plane.arrays,
            setup=_plane_service,
            setup_args=(
                plane.manifest,
                tuple(self.feature_names),
                cache_size,
                top_k,
            ),
            task_deadline=task_deadline,
        )
        self._pending: list[ScoreRequest] = []
        self._pending_since: float | None = None
        self._completed: list[ScoreResult] = []
        self._stats = RouterStats()
        self._shard_caches: dict[int, CacheStats] = {}
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry,
        name: str,
        tag: str | None = None,
        **kwargs,
    ) -> "ScoringRouter":
        """Load ``name@tag`` (default latest) and wrap it in a router."""
        return cls(registry_model(registry, name, tag, kwargs), **kwargs)

    @property
    def workers(self) -> int:
        """Scoring worker count (1 = in-process serial path)."""
        return self._pool.workers

    @property
    def workers_alive(self) -> int:
        """Workers still executing remotely (degraded-capacity signal)."""
        return self._pool.workers_alive

    @property
    def workers_respawned(self) -> int:
        """Crashed workers the pool supervisor has respawned."""
        return self._pool.workers_respawned

    @property
    def deadline_kills(self) -> int:
        """Stuck workers killed past the per-task deadline."""
        return self._pool.deadline_kills

    # ------------------------------------------------------------------
    # Cross-request coalescing.

    def submit(self, request: ScoreRequest) -> None:
        """Queue one request; flushes on the size or deadline bound.

        Results of flushed batches accumulate in submission order and
        are collected with :meth:`poll` or :meth:`drain`.  Callers that
        drive flushing themselves (the HTTP server's background flush
        timer) construct the router with a large ``max_delay`` and call
        :meth:`flush` on their own schedule — then a submit only
        flushes on the size bound.
        """
        if self._pending and self._deadline_passed():
            self.flush()
        if not self._pending:
            self._pending_since = self._clock()
        self._pending.append(request)
        if len(self._pending) >= self.max_batch:
            self.flush()

    def poll(self) -> list[ScoreResult]:
        """Collect finished results; flushes first if the deadline passed."""
        if self._pending and self._deadline_passed():
            self.flush()
        done = self._completed
        self._completed = []
        return done

    def drain(self) -> list[ScoreResult]:
        """Flush everything pending and collect all finished results."""
        self.flush()
        done = self._completed
        self._completed = []
        return done

    def flush(self) -> None:
        """Execute whatever is pending as one micro-batch, now.

        The external half of the flush API: a background timer (rather
        than the submit/poll deadline check) can drive batch formation
        by watching :attr:`pending` / :meth:`oldest_wait` and calling
        this when the deadline it owns expires.  Results accumulate for
        :meth:`poll` / :meth:`drain` as usual; flushing with nothing
        pending is a no-op.
        """
        batch, self._pending, self._pending_since = self._pending, [], None
        if batch:
            self._completed.extend(self._execute(batch))

    @property
    def pending(self) -> int:
        """Requests queued but not yet flushed into a micro-batch."""
        return len(self._pending)

    def oldest_wait(self) -> float | None:
        """Seconds the oldest pending request has waited (None if none)."""
        if self._pending_since is None:
            return None
        return self._clock() - self._pending_since

    def score_batch(self, requests: Sequence[ScoreRequest]) -> list[ScoreResult]:
        """Score one pre-coalesced micro-batch (drop-in for the service).

        Anything already pending is flushed first so the submission
        order of results is preserved.
        """
        self.flush()
        return self._execute(list(requests))

    def score_rows(self, X: np.ndarray, explain: bool = False) -> list[ScoreResult]:
        """Convenience wrapper: stream a matrix through the router."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {X.shape}")
        for i in range(X.shape[0]):
            self.submit(ScoreRequest(row=X[i], explain=explain))
        return self.drain()

    def _deadline_passed(self) -> bool:
        return (
            self._pending_since is not None
            and self._clock() - self._pending_since >= self.max_delay
        )

    # ------------------------------------------------------------------
    # Micro-batch execution.

    def _execute(self, batch: list[ScoreRequest]) -> list[ScoreResult]:
        if self._closed:
            raise RuntimeError("router is closed")
        if not batch:
            return []
        t0 = time.perf_counter()
        rows = self._stack_rows(batch)
        explain = tuple(bool(req.explain) for req in batch)
        if self._pool.workers <= 1:
            groups = [(0, np.arange(len(batch)))]
            codes = None
        else:
            # One quantization pass serves both the shard hash and the
            # workers' cache keys (codes ship in the payload, so a row
            # is never binned twice).
            codes = self._model.bin(rows)
            shards = np.fromiter(
                (
                    zlib.crc32(codes[i].tobytes()) % self._pool.workers
                    for i in range(len(batch))
                ),
                dtype=np.int64,
                count=len(batch),
            )
            groups = [
                (int(s), np.flatnonzero(shards == s))
                for s in np.unique(shards)
            ]
        tasks = [
            (
                shard,
                (
                    rows[idx],
                    tuple(explain[i] for i in idx),
                    None if codes is None else codes[idx],
                ),
            )
            for shard, idx in groups
        ]
        outcomes = self._pool.scatter(_score_shard, tasks)
        results: list[ScoreResult | None] = [None] * len(batch)
        for (shard, idx), (shard_results, pid, cache) in zip(groups, outcomes):
            for i, result in zip(idx, shard_results):
                results[i] = result
            self._shard_caches[pid] = cache
            self._stats.shard_rows[shard] = self._stats.shard_rows.get(
                shard, 0
            ) + len(idx)
        self._stats.requests += len(batch)
        self._stats.micro_batches += 1
        self._stats.shard_batches += len(tasks)
        self._stats.total_seconds += time.perf_counter() - t0
        return results

    def _stack_rows(self, requests: Sequence[ScoreRequest]) -> np.ndarray:
        return stack_request_rows(requests, self.n_features)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> RouterStats:
        """Lifetime router counters."""
        return self._stats

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregated counters over every shard's result cache."""
        snapshots = list(self._shard_caches.values())
        return CacheStats(
            hits=sum(s.hits for s in snapshots),
            misses=sum(s.misses for s in snapshots),
            evictions=sum(s.evictions for s in snapshots),
            size=sum(s.size for s in snapshots),
            capacity=sum(s.capacity for s in snapshots),
        )

    def close(self) -> None:
        """Flush in-flight batches, then tear the pool down (idempotent).

        The shutdown contract: anything submitted before ``close`` is
        **executed** before the workers and the shared plane go away —
        a SIGTERM-style shutdown drops zero requests.  The flushed
        results stay collectable through :meth:`poll` / :meth:`drain`
        after the close; only *new* work is rejected.
        """
        if not self._closed:
            self.flush()
            self._closed = True
            self._pool.close()

    def __enter__(self) -> "ScoringRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
