"""Unit tests for repro.tabular.io (CSV round trips)."""

import numpy as np
import pytest

from repro.tabular import Column, ColumnType, Table, read_csv, write_csv


@pytest.fixture()
def table():
    return Table(
        {
            "pid": ["p1", "p2", "p3"],
            "age": [61, 72, 55],
            "fi": [0.5, np.nan, 0.25],
            "frail": [True, False, True],
        }
    )


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path, table):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back == table

    def test_missing_string_round_trip(self, tmp_path):
        t = Table({"s": Column("s", ["a", None], ColumnType.STRING)})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path, types={"s": ColumnType.STRING})
        assert back.column("s").to_list() == ["a", None]

    def test_nan_round_trip(self, tmp_path):
        t = Table({"x": [1.5, np.nan]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert np.isnan(back["x"][1])

    def test_empty_table(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"a": []}), path)
        back = read_csv(path)
        assert back.num_rows == 0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        assert read_csv(path).num_columns == 0


class TestTypeInference:
    def test_int_column_inferred(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        assert read_csv(path).column("a").ctype is ColumnType.INT

    def test_float_column_inferred(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1.5\n2\n")
        assert read_csv(path).column("a").ctype is ColumnType.FLOAT

    def test_bool_column_inferred(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\ntrue\nfalse\n")
        assert read_csv(path).column("a").ctype is ColumnType.BOOL

    def test_text_column_inferred(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\nx\n1\n")
        assert read_csv(path).column("a").ctype is ColumnType.STRING

    def test_int_with_gaps_becomes_float(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n\n3\n")
        col = read_csv(path).column("a")
        assert col.ctype is ColumnType.FLOAT
        assert np.isnan(col.values[1])

    def test_explicit_type_overrides_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        t = read_csv(path, types={"a": ColumnType.FLOAT})
        assert t.column("a").ctype is ColumnType.FLOAT

    def test_quoted_comma_survives(self, tmp_path):
        t = Table({"s": ["a,b", "c"]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        assert read_csv(path).column("s").to_list() == ["a,b", "c"]

    def test_ragged_row_padded(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n3\n")
        t = read_csv(path)
        assert np.isnan(t["b"][1])


class TestColumnProjection:
    def test_reads_only_requested_columns_in_order(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,x,2.5\n3,y,4.5\n")
        t = read_csv(path, columns=["c", "a"])
        assert t.column_names == ("c", "a")
        assert t["a"].tolist() == [1, 3]

    def test_projection_values_match_full_read(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1.5,x\n,y\n")
        full = read_csv(path)
        projected = read_csv(path, columns=["a"])
        assert np.array_equal(projected["a"], full["a"], equal_nan=True)

    def test_unknown_column_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n")
        with pytest.raises(KeyError, match="ghost"):
            read_csv(path, columns=["a", "ghost"])

    def test_projection_on_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(KeyError, match="a"):
            read_csv(path, columns=["a"])

    def test_projection_respects_explicit_types(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        t = read_csv(path, types={"a": ColumnType.FLOAT}, columns=["a"])
        assert t.column("a").ctype is ColumnType.FLOAT


class TestStreaming:
    """scan_csv_types / iter_csv_batches / CsvBatchWriter."""

    def _write(self, tmp_path, text):
        path = tmp_path / "t.csv"
        path.write_text(text)
        return path

    def test_scan_types_matches_whole_file_inference(self, tmp_path):
        from repro.tabular.io import scan_csv_types

        path = self._write(
            tmp_path,
            "i,f,b,s,e,fe\n1,1.5,true,x,,1\n2,2,false,7,,\n3,,true,y,,3\n",
        )
        whole = read_csv(path)
        types = scan_csv_types(path)
        for name in whole.column_names:
            assert types[name] is whole.column(name).ctype, name

    def test_scan_types_explicit_override(self, tmp_path):
        from repro.tabular.io import scan_csv_types

        path = self._write(tmp_path, "a\n1\n2\n")
        assert scan_csv_types(path)["a"] is ColumnType.INT
        forced = scan_csv_types(path, types={"a": ColumnType.FLOAT})
        assert forced["a"] is ColumnType.FLOAT

    @pytest.mark.parametrize("batch_rows", [1, 2, 3, 100])
    def test_batches_concatenate_to_whole_read(self, tmp_path, batch_rows):
        from repro.tabular.io import iter_csv_batches

        path = self._write(
            tmp_path,
            "pid,age,fi\np1,61,0.5\np2,72,\np3,55,0.25\np4,40,1.0\n",
        )
        whole = read_csv(path)
        chunks = list(iter_csv_batches(path, batch_rows))
        assert sum(c.num_rows for c in chunks) == whole.num_rows
        assert all(c.num_rows <= batch_rows for c in chunks)
        offset = 0
        for chunk in chunks:
            assert chunk.column_names == whole.column_names
            for name in whole.column_names:
                assert chunk.column(name).ctype is whole.column(name).ctype
                got = chunk[name]
                want = whole[name][offset : offset + chunk.num_rows]
                if chunk.column(name).ctype is ColumnType.FLOAT:
                    assert np.array_equal(got, want, equal_nan=True)
                else:
                    assert list(got) == list(want)
            offset += chunk.num_rows

    def test_mixed_chunk_types_resolve_globally(self, tmp_path):
        from repro.tabular.io import iter_csv_batches

        # Chunk 1 alone would infer INT; the file as a whole is FLOAT.
        path = self._write(tmp_path, "a\n1\n2\n2.5\n")
        chunks = list(iter_csv_batches(path, 2))
        assert all(c.column("a").ctype is ColumnType.FLOAT for c in chunks)

    def test_empty_file_yields_nothing(self, tmp_path):
        from repro.tabular.io import iter_csv_batches

        path = self._write(tmp_path, "")
        assert list(iter_csv_batches(path, 10)) == []

    def test_header_only_yields_nothing(self, tmp_path):
        from repro.tabular.io import iter_csv_batches

        path = self._write(tmp_path, "a,b\n")
        assert list(iter_csv_batches(path, 10)) == []

    def test_bad_batch_rows_rejected(self, tmp_path):
        from repro.tabular.io import iter_csv_batches

        path = self._write(tmp_path, "a\n1\n")
        with pytest.raises(ValueError, match="batch_rows"):
            list(iter_csv_batches(path, 0))

    def test_batch_writer_equals_write_csv(self, tmp_path, table):
        from repro.tabular.io import CsvBatchWriter

        whole = tmp_path / "whole.csv"
        write_csv(table, whole)
        streamed = tmp_path / "streamed.csv"
        with CsvBatchWriter(streamed) as writer:
            writer.write(table.take([0, 1]))
            writer.write(table.take([2]))
        assert streamed.read_bytes() == whole.read_bytes()

    def test_batch_writer_rejects_column_mismatch(self, tmp_path, table):
        from repro.tabular.io import CsvBatchWriter

        with CsvBatchWriter(tmp_path / "out.csv") as writer:
            writer.write(table)
            with pytest.raises(ValueError, match="do not match"):
                writer.write(table.drop(["fi"]))
