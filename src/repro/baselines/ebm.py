"""GA2M-style additive models by cyclic gradient boosting (EBM).

GA2M / the Explainable Boosting Machine [15] fits

    f(x) = beta0 + sum_j f_j(x_j) + sum_{(i,j) in P} f_ij(x_i, x_j)

where each shape function is a sum of shallow per-feature piecewise-
constant updates, learned round-robin with a small learning rate, and
``P`` is a small set of pairwise interaction terms selected after the
additive stage (the "2" in GA2M).  Here each additive update is the
best single split of one feature's histogram; pair terms are 2-D
histogram lookup tables fitted on the additive model's residuals, with
pairs ranked by a FAST-style residual-gain heuristic.  Shape functions
stay directly plottable — the interpretability the paper weighs against
the GBM's accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.binning import BinMapper
from repro.boosting.losses import LogisticLoss, Loss, SquaredErrorLoss

__all__ = ["EBMRegressor", "EBMClassifier"]


class _BaseEBM:
    """Cyclic one-feature boosting over histogram bins."""

    def __init__(
        self,
        n_cycles: int = 60,
        learning_rate: float = 0.15,
        max_bins: int = 32,
        min_samples_bin_side: float = 8.0,
        early_stopping_cycles: int = 8,
        n_pairs: int = 0,
        pair_cycles: int = 12,
        pair_candidates: int = 8,
    ):
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if n_pairs < 0:
            raise ValueError("n_pairs must be >= 0")
        if pair_cycles < 1:
            raise ValueError("pair_cycles must be >= 1")
        if pair_candidates < 2:
            raise ValueError("pair_candidates must be >= 2")
        self.n_cycles = n_cycles
        self.learning_rate = learning_rate
        self.max_bins = max_bins
        self.min_samples_bin_side = min_samples_bin_side
        self.early_stopping_cycles = early_stopping_cycles
        self.n_pairs = n_pairs
        self.pair_cycles = pair_cycles
        self.pair_candidates = pair_candidates
        self._loss: Loss = self._make_loss()
        self.mapper_: BinMapper | None = None
        # Pairs use a coarse 8-bin grid so 2-D cells stay populated.
        self._pair_mapper: BinMapper | None = None
        # shape_[f] is a per-bin additive contribution table (length =
        # max_bins + 1; last slot = missing bin).
        self.shape_: np.ndarray | None = None
        # pair_shape_[(i, j)] is a 2-D lookup table over coarse bin codes.
        self.pair_shape_: dict[tuple[int, int], np.ndarray] = {}
        self.base_score_: float | None = None
        self.n_features_: int | None = None

    def _make_loss(self) -> Loss:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def fit(self, X, y, eval_set=None) -> "_BaseEBM":
        """Cyclic boosting with optional early stopping on ``eval_set``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.dtype == bool:
            y = y.astype(np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, d = X.shape
        self.n_features_ = d
        self.mapper_ = BinMapper(max_bins=self.max_bins).fit(X)
        binned = self.mapper_.transform(X)
        stride = self.mapper_.missing_bin + 1
        self.base_score_ = self._loss.base_score(y)
        self.shape_ = np.zeros((d, stride), dtype=np.float64)
        raw = np.full(n, self.base_score_)

        has_eval = eval_set is not None
        if has_eval:
            X_val = np.asarray(eval_set[0], dtype=np.float64)
            y_val = np.asarray(eval_set[1], dtype=np.float64)
            if y_val.dtype == bool:
                y_val = y_val.astype(np.float64)
            binned_val = self.mapper_.transform(X_val)
            raw_val = np.full(X_val.shape[0], self.base_score_)
        best_loss, stale = np.inf, 0

        for _cycle in range(self.n_cycles):
            for f in range(d):
                grad, hess = self._loss.gradient_hessian(raw, y)
                codes = binned[:, f]
                g_hist = np.bincount(codes, weights=grad, minlength=stride)
                h_hist = np.bincount(codes, weights=hess, minlength=stride)
                update = self._stump_update(g_hist, h_hist)
                if update is None:
                    continue
                self.shape_[f] += update
                raw += update[codes]
                if has_eval:
                    raw_val += update[binned_val[:, f]]
            if has_eval:
                val_loss = self._loss.loss(raw_val, y_val)
                if val_loss < best_loss - 1e-12:
                    best_loss, stale = val_loss, 0
                else:
                    stale += 1
                    if (
                        self.early_stopping_cycles
                        and stale >= self.early_stopping_cycles
                    ):
                        break

        if self.n_pairs > 0:
            self._pair_mapper = BinMapper(max_bins=8).fit(X)
            self._fit_pairs(self._pair_mapper.transform(X), y, raw)
        return self

    # ------------------------------------------------------------------
    # pairwise (GA2M) stage
    # ------------------------------------------------------------------
    def _pair_score(self, codes_i, codes_j, grad, hess, stride) -> float:
        """FAST-style pair strength: residual gain of a 2-D histogram.

        Cell occupancy is judged by sample *count* (not hessian mass,
        which is ~p(1-p) per sample for the logistic loss and would
        starve every cell).
        """
        flat = codes_i.astype(np.int64) * stride + codes_j
        size = stride * stride
        g = np.bincount(flat, weights=grad, minlength=size)
        h = np.bincount(flat, weights=hess, minlength=size)
        counts = np.bincount(flat, minlength=size)
        occupied = counts > self.min_samples_bin_side
        return float(np.sum(g[occupied] ** 2 / (h[occupied] + 1.0)))

    def _fit_pairs(self, binned: np.ndarray, y: np.ndarray, raw: np.ndarray) -> None:
        """Select and fit the pairwise lookup tables on residuals.

        ``binned`` holds the *coarse* pair-stage codes.
        """
        stride = self._pair_mapper.missing_bin + 1
        grad, hess = self._loss.gradient_hessian(raw, y)

        # Rank candidate features by additive importance, score pairs.
        importance = np.abs(self.shape_).max(axis=1)
        top = np.argsort(-importance)[: self.pair_candidates]
        scored: list[tuple[float, tuple[int, int]]] = []
        for a in range(len(top)):
            for b in range(a + 1, len(top)):
                i, j = int(top[a]), int(top[b])
                score = self._pair_score(
                    binned[:, i], binned[:, j], grad, hess, stride
                )
                scored.append((score, (min(i, j), max(i, j))))
        scored.sort(reverse=True)
        chosen = [pair for _, pair in scored[: self.n_pairs]]

        for pair in chosen:
            self.pair_shape_[pair] = np.zeros((stride, stride), dtype=np.float64)
        for _ in range(self.pair_cycles):
            for (i, j), table in self.pair_shape_.items():
                grad, hess = self._loss.gradient_hessian(raw, y)
                flat = binned[:, i].astype(np.int64) * stride + binned[:, j]
                size = stride * stride
                g = np.bincount(flat, weights=grad, minlength=size)
                h = np.bincount(flat, weights=hess, minlength=size)
                counts = np.bincount(flat, minlength=size)
                update = np.zeros(size)
                occupied = counts > self.min_samples_bin_side
                update[occupied] = (
                    -self.learning_rate * g[occupied] / (h[occupied] + 1.0)
                )
                table += update.reshape(stride, stride)
                raw += update[flat]

    def _stump_update(
        self, g_hist: np.ndarray, h_hist: np.ndarray
    ) -> np.ndarray | None:
        """Best single split of one feature's histogram -> per-bin update.

        The missing bin always follows the side with the larger hessian
        mass (a simple default-direction rule).
        """
        g_miss, h_miss = g_hist[-1], h_hist[-1]
        g, h = g_hist[:-1], h_hist[:-1]
        gl = np.cumsum(g)[:-1]
        hl = np.cumsum(h)[:-1]
        g_tot, h_tot = g.sum() + g_miss, h.sum() + h_miss
        gr = (g_tot - g_miss) - gl
        hr = (h_tot - h_miss) - hl
        valid = (hl >= self.min_samples_bin_side) & (hr >= self.min_samples_bin_side)
        if not valid.any():
            return None
        lam = 1.0
        gain = gl**2 / (hl + lam) + gr**2 / (hr + lam)
        gain = np.where(valid, gain, -np.inf)
        b = int(np.argmax(gain))

        miss_left = hl[b] >= hr[b]
        gl_b = gl[b] + (g_miss if miss_left else 0.0)
        hl_b = hl[b] + (h_miss if miss_left else 0.0)
        gr_b = g_tot - gl_b
        hr_b = h_tot - hl_b
        left_val = -self.learning_rate * gl_b / (hl_b + lam)
        right_val = -self.learning_rate * gr_b / (hr_b + lam)

        update = np.empty_like(g_hist)
        update[: b + 1] = left_val
        update[b + 1 : -1] = right_val
        update[-1] = left_val if miss_left else right_val
        return update

    def _raw(self, X) -> np.ndarray:
        if self.shape_ is None or self.mapper_ is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected shape (n, {self.n_features_}), got {X.shape}"
            )
        binned = self.mapper_.transform(X)
        raw = np.full(X.shape[0], self.base_score_)
        for f in range(self.n_features_):
            raw += self.shape_[f][binned[:, f]]
        if self.pair_shape_:
            coarse = self._pair_mapper.transform(X)
            stride = self._pair_mapper.missing_bin + 1
            for (i, j), table in self.pair_shape_.items():
                flat = coarse[:, i].astype(np.int64) * stride + coarse[:, j]
                raw += table.reshape(-1)[flat]
        return raw

    def shape_function(self, feature: int) -> tuple[np.ndarray, np.ndarray]:
        """(bin upper edges, per-bin contribution) for one feature.

        The returned contribution array excludes the missing bin; pair
        it with the edges for plotting the learned shape.
        """
        if self.shape_ is None or self.mapper_ is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        edges = self.mapper_.bin_edges_[feature]
        contributions = self.shape_[feature][: len(edges) + 1]
        return edges, contributions


class EBMRegressor(_BaseEBM):
    """GA2M-lite for regression (squared error)."""

    def _make_loss(self) -> Loss:
        return SquaredErrorLoss()

    def predict(self, X) -> np.ndarray:
        """Point predictions."""
        return self._raw(X)


class EBMClassifier(_BaseEBM):
    """GA2M-lite for binary classification (log loss)."""

    def _make_loss(self) -> Loss:
        return LogisticLoss()

    def predict_proba(self, X) -> np.ndarray:
        """P(class = 1)."""
        return self._loss.transform(self._raw(X))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        """Class labels at the given probability threshold."""
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        return self.predict_proba(X) >= threshold
