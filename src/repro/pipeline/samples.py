"""Sample-set construction (paper section 3, "Observational data ...").

For outcome ``o`` and window ``j`` (closing with the clinical visit at
month ``9 j``), each observation month ``i in [1, 8]`` of the window
yields one sample: the 56 PRO answers of that month (after bounded
interpolation), the 3 monthly wearable means, and the label measured at
the window-closing visit.  ``Sample^FI_o`` additionally carries the
Frailty Index computed at the window-*opening* visit (month ``9 (j-1)``)
— the physician's baseline assessment.

The KD sample sets collapse the same feature vectors into the expert ICI
scalar (plus optionally the same FI column), giving the four datasets of
Fig. 3: ``Sample_o``, ``Sample^FI_o``, ``Sample^ICI_o`` and
``Sample^{ICI,FI}_o``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cohort.dataset import CohortDataset
from repro.cohort.outcomes import OUTCOME_NAMES
from repro.cohort.schema import ACTIVITY_VARIABLES, pro_item_names
from repro.knowledge import ICICalculator, ICISpecification
from repro.pipeline.impute import interpolate_blocks
from repro.pipeline.prep import cohort_prep
from repro.tabular import Table

__all__ = [
    "SampleSet",
    "build_dd_samples",
    "build_kd_samples",
    "build_all_sample_sets",
]

#: A sample is dropped when more than this fraction of its PRO items is
#: still missing after bounded interpolation (app-abandonment months).
DEFAULT_DROP_THRESHOLD = 0.25

#: The paper's experimentally determined safe interpolation bound.
DEFAULT_MAX_GAP = 5


@dataclass(frozen=True)
class SampleSet:
    """A model-ready dataset: design matrix + labels + provenance.

    Attributes
    ----------
    outcome:
        One of ``qol`` / ``sppb`` / ``falls``.
    kind:
        ``"dd"`` (raw features) or ``"kd"`` (ICI scalar).
    with_fi:
        Whether the window-opening FI column is included.
    X:
        ``(n, d)`` float matrix; NaN = missing (handled natively by the
        boosting models).
    y:
        ``(n,)`` labels (floats; Falls encoded 0/1).
    feature_names:
        Column names of ``X``.
    patient_ids / clinics / windows / months:
        Per-sample provenance arrays.
    """

    outcome: str
    kind: str
    with_fi: bool
    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]
    patient_ids: np.ndarray
    clinics: np.ndarray
    windows: np.ndarray
    months: np.ndarray

    def __post_init__(self):
        n = len(self.y)
        if self.X.shape != (n, len(self.feature_names)):
            raise ValueError(
                f"X shape {self.X.shape} inconsistent with {n} labels and "
                f"{len(self.feature_names)} feature names"
            )
        for name in ("patient_ids", "clinics", "windows", "months"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch")

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return len(self.y)

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return len(self.feature_names)

    def filter_clinic(self, clinic: str) -> "SampleSet":
        """Restrict to samples of one clinic."""
        mask = self.clinics == clinic
        if not mask.any():
            raise ValueError(f"no samples for clinic {clinic!r}")
        return self._take(mask)

    def _take(self, mask: np.ndarray) -> "SampleSet":
        return replace(
            self,
            X=self.X[mask],
            y=self.y[mask],
            patient_ids=self.patient_ids[mask],
            clinics=self.clinics[mask],
            windows=self.windows[mask],
            months=self.months[mask],
        )

    def feature_index(self, name: str) -> int:
        """Column index of a feature name."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise KeyError(
                f"no feature {name!r}; have {self.feature_names[:8]}..."
            ) from None


def build_dd_samples(
    cohort: CohortDataset,
    outcome: str,
    with_fi: bool = False,
    max_gap: int = DEFAULT_MAX_GAP,
    drop_threshold: float = DEFAULT_DROP_THRESHOLD,
) -> SampleSet:
    """Build ``Sample_o`` (or ``Sample^FI_o``) from a cohort.

    Parameters
    ----------
    outcome:
        ``qol``, ``sppb`` or ``falls``.
    with_fi:
        Append the window-opening Frailty Index feature.
    max_gap:
        Bounded-interpolation limit (paper default 5; 0 disables).
    drop_threshold:
        Drop a monthly sample when more than this fraction of PRO items
        remains missing after interpolation.
    """
    if outcome not in OUTCOME_NAMES:
        raise ValueError(f"unknown outcome {outcome!r}; have {OUTCOME_NAMES}")
    if not 0.0 <= drop_threshold <= 1.0:
        raise ValueError("drop_threshold must be in [0, 1]")

    # All steps below are vectorised group-by passes over the dense
    # (patient, month) indexes of the shared CohortPrep; the samples are
    # bitwise-identical to the original row-at-a-time build, which is
    # preserved as the oracle in repro.pipeline.reference.
    cfg = cohort.config
    prep = cohort_prep(cohort)
    feature_names = [*pro_item_names(), *ACTIVITY_VARIABLES] + (
        ["fi"] if with_fi else []
    )

    window_months = np.array(
        [cfg.window_months(j) for j in range(1, cfg.n_windows + 1)],
        dtype=np.int64,
    )
    n_patients, n_windows = len(prep.patient_ids), cfg.n_windows
    width = window_months.shape[1]

    # Eligible (patient, window) pairs: a measured label and a complete
    # acquisition schedule.  Row-major nonzero preserves the original
    # iteration order (patients by first appearance, windows ascending).
    rows_of = prep.row_of[:, window_months.ravel()].reshape(
        n_patients, n_windows, width
    )
    labels = prep.labels(outcome)[:, 1:]
    eligible = (rows_of >= 0).all(axis=2) & ~np.isnan(labels)
    pid_idx, win_idx = np.nonzero(eligible)
    if pid_idx.size:
        blocks = interpolate_blocks(
            prep.pro_matrix_sorted[rows_of[pid_idx, win_idx]], max_gap
        )
        # Per-sample drop rules: residual missingness and activity join.
        months_grid = window_months[win_idx]
        keep = (np.isnan(blocks).mean(axis=2) <= drop_threshold) & (
            prep.activity_present[pid_idx[:, None], months_grid]
        )
    else:
        keep = np.zeros((0, width), dtype=bool)
    keep_block, keep_month = np.nonzero(keep)
    if keep_block.size == 0:
        raise ValueError(
            f"no samples survived QA for outcome {outcome!r}; "
            "check missingness / drop_threshold settings"
        )

    sample_pids = pid_idx[keep_block]
    sample_months = months_grid[keep_block, keep_month]
    feats = [
        blocks[keep_block, keep_month],
        prep.activity[sample_pids, sample_months],
    ]
    if with_fi:
        opening_fi = prep.fi[pid_idx, 9 * win_idx]  # visit month 9 * (j - 1)
        feats.append(opening_fi[keep_block][:, None])
    return SampleSet(
        outcome=outcome,
        kind="dd",
        with_fi=with_fi,
        X=np.hstack(feats),
        y=labels[pid_idx, win_idx][keep_block],
        feature_names=tuple(feature_names),
        patient_ids=prep.patient_ids[sample_pids],
        clinics=prep.clinics[sample_pids],
        windows=(win_idx + 1)[keep_block],
        months=sample_months,
    )


def build_kd_samples(
    dd: SampleSet,
    specification: ICISpecification | None = None,
) -> SampleSet:
    """Collapse a DD sample set into its KD (ICI) counterpart.

    The ICI is computed from exactly the feature values the DD model
    sees (post-imputation), so the two arms differ only in
    representation — the comparison the paper draws in Fig. 3.
    """
    if dd.kind != "dd":
        raise ValueError("build_kd_samples expects a DD sample set")
    calculator = ICICalculator(specification)
    spec = calculator.specification
    columns = {}
    for rule in spec.rules:
        columns[rule.variable] = dd.X[:, dd.feature_index(rule.variable)]
    ici = calculator.compute(Table(columns))

    if dd.with_fi:
        fi = dd.X[:, dd.feature_index("fi")]
        X = np.column_stack([ici, fi])
        names: tuple[str, ...] = ("ici", "fi")
    else:
        X = ici[:, None]
        names = ("ici",)
    return replace(dd, kind="kd", X=X, feature_names=names)


def build_all_sample_sets(
    cohort: CohortDataset,
    max_gap: int = DEFAULT_MAX_GAP,
    specification: ICISpecification | None = None,
) -> dict[tuple[str, str, bool], SampleSet]:
    """All 12 sample sets of Fig. 3.

    Returns a dict keyed by ``(outcome, kind, with_fi)`` covering the
    three outcomes x {dd, kd} x {False, True}.
    """
    out: dict[tuple[str, str, bool], SampleSet] = {}
    for outcome in OUTCOME_NAMES:
        for with_fi in (False, True):
            dd = build_dd_samples(cohort, outcome, with_fi=with_fi, max_gap=max_gap)
            out[(outcome, "dd", with_fi)] = dd
            out[(outcome, "kd", with_fi)] = build_kd_samples(dd, specification)
    return out


# The original per-row lookup helpers (_fi_lookup, _label_lookup,
# _pro_rows_by_patient) were replaced by the dense planes of
# repro.pipeline.prep.CohortPrep; their loop implementations are
# preserved as oracles in repro.pipeline.reference and the planes are
# proved equivalent in tests/pipeline/test_groupby.py.
