"""Unit and property tests for repro.frailty.index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.frailty import FrailtyIndexCalculator, frailty_category
from repro.tabular import Table


class TestFrailtyCategory:
    def test_bands(self):
        assert frailty_category(0.1) == "fit"
        assert frailty_category(0.3) == "pre_frail"
        assert frailty_category(0.5) == "frail"
        assert frailty_category(0.7) == "most_frail"

    def test_boundaries(self):
        assert frailty_category(0.25) == "pre_frail"
        assert frailty_category(0.4) == "frail"
        assert frailty_category(0.6) == "most_frail"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            frailty_category(1.5)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            frailty_category(float("nan"))


class TestCalculator:
    def test_fi_is_mean_deficit(self):
        calc = FrailtyIndexCalculator(["d1", "d2", "d3"], min_observed=2)
        fi = calc.compute_from_matrix(np.array([[0.0, 0.5, 1.0]]))
        assert fi[0] == pytest.approx(0.5)

    def test_missing_deficits_shrink_denominator(self):
        calc = FrailtyIndexCalculator(["d1", "d2", "d3"], min_observed=2)
        fi = calc.compute_from_matrix(np.array([[1.0, 1.0, np.nan]]))
        assert fi[0] == pytest.approx(1.0)

    def test_below_min_observed_is_nan(self):
        calc = FrailtyIndexCalculator(["d1", "d2", "d3"], min_observed=3)
        fi = calc.compute_from_matrix(np.array([[1.0, 1.0, np.nan]]))
        assert np.isnan(fi[0])

    def test_value_range_validated(self):
        calc = FrailtyIndexCalculator(["d1", "d2"], min_observed=1)
        with pytest.raises(ValueError, match="0, 1"):
            calc.compute_from_matrix(np.array([[2.0, 0.5]]))

    def test_shape_validated(self):
        calc = FrailtyIndexCalculator(["d1", "d2"], min_observed=1)
        with pytest.raises(ValueError, match="shape"):
            calc.compute_from_matrix(np.zeros((2, 3)))

    def test_default_uses_catalogue(self):
        calc = FrailtyIndexCalculator()
        assert len(calc.deficit_columns) == 37
        assert calc.min_observed == 30

    def test_min_observed_cannot_exceed_columns(self):
        with pytest.raises(ValueError, match="min_observed"):
            FrailtyIndexCalculator(["d1"], min_observed=2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            FrailtyIndexCalculator([], min_observed=1)

    def test_compute_from_table(self):
        t = Table({"d1": [0.0, 1.0], "d2": [1.0, 1.0]})
        calc = FrailtyIndexCalculator(["d1", "d2"], min_observed=1)
        assert calc.compute(t).tolist() == [0.5, 1.0]

    def test_with_fi_column(self):
        t = Table({"d1": [0.0], "d2": [1.0]})
        calc = FrailtyIndexCalculator(["d1", "d2"], min_observed=1)
        out = calc.with_fi_column(t, name="fi")
        assert out["fi"][0] == pytest.approx(0.5)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 20), st.just(5)),
            elements=st.floats(0.0, 1.0),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fi_always_in_unit_interval(self, matrix):
        calc = FrailtyIndexCalculator([f"d{i}" for i in range(5)], min_observed=1)
        fi = calc.compute_from_matrix(matrix)
        assert ((fi >= 0) & (fi <= 1)).all()

    def test_monotonicity_adding_a_deficit_raises_fi(self):
        calc = FrailtyIndexCalculator(["d1", "d2", "d3"], min_observed=1)
        low = calc.compute_from_matrix(np.array([[0.0, 0.0, 0.0]]))[0]
        high = calc.compute_from_matrix(np.array([[1.0, 0.0, 0.0]]))[0]
        assert high > low

    def test_cohort_fi_plausible(self, small_cohort):
        fi = FrailtyIndexCalculator().compute(small_cohort.visits)
        assert not np.isnan(fi).any()
        assert 0.0 < fi.mean() < 0.6  # typical HIV-cohort FI levels [6]
