"""Structural invariants of grown trees (property tests on the grower).

These verify the internal consistency of the histogram grower: node
covers, child partitions, gain constraints and the equivalence between
binned routing (used during growth) and raw-threshold routing (used at
prediction time).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boosting import BinMapper, GBConfig, GBRegressor
from repro.boosting.grower import TreeGrower
from repro.boosting.tree import LEAF


def grow_one_tree(X, y, **config_overrides):
    cfg = GBConfig(
        n_estimators=1,
        subsample=1.0,
        colsample_bytree=1.0,
        learning_rate=1.0,
        **config_overrides,
    )
    mapper = BinMapper(max_bins=cfg.max_bins).fit(X)
    grower = TreeGrower(mapper.transform(X), mapper, cfg)
    grad = y - y.mean()
    hess = np.ones_like(y)
    rows = np.arange(len(y))
    mask = np.ones(X.shape[1], dtype=bool)
    return grower.grow(grad, hess, rows, mask)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(8)
    X = rng.normal(size=(400, 6))
    X[rng.random(X.shape) < 0.15] = np.nan
    y = 2 * np.nan_to_num(X[:, 0]) - np.nan_to_num(X[:, 1]) + rng.normal(0, 0.1, 400)
    return X, y


class TestStructuralInvariants:
    def test_child_covers_sum_to_parent(self, data):
        X, y = data
        tree = grow_one_tree(X, y)
        for node in range(tree.n_nodes):
            if tree.children_left[node] != LEAF:
                left = tree.children_left[node]
                right = tree.children_right[node]
                assert tree.cover[left] + tree.cover[right] == pytest.approx(
                    tree.cover[node]
                )

    def test_min_child_weight_respected(self, data):
        X, y = data
        mcw = 25.0
        tree = grow_one_tree(X, y, min_child_weight=mcw)
        for node in range(1, tree.n_nodes):
            assert tree.cover[node] >= mcw - 1e-9

    def test_internal_nodes_have_valid_features(self, data):
        X, y = data
        tree = grow_one_tree(X, y)
        internal = tree.children_left != LEAF
        assert (tree.feature[internal] >= 0).all()
        assert (tree.feature[internal] < X.shape[1]).all()
        assert (tree.feature[~internal] == LEAF).all()

    def test_binned_and_raw_routing_agree_on_training_data(self, data):
        # The tree is grown on bin codes but evaluated on raw values;
        # both views must route every training row identically.  We
        # verify via the leaf-value sums: predictions of a depth-1 model
        # on training data must equal the Newton-step leaf assignment.
        X, y = data
        tree = grow_one_tree(X, y)
        preds = tree.predict(X)
        # Recompute leaf membership through decision paths (raw) and
        # check value consistency.
        for i in range(0, len(X), 37):
            leaf = tree.decision_path(X[i])[-1]
            assert preds[i] == tree.value[leaf]

    def test_leaf_values_are_newton_steps(self, data):
        X, y = data
        cfg_lambda = 1.0
        tree = grow_one_tree(X, y, reg_lambda=cfg_lambda, max_depth=2)
        grad = y - y.mean()
        preds_leaf = {}
        for i in range(len(X)):
            leaf = tree.decision_path(X[i])[-1]
            preds_leaf.setdefault(leaf, []).append(i)
        for leaf, members in preds_leaf.items():
            g = grad[members].sum()
            h = float(len(members))
            expected = -g / (h + cfg_lambda)
            assert tree.value[leaf] == pytest.approx(expected, abs=1e-9)
            assert tree.cover[leaf] == pytest.approx(h)

    def test_pure_noise_target_grows_small_tree_with_gamma(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = rng.normal(size=300)
        tree = grow_one_tree(X, y, gamma=10.0)
        assert tree.n_leaves <= 2

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 120))
        d = int(rng.integers(1, 5))
        X = rng.normal(size=(n, d))
        X[rng.random(X.shape) < 0.2] = np.nan
        y = rng.normal(size=n)
        tree = grow_one_tree(X, y, max_depth=3, min_child_weight=1.0)
        # parent-child cover conservation
        for node in range(tree.n_nodes):
            if tree.children_left[node] != LEAF:
                left, right = tree.children_left[node], tree.children_right[node]
                assert tree.cover[left] + tree.cover[right] == pytest.approx(
                    tree.cover[node]
                )
        # every training row lands on a leaf with finite value
        preds = tree.predict(X)
        assert np.isfinite(preds).all()


class TestEndToEndConsistency:
    def test_training_predictions_reproducible_from_structure(self, data):
        X, y = data
        model = GBRegressor(
            n_estimators=12, max_depth=3, subsample=1.0, colsample_bytree=1.0
        ).fit(X, y)
        manual = np.full(len(X), model.ensemble_.base_score)
        for tree in model.ensemble_.trees:
            manual += tree.predict(X)
        assert np.allclose(manual, model.predict(X))
