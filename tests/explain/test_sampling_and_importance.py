"""Tests for the Monte-Carlo Shapley estimator and global importance."""

import numpy as np
import pytest

from repro.boosting import GBRegressor, TreeEnsemble
from repro.explain import (
    PermutationShapEstimator,
    TreeShapExplainer,
    global_importance,
)


@pytest.fixture(scope="module")
def model_and_data():
    rng = np.random.default_rng(12)
    X = rng.normal(size=(300, 5))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(0, 0.1, 300)
    model = GBRegressor(
        n_estimators=15, max_depth=3, subsample=1.0, colsample_bytree=1.0
    ).fit(X, y)
    return model, X


class TestPermutationEstimator:
    def test_deterministic_for_a_fixed_seed(self, model_and_data):
        # The estimator reseeds its generator per call, so repeated calls
        # and fresh instances with the same seed agree bit-for-bit.
        model, X = model_and_data
        est = PermutationShapEstimator(model, n_permutations=50, seed=3)
        first = est.shap_values_single(X[0], X.shape[1])
        second = est.shap_values_single(X[0], X.shape[1])
        fresh = PermutationShapEstimator(
            model, n_permutations=50, seed=3
        ).shap_values_single(X[0], X.shape[1])
        assert np.array_equal(first, second)
        assert np.array_equal(first, fresh)

    def test_different_seeds_differ(self, model_and_data):
        model, X = model_and_data
        a = PermutationShapEstimator(
            model, n_permutations=20, seed=0
        ).shap_values_single(X[0], X.shape[1])
        b = PermutationShapEstimator(
            model, n_permutations=20, seed=1
        ).shap_values_single(X[0], X.shape[1])
        assert not np.array_equal(a, b)

    def test_converges_to_exact_treeshap(self, model_and_data):
        model, X = model_and_data
        exact = TreeShapExplainer(model).shap_values_single(X[0])
        approx = PermutationShapEstimator(
            model, n_permutations=400, seed=0
        ).shap_values_single(X[0], X.shape[1])
        assert np.allclose(approx, exact, atol=0.05)

    def test_more_permutations_reduce_error(self, model_and_data):
        model, X = model_and_data
        exact = TreeShapExplainer(model).shap_values_single(X[1])

        def error(n_perm):
            est = PermutationShapEstimator(model, n_permutations=n_perm, seed=1)
            return float(
                np.abs(est.shap_values_single(X[1], X.shape[1]) - exact).max()
            )

        assert error(300) <= error(5) + 1e-9

    def test_deterministic_given_seed(self, model_and_data):
        model, X = model_and_data
        a = PermutationShapEstimator(model, 20, seed=3).shap_values_single(X[0], 5)
        b = PermutationShapEstimator(model, 20, seed=3).shap_values_single(X[0], 5)
        assert np.array_equal(a, b)

    def test_efficiency_holds_exactly_per_permutation(self, model_and_data):
        # Telescoping sums make permutation Shapley exactly efficient
        # regardless of n_permutations.
        model, X = model_and_data
        est = PermutationShapEstimator(model, n_permutations=3, seed=0)
        phi = est.shap_values_single(X[2], X.shape[1])
        explainer = TreeShapExplainer(model)
        pred = model.predict(X[2][None, :])[0]
        assert phi.sum() + explainer.expected_value == pytest.approx(pred, abs=1e-8)

    def test_invalid_permutation_count(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(ValueError):
            PermutationShapEstimator(model, n_permutations=0)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            PermutationShapEstimator(TreeEnsemble(base_score=0.0, trees=[]))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            PermutationShapEstimator(42)


class TestGlobalImportance:
    def test_ranks_signal_features_first(self, model_and_data):
        model, X = model_and_data
        shap = TreeShapExplainer(model).shap_values(X[:80])
        ranking = global_importance(shap, [f"f{i}" for i in range(5)], k=5)
        assert ranking.features[0] == "f0"  # the dominant linear term

    def test_k_truncates(self, model_and_data):
        model, X = model_and_data
        shap = TreeShapExplainer(model).shap_values(X[:30])
        ranking = global_importance(shap, [f"f{i}" for i in range(5)], k=2)
        assert len(ranking.features) == 2

    def test_magnitudes_descending(self, model_and_data):
        model, X = model_and_data
        shap = TreeShapExplainer(model).shap_values(X[:30])
        ranking = global_importance(shap, [f"f{i}" for i in range(5)])
        mags = list(ranking.mean_abs_shap)
        assert mags == sorted(mags, reverse=True)

    def test_render(self, model_and_data):
        model, X = model_and_data
        shap = TreeShapExplainer(model).shap_values(X[:30])
        text = global_importance(shap, [f"f{i}" for i in range(5)]).render()
        assert "global feature importance" in text and "f0" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="feature names"):
            global_importance(np.zeros((3, 2)), ["a"])

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k"):
            global_importance(np.zeros((3, 2)), ["a", "b"], k=0)
