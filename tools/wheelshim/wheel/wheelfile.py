"""A RECORD-writing ZipFile, API-compatible with wheel.wheelfile.WheelFile
for the subset setuptools' editable_wheel uses."""

from __future__ import annotations

import base64
import hashlib
import os
import re
import zipfile

_WHEEL_NAME_RE = re.compile(
    r"^(?P<name>[^\s-]+)-(?P<version>[^\s-]+)(-(?P<build>\d[^\s-]*))?"
    r"-(?P<pyver>[^\s-]+)-(?P<abi>[^\s-]+)-(?P<plat>[^\s-]+)\.whl$"
)


def _urlsafe_b64(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Write-mode wheel archive that appends a RECORD on close."""

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        basename = os.path.basename(str(file))
        match = _WHEEL_NAME_RE.match(basename)
        if match is None:
            raise ValueError(f"bad wheel filename {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = (
            f"{match.group('name')}-{match.group('version')}.dist-info"
        )
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._records: list[tuple[str, str, int]] = []
        super().__init__(file, mode=mode, compression=compression, allowZip64=True)

    # -- recording wrappers -------------------------------------------
    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as fh:
            data = fh.read()
        self.writestr(
            zipfile.ZipInfo(str(arcname or filename).replace(os.sep, "/")),
            data,
            compress_type,
        )

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else str(zinfo_or_arcname)
        )
        super().writestr(zinfo_or_arcname, data, compress_type)
        if arcname != self.record_path:
            digest = _urlsafe_b64(hashlib.sha256(data).digest())
            self._records.append((arcname, f"sha256={digest}", len(data)))

    def write_files(self, base_dir):
        """Add every file under ``base_dir`` keeping relative paths."""
        for root, dirs, files in os.walk(base_dir):
            dirs.sort()
            for name in sorted(files):
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                self.write(path, arcname)

    def close(self):
        if self.fp is not None and self.mode == "w":
            lines = [f"{n},{h},{s}" for n, h, s in self._records]
            lines.append(f"{self.record_path},,")
            super().writestr(self.record_path, "\n".join(lines) + "\n")
        super().close()
