"""The fault-plan grammar, counters and activation discipline.

The deterministic core of the chaos suite: a plan plus a deterministic
call sequence must yield the same fault sequence every run, a context
plan must override the environment (so chaos tests stay reproducible
under a CI-wide ``REPRO_FAULTS`` schedule), and unset means strict
no-op.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    ACTIONS,
    PARENT_SITES,
    SITES,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_plan,
    faults_active,
    inject,
    kill_schedule,
    parse_plan,
    should_kill,
)


class TestGrammar:
    def test_round_trip(self):
        spec = (
            "kill@shard.send:w=0:n=2;stall@hist.task:w=1:s=0.5:x=3;"
            "tear@registry.publish"
        )
        plan = parse_plan(spec)
        assert plan.spec() == spec
        assert parse_plan(plan.spec()).spec() == spec

    def test_defaults(self):
        (rule,) = parse_plan("stall@shard.task").rules
        assert rule.worker is None and rule.at is None
        assert rule.seconds == 30.0 and rule.times == 1

    @pytest.mark.parametrize(
        "spec,match",
        [
            ("kill", "missing '@site'"),
            ("boom@shard.send", "unknown fault action"),
            ("kill@nowhere", "unknown fault site"),
            ("kill@shard.task", "parent-side site"),
            ("kill@shard.send:zzz", "malformed fault option"),
            ("kill@shard.send:q=1", "unknown fault option"),
            ("kill@shard.send:x=0", "times >= 1"),
            ("", "no rules"),
            (" ; ", "no rules"),
        ],
    )
    def test_rejects_malformed_specs(self, spec, match):
        with pytest.raises(ValueError, match=match):
            parse_plan(spec)

    def test_every_action_and_site_is_spellable(self):
        for action in sorted(ACTIONS):
            sites = PARENT_SITES if action == "kill" else SITES
            for site in sorted(sites):
                (rule,) = parse_plan(f"{action}@{site}").rules
                assert (rule.action, rule.site) == (action, site)


class TestCounters:
    def test_ordinals_are_per_site_and_worker(self):
        plan = parse_plan("kill@shard.send:w=1:n=1")
        # Worker 0 traffic never advances worker 1's ordinal.
        assert plan.next_count("shard.send", 0) == 0
        assert plan.next_count("shard.send", 0) == 1
        assert plan.next_count("shard.send", 1) == 0
        assert plan.armed("shard.send", 1, 1) is not None

    def test_fire_budget_consumed(self):
        plan = parse_plan("stall@shard.task:x=2")
        assert plan.armed("shard.task", 0, 0) is not None
        assert plan.armed("shard.task", 1, 5) is not None
        assert plan.armed("shard.task", 0, 9) is None  # budget spent

    def test_pinned_ordinal_fires_once(self):
        plan = parse_plan("kill@shard.send:n=3")
        assert all(plan.armed("shard.send", 0, n) is None for n in (0, 1, 2))
        assert plan.armed("shard.send", 0, 3) is not None
        assert plan.armed("shard.send", 0, 3) is None

    def test_first_matching_rule_wins(self):
        plan = parse_plan("exit@shard.task:n=0;stall@shard.task:n=0")
        assert plan.armed("shard.task", 0, 0).action == "exit"
        # The exit rule is spent; the stall rule backs it up.
        assert plan.armed("shard.task", 1, 0).action == "stall"


class TestActivation:
    def test_inactive_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not faults_active()
        assert active_plan() is None
        assert should_kill("shard.send", 0) is False
        inject("shard.task", 0)  # strict no-op

    def test_env_plan_parsed_and_cached_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill@shard.send:n=0")
        assert faults_active()
        first = active_plan()
        assert first is active_plan()  # same instance: counters persist
        monkeypatch.setenv("REPRO_FAULTS", "kill@hist.send:n=0")
        assert active_plan() is not first
        monkeypatch.delenv("REPRO_FAULTS")
        assert not faults_active()

    def test_context_plan_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail@shm.attach")
        with fault_plan("kill@shard.send:n=0") as plan:
            assert active_plan() is plan
            inject("shm.attach", 0)  # the env rule is masked
        assert active_plan().rules[0].site == "shm.attach"

    def test_context_plans_nest(self):
        with fault_plan("kill@shard.send"):
            with fault_plan("kill@hist.send") as inner:
                assert active_plan() is inner
            assert active_plan().rules[0].site == "shard.send"
        assert not faults_active()


class TestEvaluation:
    def test_should_kill_fires_only_kill_rules(self):
        with fault_plan("kill@shard.send:w=0:n=1"):
            assert should_kill("shard.send", 0) is False  # ordinal 0
            assert should_kill("shard.send", 0) is True  # ordinal 1
            assert should_kill("shard.send", 0) is False  # budget spent

    def test_inject_ignores_kill_rules(self):
        with fault_plan("kill@shard.send"):
            inject("shard.send", 0)  # a kill rule never raises inline

    def test_inject_raises_on_fail_and_tear(self):
        with fault_plan("fail@shm.attach:w=2"):
            inject("shm.attach", 0)  # wrong worker: no-op
            with pytest.raises(InjectedFault, match="shm.attach"):
                inject("shm.attach", 2)
        with fault_plan("tear@registry.publish"):
            with pytest.raises(InjectedFault, match="tear"):
                inject("registry.publish")

    def test_inject_stalls_for_the_configured_seconds(self):
        with fault_plan("stall@shard.task:s=0.05"):
            t0 = time.perf_counter()
            inject("shard.task", 0)
            assert time.perf_counter() - t0 >= 0.05


class TestKillSchedule:
    def test_seeded_schedules_reproduce(self):
        a = kill_schedule(7, workers=3, max_at=8, kills=2)
        b = kill_schedule(7, workers=3, max_at=8, kills=2)
        assert a.spec() == b.spec()
        assert kill_schedule(8, workers=3, max_at=8, kills=2).spec() != a.spec()

    def test_rules_within_bounds(self):
        plan = kill_schedule(3, site="hist.send", workers=4, max_at=6, kills=5)
        assert len(plan.rules) == 5
        for rule in plan.rules:
            assert rule.action == "kill" and rule.site == "hist.send"
            assert 0 <= rule.worker < 4
            assert 0 <= rule.at < 6

    def test_every_rule_is_a_valid_kill(self):
        plan = kill_schedule(11, workers=2, max_at=4, kills=3)
        assert parse_plan(plan.spec()).spec() == plan.spec()
        assert all(isinstance(rule, FaultRule) for rule in plan.rules)
