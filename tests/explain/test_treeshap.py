"""Correctness tests for exact TreeSHAP.

The gold standard is brute-force subset enumeration over the identical
value function (repro.explain.exact); TreeSHAP must match it to
numerical precision, and must satisfy the Shapley axioms that have
direct observable form (efficiency, dummy, symmetry).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boosting import GBClassifier, GBRegressor, TreeEnsemble
from repro.explain import TreeShapExplainer, brute_force_shap, tree_value_function

from tests.boosting.test_tree import make_depth2, make_stump


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(300, 5))
    X[rng.random(X.shape) < 0.15] = np.nan
    y = (
        2.0 * np.nan_to_num(X[:, 0])
        + np.nan_to_num(X[:, 1]) * np.nan_to_num(X[:, 2])
        + rng.normal(0, 0.1, 300)
    )
    model = GBRegressor(
        n_estimators=25, max_depth=3, subsample=1.0, colsample_bytree=1.0
    )
    model.fit(X, y)
    return model, X


class TestAgainstBruteForce:
    def test_matches_on_fitted_ensemble(self, fitted_model):
        model, X = fitted_model
        explainer = TreeShapExplainer(model)
        for i in range(8):
            fast = explainer.shap_values_single(X[i])
            slow = brute_force_shap(model.ensemble_, X[i], X.shape[1])
            assert np.allclose(fast, slow, atol=1e-10)

    def test_matches_with_missing_values(self, fitted_model):
        model, X = fitted_model
        x = X[0].copy()
        x[0] = np.nan
        explainer = TreeShapExplainer(model)
        fast = explainer.shap_values_single(x)
        slow = brute_force_shap(model.ensemble_, x, X.shape[1])
        assert np.allclose(fast, slow, atol=1e-10)

    def test_matches_on_handcrafted_tree(self):
        tree = make_depth2()
        ens = TreeEnsemble(base_score=0.0, trees=[tree])
        explainer = TreeShapExplainer(ens)
        for x in ([-1.0, -2.0], [1.0, 2.0], [0.5, np.nan]):
            x = np.array(x)
            fast = explainer.shap_values_single(x)
            slow = brute_force_shap(ens, x, 2)
            assert np.allclose(fast, slow, atol=1e-12)


class TestShapleyAxioms:
    def test_efficiency_on_ensemble(self, fitted_model):
        model, X = fitted_model
        explainer = TreeShapExplainer(model)
        phi = explainer.shap_values(X[:40])
        reconstruction = phi.sum(axis=1) + explainer.expected_value
        assert np.allclose(reconstruction, model.predict(X[:40]), atol=1e-9)

    def test_dummy_feature_gets_zero(self, fitted_model):
        model, X = fitted_model
        explainer = TreeShapExplainer(model)
        phi = explainer.shap_values(X[:40])
        used = set()
        for tree in model.ensemble_.trees:
            used |= set(tree.used_features().tolist())
        unused = set(range(X.shape[1])) - used
        for f in unused:
            assert np.allclose(phi[:, f], 0.0)

    def test_symmetry_on_symmetric_tree(self):
        # f(x) = [x0 > 0] + [x1 > 0] built as two symmetric stumps.
        stump0 = make_stump(feature=0, threshold=0.0, left=0.0, right=1.0)
        stump1 = make_stump(feature=1, threshold=0.0, left=0.0, right=1.0)
        # equalise covers so conditional expectations are symmetric
        ens = TreeEnsemble(base_score=0.0, trees=[stump0, stump1])
        explainer = TreeShapExplainer(ens)
        phi = explainer.shap_values_single(np.array([1.0, 1.0]))
        assert phi[0] == pytest.approx(phi[1])

    def test_single_split_attribution(self):
        # One stump: the entire deviation from the baseline belongs to
        # the split feature.
        tree = make_stump(feature=0, threshold=0.0, left=-1.0, right=1.0)
        ens = TreeEnsemble(base_score=0.0, trees=[tree])
        explainer = TreeShapExplainer(ens)
        phi = explainer.shap_values_single(np.array([2.0, 5.0]))
        expected_value = (4.0 * -1.0 + 6.0 * 1.0) / 10.0
        assert phi[1] == 0.0
        assert phi[0] == pytest.approx(1.0 - expected_value)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_efficiency_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 4))
        y = rng.normal(size=60)
        model = GBRegressor(
            n_estimators=5, max_depth=3, subsample=1.0, colsample_bytree=1.0
        ).fit(X, y)
        explainer = TreeShapExplainer(model)
        x = rng.normal(size=4)
        phi = explainer.shap_values_single(x)
        pred = model.predict(x[None, :])[0]
        assert phi.sum() + explainer.expected_value == pytest.approx(pred, abs=1e-8)


class TestValueFunction:
    def test_full_subset_is_prediction(self, fitted_model):
        model, X = fitted_model
        tree = model.ensemble_.trees[0]
        full = frozenset(range(X.shape[1]))
        assert tree_value_function(tree, X[0], full) == pytest.approx(
            tree.predict(X[0][None, :])[0]
        )

    def test_empty_subset_is_cover_weighted_mean(self):
        tree = make_stump(left=-1.0, right=1.0)
        v = tree_value_function(tree, np.array([0.0]), frozenset())
        assert v == pytest.approx((4 * -1.0 + 6 * 1.0) / 10.0)


class TestExplainerAPI:
    def test_accepts_estimator_or_ensemble(self, fitted_model):
        model, X = fitted_model
        a = TreeShapExplainer(model).shap_values_single(X[0])
        b = TreeShapExplainer(model.ensemble_).shap_values_single(X[0])
        assert np.array_equal(a, b)

    def test_classifier_explained_on_logit_scale(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 3))
        y = X[:, 0] > 0
        model = GBClassifier(
            n_estimators=10, max_depth=2, subsample=1.0, colsample_bytree=1.0
        ).fit(X, y)
        explainer = TreeShapExplainer(model)
        phi = explainer.shap_values(X[:10])
        raw = model.ensemble_.predict_raw(X[:10])
        assert np.allclose(phi.sum(axis=1) + explainer.expected_value, raw, atol=1e-9)

    def test_1d_input_promoted(self, fitted_model):
        model, X = fitted_model
        explainer = TreeShapExplainer(model)
        assert explainer.shap_values(X[0]).shape == (1, X.shape[1])

    def test_3d_input_rejected(self, fitted_model):
        model, X = fitted_model
        with pytest.raises(ValueError):
            TreeShapExplainer(model).shap_values(np.zeros((1, 2, 3)))

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TreeShapExplainer(TreeEnsemble(base_score=0.0, trees=[]))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            TreeShapExplainer("not a model")
