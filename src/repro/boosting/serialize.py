"""JSON (de)serialisation of fitted boosting models.

Clinical deployments need to train once and score later (the paper's
vision of model-assisted visits), so fitted estimators round-trip
through a explicit, versioned JSON document: hyper-parameters, the flat
node arrays of every tree, and the estimator kind.  No pickle — the
format is portable and diffable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.boosting.binning import BinMapper
from repro.boosting.config import GBConfig
from repro.boosting.dag import CompactEnsemble, canonical_order
from repro.boosting.gbm import GBClassifier, GBRegressor
from repro.boosting.tree import Tree, TreeEnsemble

__all__ = [
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
    "mapper_to_dict",
    "mapper_from_dict",
    "model_to_arrays",
    "model_from_arrays",
]

#: Format version written into every document.  Version 2 added the
#: fitted ``BinMapper`` (``mapper_``); version 3 stores the ensemble as
#: a hash-consed DAG (one shared node table + per-tree roots, leaf
#: values and node statistics — see :mod:`repro.boosting.dag`).  v1/v2
#: documents are still readable; models whose trees carry no bin-space
#: thresholds (e.g. v1 restores) cannot be compacted and are written as
#: v2.
FORMAT_VERSION = 3
_DENSE_VERSION = 2

_READABLE_VERSIONS = frozenset({1, _DENSE_VERSION, FORMAT_VERSION})

_KINDS = {"regressor": GBRegressor, "classifier": GBClassifier}


def _tree_to_dict(tree: Tree) -> dict:
    doc = {
        "children_left": tree.children_left.tolist(),
        "children_right": tree.children_right.tolist(),
        "feature": tree.feature.tolist(),
        # NaN/inf are not valid JSON scalars; encode via strings.
        "threshold": [_encode_float(v) for v in tree.threshold],
        "missing_left": tree.missing_left.tolist(),
        "value": tree.value.tolist(),
        "cover": tree.cover.tolist(),
    }
    if tree.bin_threshold is not None:
        doc["bin_threshold"] = tree.bin_threshold.tolist()
    return doc


def _tree_from_dict(doc: dict) -> Tree:
    bin_threshold = doc.get("bin_threshold")
    return Tree(
        children_left=np.asarray(doc["children_left"], dtype=np.int64),
        children_right=np.asarray(doc["children_right"], dtype=np.int64),
        feature=np.asarray(doc["feature"], dtype=np.int64),
        threshold=np.asarray(
            [_decode_float(v) for v in doc["threshold"]], dtype=np.float64
        ),
        missing_left=np.asarray(doc["missing_left"], dtype=bool),
        value=np.asarray(doc["value"], dtype=np.float64),
        cover=np.asarray(doc["cover"], dtype=np.float64),
        bin_threshold=(
            None
            if bin_threshold is None
            else np.asarray(bin_threshold, dtype=np.int64)
        ),
    )


def _encode_float(v: float) -> float | str:
    v = float(v)
    if np.isnan(v):
        return "nan"
    if np.isinf(v):
        return "inf" if v > 0 else "-inf"
    return v


def _decode_float(v) -> float:
    if isinstance(v, str):
        return float(v)
    return float(v)


def mapper_to_dict(mapper: BinMapper) -> dict:
    """Serialise a fitted :class:`BinMapper` to a dict.

    Bin edges are finite floats by construction (``fit`` rejects inf and
    ignores NaN), so plain JSON numbers round-trip them bitwise via
    Python's shortest-repr float encoding.
    """
    if mapper.bin_edges_ is None or mapper.n_bins_ is None:
        raise ValueError("mapper is not fitted; nothing to serialise")
    return {
        "max_bins": mapper.max_bins,
        "bin_edges": [edges.tolist() for edges in mapper.bin_edges_],
        "n_bins": mapper.n_bins_.tolist(),
    }


def mapper_from_dict(doc: dict) -> BinMapper:
    """Rebuild a fitted :class:`BinMapper` from :func:`mapper_to_dict`."""
    mapper = BinMapper(max_bins=int(doc["max_bins"]))
    mapper.bin_edges_ = [
        np.asarray(edges, dtype=np.float64) for edges in doc["bin_edges"]
    ]
    mapper.n_bins_ = np.asarray(doc["n_bins"], dtype=np.int64)
    return mapper


def _model_kind(model, verb: str) -> str:
    if isinstance(model, GBRegressor):
        return "regressor"
    if isinstance(model, GBClassifier):
        return "classifier"
    raise TypeError(f"cannot {verb} {type(model).__name__}")


def _ensure_compact(model) -> CompactEnsemble:
    """The model's cached DAG, building (and caching) it if needed."""
    builder = getattr(model, "compact", None)
    if callable(builder):
        return builder()
    return CompactEnsemble.from_ensemble(model.ensemble_)


def _config_doc(config: GBConfig) -> dict:
    """Serializable view of the config: hyper-parameters only.

    ``n_jobs`` is execution configuration (how many histogram workers
    built the trees), not model identity — fits are bitwise-identical
    at every worker count — so it is stripped here to keep documents,
    fingerprints, and goldens independent of where a model was trained.
    """
    doc = dataclasses.asdict(config)
    doc.pop("n_jobs", None)
    return doc


#: Shared-table columns of a v3 ``dag`` section, in document order.
_DAG_COLUMNS = (
    "children_left",
    "children_right",
    "feature",
    "bin_threshold",
    "missing_left",
    "leaves_left",
)


def model_to_dict(model) -> dict:
    """Serialise a fitted ``GBRegressor``/``GBClassifier`` to a dict.

    Writes format v3: the shared hash-consed node table under ``dag``
    plus one entry per tree holding its root row, leaf values (in leaf
    ordinal order) and canonical-order ``cover``/``threshold`` node
    statistics.  Models whose trees carry no bin thresholds (restored
    v1 documents) cannot be compacted and fall back to a v2 document.
    """
    kind = _model_kind(model, "serialise")
    if model.ensemble_ is None:
        raise ValueError("model is not fitted; nothing to serialise")
    trees = model.ensemble_.trees
    doc = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "config": _config_doc(model.config),
        "n_features": model.n_features_,
        "best_iteration": model.best_iteration_,
        "base_score": model.ensemble_.base_score,
        # The fitted BinMapper completes the round trip: without it a
        # reloaded model silently loses the binned predict/explain fast
        # paths (predict_binned, bin-space TreeSHAP routing).
        "mapper": (
            None if model.mapper_ is None else mapper_to_dict(model.mapper_)
        ),
    }
    if any(t.bin_threshold is None for t in trees):
        doc["format_version"] = _DENSE_VERSION
        doc["trees"] = [_tree_to_dict(t) for t in trees]
        return doc
    compact = _ensure_compact(model)
    doc["dag"] = {
        name: getattr(compact, name).tolist() for name in _DAG_COLUMNS
    }
    tree_docs = []
    for t, tree in enumerate(trees):
        perm = canonical_order(tree)
        lo = int(compact.leaf_offset[t])
        hi = lo + tree.n_leaves
        tree_docs.append(
            {
                "root": int(compact.roots[t]),
                "value": compact.leaf_values[lo:hi].tolist(),
                "cover": tree.cover[perm].tolist(),
                "threshold": [_encode_float(v) for v in tree.threshold[perm]],
            }
        )
    doc["trees"] = tree_docs
    return doc


def _compact_from_doc(doc: dict) -> CompactEnsemble:
    """Rebuild the shared table + per-tree arrays of a v3 document."""
    dag = doc["dag"]
    leaf_values: list[float] = []
    leaf_offset: list[int] = []
    for tree_doc in doc["trees"]:
        leaf_offset.append(len(leaf_values))
        leaf_values.extend(float(v) for v in tree_doc["value"])
    return CompactEnsemble(
        base_score=float(doc["base_score"]),
        children_left=np.asarray(dag["children_left"], dtype=np.int64),
        children_right=np.asarray(dag["children_right"], dtype=np.int64),
        feature=np.asarray(dag["feature"], dtype=np.int64),
        bin_threshold=np.asarray(dag["bin_threshold"], dtype=np.int64),
        missing_left=np.asarray(dag["missing_left"], dtype=bool),
        leaves_left=np.asarray(dag["leaves_left"], dtype=np.int64),
        roots=np.asarray(
            [int(t["root"]) for t in doc["trees"]], dtype=np.int64
        ),
        leaf_offset=np.asarray(leaf_offset, dtype=np.int64),
        leaf_values=np.asarray(leaf_values, dtype=np.float64),
        n_source_nodes=sum(len(t["cover"]) for t in doc["trees"]),
    )


def _new_model(doc: dict):
    kind = doc.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"unknown estimator kind {kind!r}")
    config_doc = dict(doc["config"])
    # Old documents written before n_jobs was stripped (or hand-edited
    # ones) stay loadable, but execution config never round-trips.
    config_doc.pop("n_jobs", None)
    if config_doc.get("monotone_constraints") is not None:
        config_doc["monotone_constraints"] = tuple(
            config_doc["monotone_constraints"]
        )
    model = _KINDS[kind](GBConfig(**config_doc))
    model.n_features_ = int(doc["n_features"])
    model.best_iteration_ = (
        None if doc["best_iteration"] is None else int(doc["best_iteration"])
    )
    return model


def model_from_dict(doc: dict):
    """Rebuild a fitted estimator from :func:`model_to_dict` output.

    All readable versions load: v1 (no mapper, raw-threshold prediction
    only), v2 (dense per-tree node arrays) and v3 (shared DAG table).
    A v3 restore re-expands canonically numbered trees from the table
    and keeps the :class:`CompactEnsemble` attached as ``compact_``, so
    the serving fast path never re-cons the ensemble.
    """
    version = doc.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(expected one of {sorted(_READABLE_VERSIONS)})"
        )
    model = _new_model(doc)
    mapper_doc = doc.get("mapper")
    model.mapper_ = None if mapper_doc is None else mapper_from_dict(mapper_doc)
    if version == FORMAT_VERSION:
        compact = _compact_from_doc(doc)
        trees = compact.expand(
            covers=[
                np.asarray(t["cover"], dtype=np.float64) for t in doc["trees"]
            ],
            thresholds=[
                np.asarray(
                    [_decode_float(v) for v in t["threshold"]],
                    dtype=np.float64,
                )
                for t in doc["trees"]
            ],
        )
        model.ensemble_ = TreeEnsemble(
            base_score=float(doc["base_score"]), trees=trees
        )
        model.compact_ = compact
        return model
    model.ensemble_ = TreeEnsemble(
        base_score=float(doc["base_score"]),
        trees=[_tree_from_dict(t) for t in doc["trees"]],
    )
    return model


#: Per-tree node arrays packed by :func:`model_to_arrays` (name, dtype).
_NODE_FIELDS = (
    ("children_left", np.int64),
    ("children_right", np.int64),
    ("feature", np.int64),
    ("threshold", np.float64),
    ("missing_left", bool),
    ("value", np.float64),
    ("cover", np.float64),
)


#: Shared-table / per-tree arrays of the ``dag`` handoff layout.
_DAG_TABLE_ARRAYS = (
    ("children_left", np.int64),
    ("children_right", np.int64),
    ("feature", np.int64),
    ("bin_threshold", np.int64),
    ("missing_left", bool),
    ("leaves_left", np.int64),
    ("roots", np.int64),
    ("leaf_offset", np.int64),
    ("leaf_values", np.float64),
)


def model_to_arrays(model, layout: str = "auto") -> tuple[dict, dict[str, np.ndarray]]:
    """Pack a fitted estimator into flat arrays + a picklable manifest.

    The JSON document (:func:`model_to_dict`) is the *persistence*
    format; this is the *process-handoff* format: the model's working
    set travels in a handful of contiguous arrays so the whole model
    plane fits in a few POSIX shared-memory segments, and the manifest
    carries only scalars.

    ``layout`` picks the packing:

    * ``"dag"`` — the hash-consed shared node table (``dag:*`` arrays)
      plus per-tree canonical-order ``cover``/``threshold`` statistics;
      the deduplicated table is what every scoring worker maps.
    * ``"dense"`` — the legacy per-field concatenation of every tree's
      node arrays (the only layout for models without bin thresholds).
    * ``"auto"`` (default) — ``dag`` when the trees carry bin-space
      thresholds, else ``dense``.

    :func:`model_from_arrays` rebuilds the estimator with **zero-copy
    views** into the given arrays — N scoring workers map one exported
    plane instead of each unpickling a full copy.
    """
    kind = _model_kind(model, "pack")
    if model.ensemble_ is None:
        raise ValueError("model is not fitted; nothing to pack")
    trees = model.ensemble_.trees
    binnable = all(t.bin_threshold is not None for t in trees)
    if layout == "auto":
        layout = "dag" if binnable else "dense"
    if layout not in ("dag", "dense"):
        raise ValueError(f"unknown pack layout {layout!r}")
    if layout == "dag" and not binnable:
        raise ValueError(
            "model trees carry no bin thresholds; only the dense layout "
            "can pack them"
        )
    arrays: dict[str, np.ndarray] = {}
    if layout == "dag":
        compact = _ensure_compact(model)
        for name, dtype in _DAG_TABLE_ARRAYS:
            arrays[f"dag:{name}"] = np.asarray(
                getattr(compact, name), dtype=dtype
            )
        perms = [canonical_order(t) for t in trees]
        arrays["tree:cover"] = np.concatenate(
            [t.cover[perm] for t, perm in zip(trees, perms)]
        )
        arrays["tree:threshold"] = np.concatenate(
            [t.threshold[perm] for t, perm in zip(trees, perms)]
        )
    else:
        for name, dtype in _NODE_FIELDS:
            arrays[f"tree:{name}"] = np.concatenate(
                [np.asarray(getattr(t, name), dtype=dtype) for t in trees]
            )
        if binnable:
            arrays["tree:bin_threshold"] = np.concatenate(
                [np.asarray(t.bin_threshold, dtype=np.int64) for t in trees]
            )
    manifest = {
        "kind": kind,
        "config": _config_doc(model.config),
        "n_features": int(model.n_features_),
        "best_iteration": model.best_iteration_,
        "base_score": float(model.ensemble_.base_score),
        "n_nodes": [t.n_nodes for t in trees],
        "binnable": binnable,
        "layout": layout,
        "mapper": None,
    }
    if layout == "dag":
        manifest["n_source_nodes"] = int(compact.n_source_nodes)
    mapper = model.mapper_
    if mapper is not None:
        if mapper.bin_edges_ is None or mapper.n_bins_ is None:
            raise ValueError("mapper is not fitted; cannot pack it")
        manifest["mapper"] = {
            "max_bins": mapper.max_bins,
            "n_edges": [len(edges) for edges in mapper.bin_edges_],
        }
        arrays["mapper:edges"] = (
            np.concatenate(mapper.bin_edges_)
            if mapper.bin_edges_
            else np.empty(0, dtype=np.float64)
        )
        arrays["mapper:n_bins"] = np.asarray(mapper.n_bins_, dtype=np.int64)
    return manifest, arrays


def _trees_from_dag_arrays(
    manifest: dict, arrays: dict[str, np.ndarray]
) -> tuple[CompactEnsemble, list[Tree]]:
    """Zero-copy ``CompactEnsemble`` + canonical trees from ``dag:*``."""
    table = {name: arrays[f"dag:{name}"] for name, _ in _DAG_TABLE_ARRAYS}
    compact = CompactEnsemble(
        base_score=float(manifest["base_score"]),
        n_source_nodes=int(manifest["n_source_nodes"]),
        **table,
    )
    covers, thresholds = [], []
    offset = 0
    for n in manifest["n_nodes"]:
        covers.append(arrays["tree:cover"][offset : offset + n])
        thresholds.append(arrays["tree:threshold"][offset : offset + n])
        offset += n
    return compact, compact.expand(covers=covers, thresholds=thresholds)


def model_from_arrays(manifest: dict, arrays: dict[str, np.ndarray]):
    """Rebuild a fitted estimator from :func:`model_to_arrays` output.

    Every mapper array — and, per layout, the shared DAG table
    (``dag``) or every tree node array (``dense``) — is a *view*
    (slice) of the packed arrays: nothing large is copied, so arrays
    backed by shared memory stay shared (and read-only) in the
    reconstructed model.  A ``dag`` reconstruction attaches the mapped
    :class:`CompactEnsemble` as ``model.compact_``, which is the engine
    the scoring service predicts through.
    """
    model = _new_model(manifest)
    if manifest.get("layout", "dense") == "dag":
        compact, trees = _trees_from_dag_arrays(manifest, arrays)
        model.ensemble_ = TreeEnsemble(
            base_score=float(manifest["base_score"]), trees=trees
        )
        model.compact_ = compact
    else:
        trees = []
        offset = 0
        binnable = manifest["binnable"]
        for n in manifest["n_nodes"]:
            fields = {
                name: arrays[f"tree:{name}"][offset : offset + n]
                for name, _ in _NODE_FIELDS
            }
            if binnable:
                fields["bin_threshold"] = arrays["tree:bin_threshold"][
                    offset : offset + n
                ]
            trees.append(Tree(**fields))
            offset += n
        model.ensemble_ = TreeEnsemble(
            base_score=float(manifest["base_score"]), trees=trees
        )
    mapper_info = manifest["mapper"]
    if mapper_info is not None:
        mapper = BinMapper(max_bins=int(mapper_info["max_bins"]))
        edges = arrays["mapper:edges"]
        cuts, lo = [], 0
        for n_edges in mapper_info["n_edges"]:
            cuts.append(edges[lo : lo + n_edges])
            lo += n_edges
        mapper.bin_edges_ = cuts
        mapper.n_bins_ = arrays["mapper:n_bins"]
        model.mapper_ = mapper
    return model


def save_model(model, path: str | Path) -> None:
    """Write a fitted estimator to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(model_to_dict(model)), encoding="utf-8")


def load_model(path: str | Path):
    """Read a fitted estimator back from :func:`save_model` output."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    return model_from_dict(doc)
