"""ETL pipeline: cohort tables -> model-ready sample sets.

Mirrors section 3 of the paper ("Observational data and feature space" +
"Quality Assurance"):

1. aggregate the daily wearable trace to monthly means
   (:mod:`repro.pipeline.aggregate`);
2. interpolate PRO gaps up to a maximum run length — the paper
   determined 5 to be safe — leaving longer runs missing
   (:mod:`repro.pipeline.impute`);
3. assemble per-outcome sample sets: ``Sample_o`` (PRO + activity),
   ``Sample^FI_o`` (adds the window-opening Frailty Index), and the KD
   variants ``Sample^ICI_o`` / ``Sample^{ICI,FI}_o``
   (:mod:`repro.pipeline.samples`);
4. compute the QA statistics the paper reports (gap counts/lengths,
   retained sample counts) (:mod:`repro.pipeline.qa`).
"""

from repro.pipeline.aggregate import monthly_activity
from repro.pipeline.impute import interpolate_bounded, interpolate_matrix
from repro.pipeline.qa import GapReport, gap_report, retention_sweep
from repro.pipeline.samples import (
    SampleSet,
    build_all_sample_sets,
    build_dd_samples,
    build_kd_samples,
)

__all__ = [
    "monthly_activity",
    "interpolate_bounded",
    "interpolate_matrix",
    "SampleSet",
    "build_dd_samples",
    "build_kd_samples",
    "build_all_sample_sets",
    "GapReport",
    "gap_report",
    "retention_sweep",
]
