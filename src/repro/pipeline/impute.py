"""Bounded linear interpolation of gappy monthly series.

Paper, Quality Assurance: "We performed imputation by interpolating
missing data points in the time series ... We experimentally determined
the max size of gaps that could be safely interpolated (five missing
steps)".  Gaps longer than the bound — and gaps touching a series
boundary, which lack an anchor on one side — stay missing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["interpolate_bounded", "interpolate_matrix"]


def interpolate_bounded(values: np.ndarray, max_gap: int) -> np.ndarray:
    """Linearly fill NaN runs of length <= ``max_gap``.

    Interior runs are filled by linear interpolation between the
    bracketing observed values.  Runs touching either boundary are left
    missing regardless of length (no anchor to interpolate from), as are
    runs longer than ``max_gap``.  ``max_gap = 0`` disables imputation.

    Returns a new array; the input is not mutated.

    Examples
    --------
    >>> interpolate_bounded(np.array([1.0, np.nan, 3.0]), max_gap=1).tolist()
    [1.0, 2.0, 3.0]
    >>> interpolate_bounded(np.array([np.nan, 2.0, 3.0]), max_gap=5).tolist()[0]
    nan
    """
    if max_gap < 0:
        raise ValueError("max_gap must be >= 0")
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {values.shape}")
    out = values.copy()
    if max_gap == 0 or len(values) == 0:
        return out

    missing = np.isnan(values)
    if not missing.any():
        return out

    padded = np.concatenate([[False], missing, [False]])
    changes = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(changes == 1)
    ends = np.flatnonzero(changes == -1)
    for start, end in zip(starts, ends):
        length = end - start
        if length > max_gap:
            continue
        left = start - 1
        right = end
        if left < 0 or right >= len(values):
            continue  # boundary gap: no anchor on one side
        lo, hi = values[left], values[right]
        steps = np.arange(1, length + 1, dtype=np.float64)
        out[start:end] = lo + (hi - lo) * steps / (length + 1)
    return out


def interpolate_matrix(matrix: np.ndarray, max_gap: int) -> np.ndarray:
    """Apply :func:`interpolate_bounded` to every column of a matrix.

    Rows are time steps, columns are independent series (e.g. the 56
    PRO items of one patient over one window).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    out = np.empty_like(matrix)
    for j in range(matrix.shape[1]):
        out[:, j] = interpolate_bounded(matrix[:, j], max_gap)
    return out
