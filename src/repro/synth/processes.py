"""Continuous stochastic processes used by the cohort generator."""

from __future__ import annotations

import numpy as np

__all__ = ["ar1_process", "clipped_noise", "weekly_profile"]


def ar1_process(
    rng: np.random.Generator,
    n_steps: int,
    mean: float,
    phi: float,
    sigma: float,
    start: float | None = None,
    drift: float = 0.0,
) -> np.ndarray:
    """Simulate a mean-reverting AR(1) path with optional linear drift.

    The recursion is::

        x[t] = mean_t + phi * (x[t-1] - mean_{t-1}) + sigma * eps[t]
        mean_t = mean + drift * t

    so the process reverts towards a (possibly drifting) mean.  Used for
    latent intrinsic-health trajectories: ``phi`` close to 1 gives slow
    health evolution, negative ``drift`` models ageing decline.

    Parameters
    ----------
    rng:
        Source of randomness.
    n_steps:
        Number of samples to produce (must be >= 1).
    mean:
        Long-run level at t = 0.
    phi:
        Autoregressive coefficient; require ``0 <= phi < 1`` for mean
        reversion.
    sigma:
        Innovation standard deviation (>= 0).
    start:
        Initial value; defaults to a draw from the stationary
        distribution around ``mean``.
    drift:
        Per-step change of the long-run mean.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    if not 0.0 <= phi < 1.0:
        raise ValueError("phi must be in [0, 1) for a mean-reverting AR(1)")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    means = mean + drift * np.arange(n_steps)
    x = np.empty(n_steps, dtype=np.float64)
    if start is None:
        stationary_sd = sigma / np.sqrt(1.0 - phi**2) if sigma > 0 else 0.0
        start = float(rng.normal(mean, stationary_sd))
    x[0] = means[0] + phi * (start - mean) + sigma * rng.standard_normal()
    for t in range(1, n_steps):
        x[t] = (
            means[t]
            + phi * (x[t - 1] - means[t - 1])
            + sigma * rng.standard_normal()
        )
    return x


def clipped_noise(
    rng: np.random.Generator,
    size: int,
    sigma: float,
    heavy_tail: float = 0.0,
    clip: float = 4.0,
) -> np.ndarray:
    """Zero-mean noise with an optional heavy-tail mixture component.

    With probability ``heavy_tail`` a sample comes from a 4x wider
    Gaussian (bad sensor days, outlier questionnaire entries); everything
    is clipped to ``clip`` standard deviations so one draw cannot wreck a
    monthly aggregate.
    """
    if not 0.0 <= heavy_tail <= 1.0:
        raise ValueError("heavy_tail must be a probability")
    base = rng.standard_normal(size)
    if heavy_tail > 0:
        widen = rng.random(size) < heavy_tail
        base = np.where(widen, base * 4.0, base)
    return np.clip(base, -clip, clip) * sigma


def weekly_profile(
    rng: np.random.Generator,
    weekend_dip: float = 0.15,
    jitter: float = 0.05,
) -> np.ndarray:
    """A length-7 multiplicative day-of-week activity profile.

    Weekdays hover around 1.0; Saturday/Sunday are reduced by
    ``weekend_dip`` on average.  ``jitter`` adds person-level variation.
    The profile is normalised to mean 1 so it does not bias monthly means.
    """
    profile = np.ones(7)
    profile[5] -= weekend_dip
    profile[6] -= weekend_dip
    profile = profile + rng.normal(0.0, jitter, size=7)
    profile = np.clip(profile, 0.1, None)
    return profile / profile.mean()
