"""Server-side observability: latency window, counters, /metrics payload.

The ops plane measures three things about the HTTP front end
(:mod:`repro.serve.server`):

* **Tail latency** — :class:`LatencyWindow` keeps the last N per-request
  wall times in a fixed ring buffer and summarises them as the p50/p95/
  p99 milliseconds the benches record (same definition as
  ``benchmarks/conftest.py``'s ``latency_percentiles``).
* **Lifetime counters** — :class:`ServerStats` counts what the server
  did (posts answered, rows scored, micro-batches formed, rejections,
  errors, hot swaps).
* **The wire document** — :func:`metrics_payload` assembles both, plus
  the router/cache/admission views, into one JSON document in the same
  entry schema as ``results/bench.json`` (``name`` / ``seconds`` /
  ``speedup`` / ``config`` / ``latency_ms`` + serving extras), so a
  ``GET /metrics`` sample and a recorded bench entry are directly
  comparable.

None of this reads the wall clock: every duration is a difference of
the server's injected monotonic clock (REP002 holds in this module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyWindow", "ServerStats", "metrics_payload"]


class LatencyWindow:
    """Fixed-capacity ring buffer of per-request latencies (seconds).

    Old observations fall out as new ones arrive, so the percentiles
    describe *recent* traffic rather than the whole process lifetime —
    the view an operator watching ``/metrics`` wants during a load
    shift or a hot swap.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def observe(self, seconds: float) -> None:
        """Record one request's wall time."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self._buffer[self._next] = seconds
        self._next = (self._next + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)

    def percentiles(self) -> dict[str, float]:
        """p50/p95/p99 milliseconds over the window (zeros when empty).

        Matches the bench definition (``latency_percentiles`` in
        ``benchmarks/conftest.py``): linear-interpolated percentiles of
        the sample, scaled to milliseconds.
        """
        if self._count == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        lat = self._buffer[: self._count] * 1e3
        p50, p95, p99 = np.percentile(lat, [50, 95, 99])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass
class ServerStats:
    """Lifetime counters of one :class:`~repro.serve.server.ScoringServer`."""

    #: Scoring POSTs answered with a 200 (each may carry many rows).
    posts: int = 0
    #: Rows scored across all answered posts.
    rows: int = 0
    #: Micro-batches the flusher executed.
    micro_batches: int = 0
    #: POSTs refused with 413 (more rows than one micro-batch holds).
    oversized: int = 0
    #: POSTs that failed with a 500 during scoring.
    errors: int = 0
    #: Hot model swaps applied.
    swaps: int = 0

    def throughput_rps(self, uptime_seconds: float) -> float:
        """Lifetime rows/second over the server's uptime (0 when idle)."""
        if uptime_seconds <= 0:
            return 0.0
        return self.rows / uptime_seconds


def metrics_payload(
    *,
    seconds: float,
    config: dict,
    latency_ms: dict[str, float],
    throughput_rps: float,
    queue_depth: int,
    queue_rows: int,
    max_queue: int,
    rejected: int,
    stats: ServerStats,
    shard_rows: dict[int, int],
    workers: int,
    workers_alive: int,
    cache_hits: int,
    cache_misses: int,
    cache_hit_rate: float,
    version: str,
    workers_respawned: int = 0,
    deadline_kills: int = 0,
    half_published: int = 0,
    name: str = "serve_http",
) -> dict:
    """Build one ``GET /metrics`` document.

    The top-level shape is the ``results/bench.json`` entry schema —
    ``name``, ``seconds`` (uptime), ``speedup`` (always None for a live
    server), ``config``, ``latency_ms`` with p50/p95/p99 milliseconds —
    extended with the serving-only sections: ``throughput_rps``,
    ``queue`` (admission depth/bound/rejections), ``requests`` (post,
    row, batch and error counters), ``shards`` (per-cache-shard row
    occupancy and live worker count), ``cache`` (hit statistics),
    ``model`` (served version + applied hot swaps) and ``recovery``
    (self-healing counters: workers respawned, stuck-worker deadline
    kills, torn publishes quarantined).  ``docs/formats.md`` is the
    normative reference for the fields.
    """
    return {
        "name": name,
        "seconds": round(float(seconds), 4),
        "speedup": None,
        "config": dict(config),
        "latency_ms": {
            key: round(float(value), 3)
            for key, value in sorted(latency_ms.items())
        },
        "throughput_rps": round(float(throughput_rps), 3),
        "queue": {
            "depth": int(queue_depth),
            "rows": int(queue_rows),
            "max": int(max_queue),
            "rejected": int(rejected),
        },
        "requests": {
            "posts": int(stats.posts),
            "rows": int(stats.rows),
            "micro_batches": int(stats.micro_batches),
            "oversized": int(stats.oversized),
            "errors": int(stats.errors),
        },
        "shards": {
            "workers": int(workers),
            "workers_alive": int(workers_alive),
            "rows": {
                str(shard): int(count)
                for shard, count in sorted(shard_rows.items())
            },
        },
        "cache": {
            "hits": int(cache_hits),
            "misses": int(cache_misses),
            "hit_rate": round(float(cache_hit_rate), 4),
        },
        "model": {
            "version": version,
            "swaps": int(stats.swaps),
        },
        "recovery": {
            "workers_respawned": int(workers_respawned),
            "deadline_kills": int(deadline_kills),
            "half_published": int(half_published),
        },
    }
