"""Synthetic MySAwH-like cohort generation.

The paper's experimental data (the My Smart Age with HIV study: 261
patients across Modena, Sydney and Hong Kong; daily wearable traces;
56 monthly PRO questionnaire items; clinical visits at months 0, 9 and 18)
is private clinical data.  This package generates a synthetic cohort with
the same schema, acquisition schedule and statistical character, driven by
a per-patient latent intrinsic-health process (DESIGN.md section 5).

The generator is a pure function of a :class:`CohortConfig`:

>>> from repro.cohort import CohortConfig, generate_cohort
>>> cohort = generate_cohort(CohortConfig(seed=7))
>>> cohort.pro.num_rows > 0
True

Emitted tables (all :class:`repro.tabular.Table`):

``cohort.patients``   one row per patient (id, clinic, age, years with HIV)
``cohort.daily``      wearable trace: one row per patient-day
``cohort.pro``        one row per patient-month with 56 item columns
                      (NaN where the answer is missing)
``cohort.visits``     clinical visits at months 0/9/18: 37 deficit columns
                      and the outcomes measured at months 9/18
``cohort.latent``     ground-truth latent health (for validation only;
                      never fed to models)
"""

from repro.cohort.config import ClinicConfig, CohortConfig
from repro.cohort.dataset import CohortDataset
from repro.cohort.generator import generate_cohort
from repro.cohort.persist import load_cohort, save_cohort
from repro.cohort.schema import (
    ACTIVITY_VARIABLES,
    IC_DOMAINS,
    PRO_ITEMS,
    ProItem,
    pro_item_names,
)

__all__ = [
    "ClinicConfig",
    "CohortConfig",
    "CohortDataset",
    "generate_cohort",
    "save_cohort",
    "load_cohort",
    "ACTIVITY_VARIABLES",
    "IC_DOMAINS",
    "PRO_ITEMS",
    "ProItem",
    "pro_item_names",
]
