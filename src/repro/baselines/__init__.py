"""Baseline learners for the model ablation (paper section 5, GA2M [15]).

The paper states that gradient boosting "proved to offer better
predictive performance than other popular intelligible learning
frameworks such as GA2M".  This package provides those comparison
points, implemented from scratch:

``EBMRegressor`` / ``EBMClassifier``
    GA2M-style additive models fitted by cyclic one-feature gradient
    boosting (Explainable Boosting Machine lite).
``RidgeRegressor`` / ``LogisticRegressor``
    Linear baselines (closed-form ridge; Newton-IRLS logistic).
``MeanRegressor`` / ``MajorityClassifier``
    Dummy floors every real model must beat.
"""

from repro.baselines.dummy import MajorityClassifier, MeanRegressor
from repro.baselines.ebm import EBMClassifier, EBMRegressor
from repro.baselines.linear import LogisticRegressor, RidgeRegressor

__all__ = [
    "MajorityClassifier",
    "MeanRegressor",
    "EBMClassifier",
    "EBMRegressor",
    "LogisticRegressor",
    "RidgeRegressor",
]
