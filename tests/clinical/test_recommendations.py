"""Tests for the decision-support layer."""

import numpy as np
import pytest

from repro.clinical import (
    DEFAULT_INTERVENTIONS,
    aggregate_by_domain,
    recommend,
)
from repro.cohort.schema import IC_DOMAINS


class TestAggregation:
    def test_features_fold_into_their_domains(self):
        names = ["pro_loc_01", "pro_loc_02", "pro_cog_01", "steps"]
        shap = np.array([-0.3, -0.1, 0.2, -0.2])
        impacts = aggregate_by_domain(shap, names)
        assert impacts["locomotion"].negative == pytest.approx(-0.6)
        assert impacts["cognition"].positive == pytest.approx(0.2)

    def test_fi_lands_in_clinical_bucket(self):
        impacts = aggregate_by_domain(np.array([-0.5]), ["fi"])
        assert "clinical_baseline" in impacts
        assert impacts["clinical_baseline"].negative == pytest.approx(-0.5)

    def test_evidence_sorted_worst_first(self):
        names = ["pro_loc_01", "pro_loc_02"]
        impacts = aggregate_by_domain(np.array([-0.1, -0.4]), names)
        assert impacts["locomotion"].features[0][0] == "pro_loc_02"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_by_domain(np.zeros(2), ["a"])


class TestRecommend:
    def test_worst_domain_ranked_first(self):
        names = ["pro_loc_01", "pro_psy_01", "pro_vit_01"]
        shap = np.array([-0.1, -0.6, -0.3])
        report = recommend("p1", 0.7, shap, names)
        assert report.recommendations[0].domain == "psychological"
        assert report.recommendations[1].domain == "vitality"

    def test_min_impact_filters(self):
        names = ["pro_loc_01", "pro_psy_01"]
        shap = np.array([-0.05, -0.6])
        report = recommend("p1", 0.7, shap, names, min_impact=0.1)
        domains = [r.domain for r in report.recommendations]
        assert domains == ["psychological"]

    def test_max_recommendations_cap(self):
        names = ["pro_loc_01", "pro_psy_01", "pro_vit_01", "pro_cog_01"]
        shap = np.array([-0.4, -0.3, -0.2, -0.1])
        report = recommend("p1", 0.7, shap, names, max_recommendations=2)
        assert len(report.recommendations) == 2

    def test_healthy_patient_gets_no_recommendations(self):
        names = ["pro_loc_01", "pro_psy_01"]
        report = recommend("p1", 0.9, np.array([0.2, 0.1]), names)
        assert report.recommendations == ()
        assert "no impaired domains" in report.render()

    def test_actions_come_from_catalogue(self):
        names = ["pro_loc_01"]
        report = recommend("p1", 0.5, np.array([-0.4]), names)
        assert report.recommendations[0].action == DEFAULT_INTERVENTIONS["locomotion"]

    def test_custom_catalogue(self):
        names = ["pro_loc_01"]
        report = recommend(
            "p1", 0.5, np.array([-0.4]), names,
            interventions={"locomotion": "go for walks"},
        )
        assert report.recommendations[0].action == "go for walks"

    def test_render_contains_evidence(self):
        names = ["pro_loc_01", "pro_loc_02"]
        report = recommend("p7", 0.4, np.array([-0.4, -0.1]), names)
        text = report.render()
        assert "p7" in text and "pro_loc_01" in text and "evidence" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend("p", 0.0, np.zeros(1), ["fi"], min_impact=-1.0)
        with pytest.raises(ValueError):
            recommend("p", 0.0, np.zeros(1), ["fi"], max_recommendations=0)

    def test_catalogue_covers_all_domains(self):
        for domain in IC_DOMAINS:
            assert domain in DEFAULT_INTERVENTIONS


class TestEndToEnd:
    def test_real_model_explanation_flows_through(self, qol_dd_samples):
        from repro.explain import TreeShapExplainer
        from repro.learning import run_protocol

        result = run_protocol(qol_dd_samples, n_folds=2, seed=0)
        explainer = TreeShapExplainer(result.model)
        idx = result.test_idx[0]
        shap = explainer.shap_values_single(qol_dd_samples.X[idx])
        report = recommend(
            str(qol_dd_samples.patient_ids[idx]),
            float(result.model.predict(qol_dd_samples.X[idx][None, :])[0]),
            shap,
            list(qol_dd_samples.feature_names),
        )
        assert report.recommendations  # something is always improvable
        assert all(r.impact < 0 for r in report.recommendations)
