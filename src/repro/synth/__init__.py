"""Seeded stochastic building blocks for the synthetic cohort.

The MySAwH dataset cannot be redistributed, so the reproduction generates a
synthetic cohort with the same schema and statistical character (see
DESIGN.md section 5).  This package holds the reusable random-process
primitives that the generator composes:

``SeedSequenceFactory``
    Deterministic hierarchical seeding so that every patient / stream gets
    an independent, reproducible RNG.
``ar1_process``
    Mean-reverting AR(1) paths used for latent intrinsic-health states.
``OrdinalLink``
    Monotone mapping from a continuous latent score to ordinal categories,
    used for PRO questionnaire answers.
``weekly_profile``
    Day-of-week seasonality for wearable traces.
``burst_gap_mask``
    Bursty missing-data process calibrated to the paper's gap statistics.
"""

from repro.synth.gaps import burst_gap_mask, gap_lengths
from repro.synth.ordinal import OrdinalLink
from repro.synth.processes import ar1_process, clipped_noise, weekly_profile
from repro.synth.seeding import SeedSequenceFactory

__all__ = [
    "SeedSequenceFactory",
    "ar1_process",
    "clipped_noise",
    "weekly_profile",
    "OrdinalLink",
    "burst_gap_mask",
    "gap_lengths",
]
