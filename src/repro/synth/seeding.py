"""Hierarchical deterministic seeding.

Reproducibility contract: the whole synthetic cohort is a pure function of
one integer seed.  Each logical stream (a patient's wearable trace, a PRO
item's noise, a clinic effect, ...) draws from its own ``Generator`` so
that adding or reordering streams never perturbs the others.

``numpy.random.SeedSequence.spawn`` would also work, but it is stateful
(spawn order matters).  Here streams are addressed by *name*, hashed into
the seed material, which makes the mapping order-independent and
self-documenting.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedSequenceFactory"]


class SeedSequenceFactory:
    """Create named, independent, reproducible random generators.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  Two factories with the same root seed
        produce identical generators for identical names.

    Examples
    --------
    >>> f = SeedSequenceFactory(7)
    >>> g1 = f.generator("patient/0/steps")
    >>> g2 = f.generator("patient/0/steps")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError("root_seed must be an integer")
        self.root_seed = int(root_seed)

    def entropy_for(self, name: str) -> int:
        """Derive a 128-bit entropy integer for the named stream."""
        material = f"{self.root_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:16], "little")

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh, independent ``Generator`` for the named stream."""
        return np.random.default_rng(np.random.SeedSequence(self.entropy_for(name)))

    def child(self, name: str) -> "SeedSequenceFactory":
        """Return a sub-factory scoped under ``name`` (namespacing)."""
        return _ScopedFactory(self, name)


class _ScopedFactory(SeedSequenceFactory):
    """A factory whose stream names are prefixed by a scope."""

    def __init__(self, parent: SeedSequenceFactory, scope: str):
        super().__init__(parent.root_seed)
        self._parent = parent
        self._scope = scope

    def entropy_for(self, name: str) -> int:
        return self._parent.entropy_for(f"{self._scope}/{name}")

    def child(self, name: str) -> "SeedSequenceFactory":
        return _ScopedFactory(self._parent, f"{self._scope}/{name}")
