"""Hash-consed DAG compaction of a fitted tree ensemble.

Boosted ensembles repeat near-identical subtrees across rounds: shallow
trees over a shared bin space keep rediscovering the same splits.  The
decision-diagram literature (see PAPERS.md) answers queries off a
*reduced* structure in which every isomorphic subgraph is stored once;
this module applies the same reduction to a fitted
:class:`~repro.boosting.tree.TreeEnsemble`.

Layout
------
:class:`CompactEnsemble` holds **one flat node table** shared by every
tree.  A table row is an internal split — ``(feature, bin_threshold,
missing_left, children_left, children_right)`` — interned bottom-up so
two structurally identical subtrees (within one tree or across trees)
occupy the same row.  Row ``0`` is the single shared terminal: every
leaf of every tree collapses onto it, because a leaf's *structure*
carries no information — only its value does.

Leaf values therefore live outside the table, in one concatenated
``leaf_values`` array addressed by *leaf ordinals*: descending a tree,
a row's ``leaves_left`` column (the number of leaves in its left
subtree) is added to an ordinal accumulator whenever routing goes
right, so the terminal is reached with ``ordinal`` equal to the leaf's
left-to-right position, and the prediction is
``leaf_values[leaf_offset[tree] + ordinal]``.  This separation of
shared structure from per-tree values is what makes the reduction
effective: consing full leaf contents (distinct floats) shares nothing.

Determinism
-----------
Interning walks every tree in canonical left-first postorder, so the
table depends only on tree topology and split labels — never on node
numbering, dict iteration or hash seeds — and rebuilding the table from
canonically re-expanded trees reproduces it byte-for-byte.
:meth:`CompactEnsemble.predict_raw_binned` routes all trees through the
table in one fused frontier loop but accumulates per-tree scores in the
exact sequential order of ``TreeEnsemble.predict_raw_binned``, so raw
scores are bitwise identical to the per-tree path for any row batch.
"""

# repro: scope[row-deterministic]

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boosting.tree import LEAF, Tree, TreeEnsemble

__all__ = ["CompactEnsemble", "LEAF_ROW", "canonical_order"]

#: Table row shared by every leaf of every tree (always row 0).
LEAF_ROW = 0

#: Lane budget of one fused-frontier chunk (rows x trees).  Sized so
#: the frontier's per-level temporaries (~10 lane-length arrays) stay
#: cache-resident: 64Ki lanes x 8 B is 512 KiB per temporary.  Chunking
#: is bitwise-transparent — each row routes independently and the
#: per-row accumulation order never changes.
_CHUNK_LANES = 1 << 16


def canonical_order(tree: Tree) -> np.ndarray:
    """Preorder (parent, left subtree, right subtree) node permutation.

    ``tree.<field>[canonical_order(tree)]`` reorders any per-node array
    into the canonical numbering used by the compact table's expansion
    (:meth:`CompactEnsemble.expand`); on an already-canonical tree this
    is the identity.
    """
    order = np.empty(tree.n_nodes, dtype=np.int64)
    stack = [0]
    pos = 0
    while stack:
        node = stack.pop()
        order[pos] = node
        pos += 1
        if tree.children_left[node] != LEAF:
            stack.append(int(tree.children_right[node]))
            stack.append(int(tree.children_left[node]))
    return order


@dataclass
class CompactEnsemble:
    """One shared node table + per-tree roots and leaf values.

    Table columns (``children_left`` .. ``leaves_left``) are parallel
    arrays over interned rows.  Children are always interned before
    their parent (``children_left[i] < i`` and ``children_right[i] < i``
    for every internal row), so the table is topologically sorted and
    cheap to validate.
    """

    base_score: float
    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    bin_threshold: np.ndarray
    missing_left: np.ndarray
    leaves_left: np.ndarray
    roots: np.ndarray
    leaf_offset: np.ndarray
    leaf_values: np.ndarray
    #: Node count of the source (uncompacted) ensemble.
    n_source_nodes: int

    def __post_init__(self):
        n = len(self.children_left)
        for name in (
            "children_right",
            "feature",
            "bin_threshold",
            "missing_left",
            "leaves_left",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"table column {name!r} length mismatch")
        if n == 0 or self.children_left[LEAF_ROW] != LEAF:
            raise ValueError("table row 0 must be the shared leaf terminal")
        if len(self.roots) != len(self.leaf_offset):
            raise ValueError("roots and leaf_offset length mismatch")
        internal = np.flatnonzero(self.children_left != LEAF)
        if internal.size and (
            (self.children_left[internal] >= internal).any()
            or (self.children_right[internal] >= internal).any()
        ):
            raise ValueError(
                "table is not topologically sorted (children after parent)"
            )
        if self.roots.size and (
            self.roots.min() < 0 or self.roots.max() >= n
        ):
            raise ValueError("tree root out of table range")

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Rows in the shared table (the compacted node count)."""
        return len(self.children_left)

    @property
    def n_trees(self) -> int:
        return len(self.roots)

    @property
    def compression_ratio(self) -> float:
        """Source nodes per table row (>= 1 by construction)."""
        return self.n_source_nodes / self.n_rows

    @property
    def nbytes(self) -> int:
        """Bytes held by the table + per-tree arrays."""
        total = 0
        for name in (
            "children_left",
            "children_right",
            "feature",
            "bin_threshold",
            "missing_left",
            "leaves_left",
            "roots",
            "leaf_offset",
            "leaf_values",
        ):
            total += getattr(self, name).nbytes
        return total

    def stats(self) -> dict:
        """Compression accounting for registries and benchmarks."""
        return {
            "nodes": int(self.n_source_nodes),
            "table_rows": int(self.n_rows),
            "n_trees": int(self.n_trees),
            "n_leaf_values": int(len(self.leaf_values)),
            "ratio": float(self.compression_ratio),
            "nbytes": int(self.nbytes),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_ensemble(cls, ensemble: TreeEnsemble) -> "CompactEnsemble":
        """Hash-cons ``ensemble`` into a shared table (bottom-up).

        Every tree must carry bin-space thresholds
        (``Tree.bin_threshold``); the table routes entirely in bin-code
        space, like :meth:`Tree.predict_binned`.
        """
        for t, tree in enumerate(ensemble.trees):
            if tree.bin_threshold is None:
                raise ValueError(
                    f"tree {t} has no bin thresholds; only ensembles grown "
                    "from binned data can be compacted"
                )
        children_left: list[int] = [LEAF]
        children_right: list[int] = [LEAF]
        feature: list[int] = [LEAF]
        bin_threshold: list[int] = [LEAF]
        missing_left: list[bool] = [False]
        leaves_left: list[int] = [0]
        #: Leaves under each row's subtree (1 for the terminal row).
        leaf_count: list[int] = [1]
        intern: dict[tuple, int] = {}

        roots: list[int] = []
        leaf_offset: list[int] = []
        leaf_values: list[float] = []
        n_source_nodes = 0
        for tree in ensemble.trees:
            n_source_nodes += tree.n_nodes
            leaf_offset.append(len(leaf_values))
            roots.append(
                _cons_tree(
                    tree,
                    intern,
                    children_left,
                    children_right,
                    feature,
                    bin_threshold,
                    missing_left,
                    leaves_left,
                    leaf_count,
                    leaf_values,
                )
            )
        return cls(
            base_score=float(ensemble.base_score),
            children_left=np.asarray(children_left, dtype=np.int64),
            children_right=np.asarray(children_right, dtype=np.int64),
            feature=np.asarray(feature, dtype=np.int64),
            bin_threshold=np.asarray(bin_threshold, dtype=np.int64),
            missing_left=np.asarray(missing_left, dtype=bool),
            leaves_left=np.asarray(leaves_left, dtype=np.int64),
            roots=np.asarray(roots, dtype=np.int64),
            leaf_offset=np.asarray(leaf_offset, dtype=np.int64),
            leaf_values=np.asarray(leaf_values, dtype=np.float64),
            n_source_nodes=n_source_nodes,
        )

    # ------------------------------------------------------------------
    def predict_raw_binned(
        self,
        binned: np.ndarray,
        missing_bin: int,
        n_trees: int | None = None,
    ) -> np.ndarray:
        """Raw predictions from pre-binned codes, off the shared table.

        All trees advance together in one fused frontier loop — one
        lane per (row, tree) pair — instead of ``n_trees`` separate
        traversals; the per-tree scores are then accumulated in the
        same sequential order as ``TreeEnsemble.predict_raw_binned``,
        so the result is bitwise identical to the per-tree path.

        The fused loop amortises numpy dispatch across the whole
        ensemble, which is where serving-shaped batches live: on
        micro-batches (1–256 rows) it is several times faster than the
        per-tree loop, whose fixed ``n_trees x depth`` call overhead
        dwarfs the per-row work.  On very large matrices (thousands of
        rows) the two paths converge, the per-tree loop's temporaries
        being equally cache-resident there.
        """
        binned = np.asarray(binned)
        if binned.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {binned.shape}")
        n = binned.shape[0]
        n_use = self.n_trees if n_trees is None else min(n_trees, self.n_trees)
        out = np.full(n, self.base_score, dtype=np.float64)
        if n == 0 or n_use == 0:
            return out
        roots = self.roots[:n_use]
        offsets = self.leaf_offset[:n_use]
        chunk = max(1, _CHUNK_LANES // n_use)
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            vals = self._frontier_chunk(
                binned[lo:hi], missing_bin, roots, offsets
            )
            for t in range(n_use):
                out[lo:hi] += vals[:, t]
        return out

    def _frontier_chunk(
        self,
        block: np.ndarray,
        missing_bin: int,
        roots: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Leaf values per (row, tree) lane of one row block."""
        m = block.shape[0]
        n_use = len(roots)
        node = np.tile(roots, m)
        ordinal = np.zeros(m * n_use, dtype=np.int64)
        rows = np.repeat(np.arange(m, dtype=np.int64), n_use)
        active = node != LEAF_ROW
        while active.any():
            idx = np.flatnonzero(active)
            nd = node[idx]
            codes = block[rows[idx], self.feature[nd]]
            go_left = np.where(
                codes == missing_bin,
                self.missing_left[nd],
                codes <= self.bin_threshold[nd],
            )
            node[idx] = np.where(
                go_left, self.children_left[nd], self.children_right[nd]
            )
            ordinal[idx] += np.where(go_left, 0, self.leaves_left[nd])
            active[idx] = node[idx] != LEAF_ROW
        return self.leaf_values[
            ordinal.reshape(m, n_use) + offsets[np.newaxis, :]
        ]

    # ------------------------------------------------------------------
    def expand(self, *, covers, thresholds) -> list[Tree]:
        """Re-expand the table into canonically numbered ``Tree`` objects.

        ``covers``/``thresholds`` supply the per-tree node statistics
        the table deliberately does not share (they are per-tree data,
        not shared structure), each in canonical preorder — exactly what
        :func:`canonical_order` extracts from a source tree.  The
        expanded trees route bitwise identically to the originals;
        their node numbering is canonical, which is what makes a
        table -> trees -> table round trip byte-stable.
        """
        if len(covers) != self.n_trees or len(thresholds) != self.n_trees:
            raise ValueError(
                f"need one cover/threshold array per tree "
                f"({self.n_trees}), got {len(covers)}/{len(thresholds)}"
            )
        return [
            self._expand_tree(t, covers[t], thresholds[t])
            for t in range(self.n_trees)
        ]

    def _expand_tree(self, t: int, cover, threshold) -> Tree:
        cover = np.asarray(cover, dtype=np.float64)
        threshold = np.asarray(threshold, dtype=np.float64)
        children_left: list[int] = []
        children_right: list[int] = []
        feature: list[int] = []
        bin_threshold: list[int] = []
        missing_left: list[bool] = []
        value: list[float] = []
        next_leaf = int(self.leaf_offset[t])
        # Preorder walk assigning positions as nodes are emitted; each
        # stack entry records which parent slot the node's position
        # must be patched into.
        stack: list[tuple[int, int, bool]] = [(int(self.roots[t]), -1, False)]
        while stack:
            row, parent, is_left = stack.pop()
            pos = len(children_left)
            if parent >= 0:
                if is_left:
                    children_left[parent] = pos
                else:
                    children_right[parent] = pos
            if row == LEAF_ROW:
                children_left.append(LEAF)
                children_right.append(LEAF)
                feature.append(LEAF)
                bin_threshold.append(LEAF)
                missing_left.append(False)
                value.append(float(self.leaf_values[next_leaf]))
                next_leaf += 1
            else:
                children_left.append(0)
                children_right.append(0)
                feature.append(int(self.feature[row]))
                bin_threshold.append(int(self.bin_threshold[row]))
                missing_left.append(bool(self.missing_left[row]))
                value.append(0.0)
                stack.append((int(self.children_right[row]), pos, False))
                stack.append((int(self.children_left[row]), pos, True))
        n = len(children_left)
        if len(cover) != n or len(threshold) != n:
            raise ValueError(
                f"tree {t}: expected {n} cover/threshold entries, "
                f"got {len(cover)}/{len(threshold)}"
            )
        return Tree(
            children_left=np.asarray(children_left, dtype=np.int64),
            children_right=np.asarray(children_right, dtype=np.int64),
            feature=np.asarray(feature, dtype=np.int64),
            threshold=threshold,
            missing_left=np.asarray(missing_left, dtype=bool),
            value=np.asarray(value, dtype=np.float64),
            cover=cover,
            bin_threshold=np.asarray(bin_threshold, dtype=np.int64),
        )


def _cons_tree(
    tree: Tree,
    intern: dict[tuple, int],
    children_left: list[int],
    children_right: list[int],
    feature: list[int],
    bin_threshold: list[int],
    missing_left: list[bool],
    leaves_left: list[int],
    leaf_count: list[int],
    leaf_values: list[float],
) -> int:
    """Intern one tree bottom-up; return its root row.

    The walk is iterative left-first postorder (children interned
    before their parent, left subtree before right), so the sequence of
    intern keys — and hence row numbering — depends only on topology
    and split labels, never on the source tree's node numbering.
    """
    row_of = np.empty(tree.n_nodes, dtype=np.int64)
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        node, ready = stack.pop()
        left = int(tree.children_left[node])
        if left == LEAF:
            row_of[node] = LEAF_ROW
            leaf_values.append(float(tree.value[node]))
            continue
        right = int(tree.children_right[node])
        if not ready:
            stack.append((node, True))
            stack.append((right, False))
            stack.append((left, False))
            continue
        key = (
            int(tree.feature[node]),
            int(tree.bin_threshold[node]),
            bool(tree.missing_left[node]),
            int(row_of[left]),
            int(row_of[right]),
        )
        row = intern.get(key)
        if row is None:
            row = len(children_left)
            intern[key] = row
            children_left.append(key[3])
            children_right.append(key[4])
            feature.append(key[0])
            bin_threshold.append(key[1])
            missing_left.append(key[2])
            leaves_left.append(leaf_count[key[3]])
            leaf_count.append(leaf_count[key[3]] + leaf_count[key[4]])
        row_of[node] = row
    return int(row_of[0])
