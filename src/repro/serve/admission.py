"""Admission control for the scoring server: a bounded request queue.

The HTTP front end (:mod:`repro.serve.server`) must not buffer work
without bound: a burst beyond what the scoring plane drains would grow
the queue — and every queued request's latency — indefinitely.  The
:class:`AdmissionController` bounds the number of *admitted but not yet
answered* rows; a POST that would exceed the bound is refused up front
with **429 Too Many Requests** plus a ``Retry-After`` estimate, so
clients shed load at the edge instead of timing out deep in the queue.

Accounting is in rows (not posts) because rows are what the micro-batch
executor actually drains — a 64-row post occupies the plane 64 times as
long as a single-row post.  The controller is plain bookkeeping on the
event-loop thread: no locks, no clocks.
"""

from __future__ import annotations

import math

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bound the rows admitted into the server but not yet answered.

    Parameters
    ----------
    max_queue:
        Row capacity.  :meth:`try_admit` refuses any request that would
        push the in-flight row count past this bound.
    """

    def __init__(self, max_queue: int):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self._depth = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def depth(self) -> int:
        """Rows currently admitted and awaiting their response."""
        return self._depth

    def try_admit(self, rows: int) -> bool:
        """Admit ``rows`` more rows, or refuse without side effects.

        Returns True and charges the queue when the request fits;
        returns False (and counts the rejection) when it would overflow.
        """
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if self._depth + rows > self.max_queue:
            self.rejected += 1
            return False
        self._depth += rows
        self.admitted += 1
        return True

    def release(self, rows: int) -> None:
        """Return ``rows`` to the budget once their response is settled."""
        if rows < 0 or rows > self._depth:
            raise ValueError(
                f"cannot release {rows} rows from a depth of {self._depth}"
            )
        self._depth -= rows

    def retry_after(self, drain_rate: float) -> int:
        """Whole seconds a refused client should wait before retrying.

        ``drain_rate`` is the plane's observed throughput in rows per
        second; the estimate is the time to drain the current backlog,
        rounded up, floored at one second (the coarsest honest answer
        when the plane is cold and no rate has been observed yet).
        """
        if drain_rate <= 0 or self._depth == 0:
            return 1
        return max(1, math.ceil(self._depth / drain_rate))
