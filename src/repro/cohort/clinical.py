"""Clinical visits: deficit assessments at months 0, 9 and 18.

At every scheduled visit a healthcare worker assesses the 37 deficit
variables (27 blood, 3 body composition, 7 HIV/PRO — the catalogue in
:mod:`repro.frailty.deficits`).  Deficit expression is driven by the
patient's latent health at the visit month, observed through clinician
measurement noise, so the resulting Frailty Index is an *independent*
clinical view of the same latent state the PRO/wearable streams observe —
which is exactly why appending FI to the feature vector helps both the
DD and KD models in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.cohort.config import CohortConfig
from repro.cohort.patients import PatientLatent
from repro.frailty.deficits import DEFICIT_CATALOGUE
from repro.synth import SeedSequenceFactory

__all__ = ["generate_visit_deficits"]

#: SD of the clinician's effective measurement noise on latent health.
_ASSESSMENT_NOISE = 0.04


def generate_visit_deficits(
    cfg: CohortConfig,
    patient: PatientLatent,
    seeds: SeedSequenceFactory,
) -> dict[str, np.ndarray]:
    """Deficit values for every visit month of one patient.

    Returns ``{"visit_month": int64[v]} | {deficit_name: float64[v]}``
    where ``v = len(cfg.visit_months)``.
    """
    rng = seeds.child(patient.patient_id).generator("clinical")
    visit_months = np.asarray(cfg.visit_months, dtype=np.int64)
    observed_h = np.clip(
        patient.health[visit_months]
        + rng.normal(0.0, _ASSESSMENT_NOISE, size=visit_months.shape),
        0.0,
        1.0,
    )
    out: dict[str, np.ndarray] = {"visit_month": visit_months}
    for deficit in DEFICIT_CATALOGUE:
        out[deficit.name] = deficit.sample(observed_h, rng)
    return out
