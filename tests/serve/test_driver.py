"""Tests for the ``python -m repro serve`` offline driver."""

import numpy as np
import pytest

from repro.serve.driver import main as serve_main
from repro.tabular.io import read_csv, write_csv
from repro.tabular.table import Table


@pytest.fixture()
def csv_pair(tmp_path):
    """A training CSV (with target) and a visits CSV (features only)."""
    rng = np.random.default_rng(4)
    n = 90
    cols = {f"x{i}": rng.normal(size=n) for i in range(4)}
    cols["x1"][rng.random(n) < 0.2] = np.nan
    cols["sppb"] = (
        2.0 * cols["x0"] - np.nan_to_num(cols["x1"]) + rng.normal(0, 0.1, n)
    )
    table = Table(cols)
    train = tmp_path / "train.csv"
    visits = tmp_path / "visits.csv"
    write_csv(table, train)
    write_csv(table.drop(["sppb"]), visits)
    return train, visits


def _publish(tmp_path, train, name="sppb", extra=()):
    return serve_main(
        [
            "publish",
            "--registry",
            str(tmp_path / "registry"),
            "--name",
            name,
            "--train",
            str(train),
            "--target",
            "sppb",
            "--n-estimators",
            "15",
            *extra,
        ]
    )


class TestPublish:
    def test_publish_prints_reference(self, tmp_path, csv_pair, capsys):
        train, _ = csv_pair
        assert _publish(tmp_path, train) == 0
        out = capsys.readouterr().out
        assert "published sppb@" in out
        assert "trees=15" in out

    def test_missing_target_is_clean_error(self, tmp_path, csv_pair, capsys):
        _, visits = csv_pair  # has no sppb column
        assert _publish(tmp_path, visits) == 2
        assert "no target column" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert _publish(tmp_path, tmp_path / "nope.csv") == 2
        assert "error:" in capsys.readouterr().err


class TestScore:
    def test_score_end_to_end(self, tmp_path, csv_pair, capsys):
        train, visits = csv_pair
        assert _publish(tmp_path, train) == 0
        out_csv = tmp_path / "scored.csv"
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(visits),
                "--out",
                str(out_csv),
                "--explain",
                "--batch-size",
                "32",
            ]
        )
        assert rc == 0
        scored = read_csv(out_csv)
        assert "prediction" in scored
        assert scored.num_rows == read_csv(visits).num_rows
        reports = out_csv.with_suffix(".reports.txt").read_text()
        assert "# row 0" in reports and "prediction =" in reports
        assert "rows/s" in capsys.readouterr().out

    def test_predictions_match_library_path(self, tmp_path, csv_pair):
        from repro.serve import ModelRegistry

        train, visits = csv_pair
        _publish(tmp_path, train)
        out_csv = tmp_path / "scored.csv"
        serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(visits),
                "--out",
                str(out_csv),
            ]
        )
        registry = ModelRegistry(tmp_path / "registry")
        model = registry.load("sppb")
        features = registry.describe("sppb").metadata["features"]
        table = read_csv(visits)
        X = np.column_stack(
            [np.asarray(table[f], dtype=np.float64) for f in features]
        )
        assert np.array_equal(read_csv(out_csv)["prediction"], model.predict(X))

    def test_unknown_model_is_clean_error(self, tmp_path, csv_pair, capsys):
        train, visits = csv_pair
        _publish(tmp_path, train)
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "ghost",
                "--input",
                str(visits),
                "--out",
                str(tmp_path / "s.csv"),
            ]
        )
        assert rc == 2
        assert "no model named" in capsys.readouterr().err

    def test_out_directory_is_clean_error(self, tmp_path, csv_pair, capsys):
        train, visits = csv_pair
        _publish(tmp_path, train)
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(visits),
                "--out",
                str(tmp_path),  # existing directory, not a file
            ]
        )
        assert rc == 2
        assert "is a directory" in capsys.readouterr().err

    def test_missing_feature_metadata_requires_features_flag(
        self, tmp_path, csv_pair, capsys
    ):
        from repro.serve import ModelRegistry
        from repro.boosting import GBRegressor

        train, visits = csv_pair
        table = read_csv(train)
        X = np.column_stack(
            [np.asarray(table[f"x{i}"], dtype=np.float64) for i in range(4)]
        )
        model = GBRegressor(n_estimators=5, max_depth=2).fit(
            X, np.asarray(table["sppb"], dtype=np.float64)
        )
        # Published without metadata: scoring must not guess columns.
        ModelRegistry(tmp_path / "registry").publish("bare", model)
        common = [
            "score",
            "--registry",
            str(tmp_path / "registry"),
            "--name",
            "bare",
            "--input",
            str(visits),
            "--out",
            str(tmp_path / "s.csv"),
        ]
        assert serve_main(common) == 2
        assert "--features" in capsys.readouterr().err

        assert serve_main([*common, "--features", "x0,x1"]) == 2
        assert "fitted on 4 features" in capsys.readouterr().err

        assert serve_main([*common, "--features", "x0,x1,x2,x3"]) == 0
        predictions = read_csv(tmp_path / "s.csv")["prediction"]
        assert np.array_equal(predictions, model.predict(X))

    def test_bad_batch_size_is_clean_error(self, tmp_path, csv_pair, capsys):
        train, visits = csv_pair
        _publish(tmp_path, train)
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(visits),
                "--out",
                str(tmp_path / "s.csv"),
                "--batch-size",
                "0",
            ]
        )
        assert rc == 2
        assert "--batch-size" in capsys.readouterr().err


class TestVersions:
    def test_versions_marks_latest(self, tmp_path, csv_pair, capsys):
        train, _ = csv_pair
        _publish(tmp_path, train)
        _publish(tmp_path, train, extra=("--max-depth", "2"))
        capsys.readouterr()
        rc = serve_main(
            [
                "versions",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
            ]
        )
        assert rc == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        assert len(lines) == 2
        assert sum("(latest)" in line for line in lines) == 1

    def test_versions_reports_size_and_compaction(
        self, tmp_path, csv_pair, capsys
    ):
        from repro.serve import ModelRegistry

        train, _ = csv_pair
        _publish(tmp_path, train)
        capsys.readouterr()
        assert (
            serve_main(
                [
                    "versions",
                    "--registry",
                    str(tmp_path / "registry"),
                    "--name",
                    "sppb",
                ]
            )
            == 0
        )
        line = capsys.readouterr().out.splitlines()[0]
        version = ModelRegistry(tmp_path / "registry").versions("sppb")[0]
        assert f"trees={version.n_trees}" in line
        assert f"nodes={version.n_nodes}" in line
        assert f"bytes={version.size_on_disk}" in line
        assert version.n_nodes == version.compaction["nodes"]
        assert (
            f"table_rows={version.compaction['table_rows']}"
            f" compression={version.compaction['ratio']:.2f}x" in line
        )
        assert version.size_on_disk > 0

    def test_classifier_kind_publishes(self, tmp_path, capsys):
        rng = np.random.default_rng(12)
        n = 80
        cols = {"x0": rng.normal(size=n), "x1": rng.normal(size=n)}
        cols["sppb"] = (cols["x0"] > 0).astype(float)
        train = tmp_path / "train.csv"
        write_csv(Table(cols), train)
        assert _publish(tmp_path, train, extra=("--kind", "classifier")) == 0
        assert "kind=classifier" in capsys.readouterr().out


class TestChunkedStreaming:
    """The streamed scorer is byte-identical to whole-table scoring."""

    def _score(self, tmp_path, visits, out, extra=()):
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(visits),
                "--out",
                str(out),
                "--explain",
                "--batch-size",
                "16",
                *extra,
            ]
        )
        assert rc == 0

    def test_chunked_equals_whole(self, tmp_path, csv_pair):
        train, visits = csv_pair
        _publish(tmp_path, train)
        self._score(
            tmp_path, visits, tmp_path / "whole.csv",
            ("--chunk-rows", "100000"),
        )
        self._score(
            tmp_path, visits, tmp_path / "chunked.csv", ("--chunk-rows", "7")
        )
        assert (tmp_path / "chunked.csv").read_bytes() == (
            tmp_path / "whole.csv"
        ).read_bytes()
        assert (tmp_path / "chunked.reports.txt").read_bytes() == (
            tmp_path / "whole.reports.txt"
        ).read_bytes()

    def test_multiworker_equals_serial(self, tmp_path, csv_pair, capsys):
        train, visits = csv_pair
        _publish(tmp_path, train)
        self._score(tmp_path, visits, tmp_path / "serial.csv")
        self._score(
            tmp_path, visits, tmp_path / "jobs.csv",
            ("--jobs", "2", "--chunk-rows", "13"),
        )
        assert (tmp_path / "jobs.csv").read_bytes() == (
            tmp_path / "serial.csv"
        ).read_bytes()
        assert (tmp_path / "jobs.reports.txt").read_bytes() == (
            tmp_path / "serial.reports.txt"
        ).read_bytes()
        assert "2 workers" in capsys.readouterr().out

    def test_header_only_input(self, tmp_path, csv_pair):
        train, _ = csv_pair
        _publish(tmp_path, train)
        empty = tmp_path / "empty.csv"
        empty.write_text("x0,x1,x2,x3\n")
        out = tmp_path / "scored.csv"
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(empty),
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        scored = read_csv(out)
        assert scored.num_rows == 0
        assert "prediction" in scored

    def test_bad_chunk_rows_is_clean_error(self, tmp_path, csv_pair, capsys):
        train, visits = csv_pair
        _publish(tmp_path, train)
        rc = serve_main(
            [
                "score",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--input",
                str(visits),
                "--out",
                str(tmp_path / "s.csv"),
                "--chunk-rows",
                "0",
            ]
        )
        assert rc == 2
        assert "--chunk-rows" in capsys.readouterr().err


class TestStart:
    def test_start_help_parses(self, capsys):
        from repro.serve.driver import build_serve_parser

        with pytest.raises(SystemExit) as excinfo:
            build_serve_parser().parse_args(["start", "--help"])
        assert excinfo.value.code == 0

    def test_start_serves_then_drains(self, tmp_path, csv_pair, capsys):
        train, _visits = csv_pair
        _publish(tmp_path, train)
        rc = serve_main(
            [
                "start",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "sppb",
                "--port",
                "0",
                "--poll-interval",
                "0",
                "--for-seconds",
                "0.2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving sppb@" in out
        assert "drained and stopped" in out

    def test_start_unknown_model_is_clean_error(self, tmp_path, capsys):
        (tmp_path / "registry").mkdir()
        rc = serve_main(
            [
                "start",
                "--registry",
                str(tmp_path / "registry"),
                "--name",
                "nope",
                "--for-seconds",
                "0.1",
            ]
        )
        assert rc == 2
        assert "no model named" in capsys.readouterr().err
