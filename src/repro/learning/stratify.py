"""Per-clinic model stratification (paper Table 1).

"To account for possible differences in data collection protocols
between the clinics, we also created one separate model for each."
The small Hong Kong cohort (33 patients) is expected to produce unstable
metrics — the anomalies the paper remarks on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.learning.framework import EvaluationResult, run_protocol
from repro.pipeline.samples import SampleSet

__all__ = ["per_clinic_results"]


def per_clinic_results(
    samples: SampleSet,
    clinics: list[str] | None = None,
    model_factory: Callable[[SampleSet], object] | None = None,
    n_folds: int = 5,
    seed: int = 0,
) -> dict[str, EvaluationResult]:
    """Run the Fig. 3 protocol separately on each clinic's samples.

    Parameters
    ----------
    clinics:
        Clinic names to evaluate; defaults to every clinic present in
        the sample set, sorted by size (largest first).

    Notes
    -----
    K-fold counts are reduced automatically when a clinic is too small
    for the requested ``n_folds`` (Hong Kong in the paper's setting) —
    but never below 2.
    """
    if clinics is None:
        names, counts = np.unique(samples.clinics.astype(str), return_counts=True)
        clinics = [str(n) for n in names[np.argsort(-counts)]]

    results: dict[str, EvaluationResult] = {}
    for clinic in clinics:
        subset = samples.filter_clinic(clinic)
        folds = n_folds
        # Stratified folds need >= n_folds members of each class.
        if subset.outcome == "falls":
            _, class_counts = np.unique(subset.y, return_counts=True)
            folds = int(min(folds, class_counts.min()))
        folds = max(2, min(folds, subset.n_samples // 10 or 2))
        results[clinic] = run_protocol(
            subset,
            model_factory=model_factory,
            n_folds=folds,
            seed=seed,
        )
    return results
