"""REP003 positive: created segment with no guaranteed unlink path."""

from multiprocessing import shared_memory


def leaky(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    buffer = bytes(segment.buf)  # if this raises, the segment leaks
    segment.close()
    segment.unlink()  # reached only on the happy path
    return buffer
