"""Unit tests for the shared-memory model plane (repro.serve.plane)."""

import numpy as np
import pytest

from repro.boosting import GBClassifier, GBRegressor
from repro.explain import TreeShapExplainer
from repro.serve import ModelPlane, parallel_shap


@pytest.fixture(scope="module")
def regressor():
    rng = np.random.default_rng(17)
    X = rng.normal(size=(300, 7))
    X[rng.random(X.shape) < 0.1] = np.nan
    y = 2 * np.nan_to_num(X[:, 0]) - np.nan_to_num(X[:, 3]) + rng.normal(
        0, 0.1, 300
    )
    return GBRegressor(n_estimators=18, max_depth=3).fit(X, y), X


@pytest.fixture(scope="module")
def classifier():
    rng = np.random.default_rng(18)
    X = rng.normal(size=(220, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return GBClassifier(n_estimators=10, max_depth=2).fit(X, y), X


class TestPackMaterialize:
    def test_predictions_bitwise_equal(self, regressor):
        model, X = regressor
        plane = ModelPlane.pack(model, version="v1")
        rebuilt, _ = ModelPlane.materialize(plane.manifest, plane.arrays)
        assert np.array_equal(rebuilt.predict(X), model.predict(X))
        assert np.array_equal(rebuilt.bin(X), model.bin(X))

    def test_classifier_round_trip(self, classifier):
        model, X = classifier
        plane = ModelPlane.pack(model, version="clf")
        rebuilt, explainer = ModelPlane.materialize(
            plane.manifest, plane.arrays
        )
        assert np.array_equal(rebuilt.predict(X), model.predict(X))
        assert np.array_equal(
            rebuilt.predict_proba(X), model.predict_proba(X)
        )
        assert np.array_equal(
            explainer.shap_values(X[:25]),
            TreeShapExplainer(model).shap_values(X[:25]),
        )

    def test_explainer_bitwise_equal(self, regressor):
        model, X = regressor
        plane = ModelPlane.pack(model, version="v1")
        _, explainer = ModelPlane.materialize(plane.manifest, plane.arrays)
        baseline = TreeShapExplainer(model)
        assert explainer.expected_value == baseline.expected_value
        assert np.array_equal(
            explainer.shap_values(X[:50]), baseline.shap_values(X[:50])
        )
        codes = model.bin(X[:50])
        assert np.array_equal(
            explainer.shap_values_binned(codes),
            baseline.shap_values_binned(codes),
        )

    def test_materialized_arrays_are_views(self, regressor):
        model, _ = regressor
        plane = ModelPlane.pack(model, version="v1")
        rebuilt, explainer = ModelPlane.materialize(
            plane.manifest, plane.arrays
        )
        # The shared DAG node table is mapped directly, not copied.
        assert rebuilt.compact_ is not None
        assert rebuilt.compact_.children_left is plane.arrays["dag:children_left"]
        assert rebuilt.compact_.leaf_values is plane.arrays["dag:leaf_values"]
        # Per-tree node stats are slices of the packed concatenations.
        tree = rebuilt.ensemble_.trees[0]
        assert tree.cover.base is plane.arrays["tree:cover"]
        assert tree.threshold.base is plane.arrays["tree:threshold"]
        edges = rebuilt.mapper_.bin_edges_[0]
        assert edges.base is plane.arrays["mapper:edges"]

    def test_version_defaults_to_fingerprint(self, regressor):
        model, _ = regressor
        from repro.boosting.serialize import model_to_dict
        from repro.serve import model_fingerprint

        plane = ModelPlane.pack(model)
        assert plane.version == model_fingerprint(model_to_dict(model))

    def test_manifest_is_picklable(self, regressor):
        import pickle

        model, _ = regressor
        plane = ModelPlane.pack(model, version="v1")
        assert pickle.loads(pickle.dumps(plane.manifest)) == plane.manifest


class TestPackValidation:
    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            ModelPlane.pack(GBRegressor(n_estimators=2))

    def test_missing_mapper_rejected(self, regressor):
        model, _ = regressor
        plane_doc = ModelPlane.pack(model, version="x")  # sanity
        assert plane_doc.version == "x"
        import copy

        stripped = copy.copy(model)
        stripped.mapper_ = None
        with pytest.raises(ValueError, match="BinMapper"):
            ModelPlane.pack(stripped)

    def test_missing_bin_thresholds_rejected(self, regressor):
        import copy
        import dataclasses

        model, _ = regressor
        stripped = copy.copy(model)
        stripped.ensemble_ = dataclasses.replace(
            model.ensemble_,
            trees=[
                dataclasses.replace(t, bin_threshold=None)
                for t in model.ensemble_.trees
            ],
        )
        with pytest.raises(ValueError, match="bin thresholds"):
            ModelPlane.pack(stripped)


class TestParallelShap:
    def test_serial_matches_plain_explainer(self, regressor):
        model, X = regressor
        phi, expected = parallel_shap(model, X[:60], n_jobs=1)
        baseline = TreeShapExplainer(model)
        assert np.array_equal(phi, baseline.shap_values(X[:60]))
        assert expected == baseline.expected_value

    def test_two_workers_bitwise_equal_serial(self, regressor):
        model, X = regressor
        serial, expected_serial = parallel_shap(model, X, n_jobs=1)
        fanned, expected_fanned = parallel_shap(model, X, n_jobs=2)
        assert np.array_equal(fanned, serial)
        assert expected_fanned == expected_serial

    def test_more_workers_than_rows(self, regressor):
        model, X = regressor
        serial, _ = parallel_shap(model, X[:3], n_jobs=1)
        fanned, _ = parallel_shap(model, X[:3], n_jobs=8)
        assert np.array_equal(fanned, serial)


class TestParallelShapFallback:
    def test_mapperless_model_same_result_for_any_worker_count(self, regressor):
        import copy

        model, X = regressor
        stripped = copy.copy(model)
        stripped.mapper_ = None  # e.g. a reloaded format-v1 document
        serial, e1 = parallel_shap(stripped, X[:40], n_jobs=1)
        fanned, e2 = parallel_shap(stripped, X[:40], n_jobs=3)
        assert np.array_equal(fanned, serial)
        assert e1 == e2
