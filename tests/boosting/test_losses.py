"""Unit and property tests for repro.boosting.losses.

Gradients/hessians are verified against numerical differentiation —
the strongest guarantee that the Newton steps optimise what we think
they do.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boosting import LogisticLoss, SquaredErrorLoss


def numerical_grad(loss, raw, y, eps=1e-6):
    n = len(raw)
    out = np.empty(n)
    for i in range(n):
        hi = raw.copy()
        lo = raw.copy()
        hi[i] += eps
        lo[i] -= eps
        out[i] = (loss.loss(hi, y) - loss.loss(lo, y)) * n / (2 * eps)
    return out


class TestSquaredError:
    def test_base_score_is_mean(self):
        assert SquaredErrorLoss().base_score(np.array([1.0, 3.0])) == 2.0

    def test_gradient_formula(self):
        loss = SquaredErrorLoss()
        grad, hess = loss.gradient_hessian(np.array([2.0]), np.array([5.0]))
        assert grad[0] == -3.0
        assert hess[0] == 1.0

    def test_gradient_matches_numerical(self, rng):
        loss = SquaredErrorLoss()
        raw = rng.normal(size=8)
        y = rng.normal(size=8)
        grad, _ = loss.gradient_hessian(raw, y)
        assert np.allclose(grad, numerical_grad(loss, raw, y), atol=1e-4)

    def test_loss_at_optimum_zero(self):
        y = np.array([1.0, 2.0])
        assert SquaredErrorLoss().loss(y, y) == 0.0

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            SquaredErrorLoss().base_score(np.array([]))


class TestLogistic:
    def test_base_score_is_logit_of_rate(self):
        y = np.array([1.0, 1.0, 0.0, 0.0])
        assert LogisticLoss().base_score(y) == pytest.approx(0.0)

    def test_base_score_handles_pure_classes(self):
        score = LogisticLoss().base_score(np.ones(5))
        assert np.isfinite(score) and score > 0

    def test_transform_is_sigmoid(self):
        loss = LogisticLoss()
        assert loss.transform(np.array([0.0]))[0] == pytest.approx(0.5)
        assert loss.transform(np.array([50.0]))[0] == pytest.approx(1.0)
        assert loss.transform(np.array([-50.0]))[0] == pytest.approx(0.0)

    def test_transform_numerically_stable(self):
        out = LogisticLoss().transform(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()

    def test_gradient_matches_numerical(self, rng):
        loss = LogisticLoss()
        raw = rng.normal(size=8)
        y = (rng.random(8) < 0.5).astype(np.float64)
        grad, _ = loss.gradient_hessian(raw, y)
        assert np.allclose(grad, numerical_grad(loss, raw, y), atol=1e-4)

    def test_hessian_positive(self, rng):
        loss = LogisticLoss()
        raw = rng.normal(scale=10, size=100)
        y = (rng.random(100) < 0.5).astype(np.float64)
        _, hess = loss.gradient_hessian(raw, y)
        assert (hess > 0).all()

    @given(st.floats(-30, 30))
    @settings(max_examples=50, deadline=None)
    def test_hessian_is_derivative_of_gradient(self, z):
        loss = LogisticLoss()
        y = np.array([1.0])
        eps = 1e-5
        g_hi, _ = loss.gradient_hessian(np.array([z + eps]), y)
        g_lo, _ = loss.gradient_hessian(np.array([z - eps]), y)
        _, hess = loss.gradient_hessian(np.array([z]), y)
        numerical = (g_hi[0] - g_lo[0]) / (2 * eps)
        assert hess[0] == pytest.approx(max(numerical, 1e-16), abs=1e-4)

    def test_loss_decreases_towards_correct_label(self):
        loss = LogisticLoss()
        y = np.array([1.0])
        assert loss.loss(np.array([2.0]), y) < loss.loss(np.array([0.0]), y)
