"""The ``bdist_wheel`` distutils command, pure-Python editable subset.

setuptools' ``dist_info`` command calls :meth:`bdist_wheel.egg2dist` to
convert an ``.egg-info`` directory into a ``.dist-info`` directory, and
``editable_wheel`` calls :meth:`get_tag` / :meth:`write_wheelfile`.
Building full binary wheels is out of scope (the ``run`` method builds a
purelib wheel sufficient for ``pip wheel`` on pure-Python trees).
"""

from __future__ import annotations

import os
import shutil

from setuptools import Command

from wheel import __version__
from wheel.wheelfile import WheelFile


def _safer_name(name: str) -> str:
    import re

    return re.sub(r"[^\w\d.]+", "_", name, flags=re.UNICODE)


class bdist_wheel(Command):
    description = "create a wheel distribution (offline shim)"

    user_options = [
        ("bdist-dir=", "b", "temporary directory for creating the distribution"),
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
    ]
    boolean_options = ["keep-temp"]

    def initialize_options(self):
        self.bdist_dir = None
        self.dist_dir = None
        self.keep_temp = False
        self.data_dir = None
        self.plat_name = None
        self.root_is_pure = True

    def finalize_options(self):
        if self.bdist_dir is None:
            bdist_base = self.get_finalized_command("bdist").bdist_base
            self.bdist_dir = os.path.join(bdist_base, "wheel")
        self.data_dir = self.wheel_dist_name + ".data"
        need_options = ("dist_dir",)
        self.set_undefined_options("bdist", *zip(need_options, need_options))

    @property
    def wheel_dist_name(self) -> str:
        dist = self.distribution
        return f"{_safer_name(dist.get_name())}-{dist.get_version()}"

    def get_tag(self) -> tuple[str, str, str]:
        """Pure-Python tag; the shim does not support extension modules."""
        if self.distribution.has_ext_modules():
            raise RuntimeError(
                "the offline wheel shim only supports pure-Python projects"
            )
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base: str, generator: str | None = None):
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: wheel-shim ({__version__})\n"
            f"Root-Is-Purelib: {'true' if self.root_is_pure else 'false'}\n"
            f"Tag: {'-'.join(self.get_tag())}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)

    def egg2dist(self, egginfo_path: str, distinfo_path: str):
        """Convert an .egg-info directory into a .dist-info directory."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)
        pkg_info = os.path.join(egginfo_path, "PKG-INFO")
        if not os.path.exists(pkg_info):
            raise FileNotFoundError(f"missing {pkg_info}")
        shutil.copyfile(pkg_info, os.path.join(distinfo_path, "METADATA"))
        for extra in ("entry_points.txt", "top_level.txt"):
            src = os.path.join(egginfo_path, extra)
            if os.path.exists(src):
                shutil.copyfile(src, os.path.join(distinfo_path, extra))
        self.write_wheelfile(distinfo_path)

    def run(self):
        """Build a purelib wheel (used by ``pip wheel`` / build_wheel)."""
        build = self.reinitialize_command("build", reinit_subcommands=True)
        build.build_lib = os.path.join(self.bdist_dir, "lib")
        self.run_command("build")

        dist_info = self.reinitialize_command("dist_info")
        dist_info.output_dir = build.build_lib
        dist_info.keep_egg_info = False
        dist_info.ensure_finalized()
        dist_info.run()

        os.makedirs(self.dist_dir, exist_ok=True)
        archive = os.path.join(
            self.dist_dir,
            f"{self.wheel_dist_name}-{'-'.join(self.get_tag())}.whl",
        )
        if os.path.exists(archive):
            os.unlink(archive)
        with WheelFile(archive, "w") as wf:
            wf.write_files(build.build_lib)
        if not self.keep_temp:
            shutil.rmtree(self.bdist_dir, ignore_errors=True)
        getattr(self.distribution, "dist_files", []).append(
            ("bdist_wheel", "3", archive)
        )
