"""Typed columns: the unit of storage for :class:`repro.tabular.Table`.

A :class:`Column` wraps a 1-D NumPy array together with a name and a
logical :class:`ColumnType`.  The logical type fixes the physical dtype:

========== ==================== =============================
logical     physical dtype       missing-value representation
========== ==================== =============================
FLOAT       ``float64``          ``nan``
INT         ``int64``            not representable (use FLOAT)
BOOL        ``bool``             not representable
STRING      ``object`` (str)     ``None``
========== ==================== =============================

Columns are immutable from the caller's point of view: every operation
returns a new column; the underlying buffer is only shared when it is safe
to do so.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Column", "ColumnType"]


class ColumnType(enum.Enum):
    """Logical type of a table column."""

    FLOAT = "float"
    INT = "int"
    BOOL = "bool"
    STRING = "string"

    @property
    def dtype(self) -> np.dtype:
        """Physical NumPy dtype backing this logical type."""
        return _DTYPES[self]


_DTYPES = {
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.BOOL: np.dtype(np.bool_),
    ColumnType.STRING: np.dtype(object),
}


def infer_column_type(values: Sequence) -> ColumnType:
    """Infer the narrowest logical type able to hold ``values``.

    Inference order is BOOL -> INT -> FLOAT -> STRING.  ``None`` and NaN
    promote the column to FLOAT (numeric) or STRING (otherwise).
    """
    saw_none = False
    saw_float = False
    saw_int = False
    saw_bool = False
    for v in values:
        if v is None:
            saw_none = True
        elif isinstance(v, (bool, np.bool_)):
            saw_bool = True
        elif isinstance(v, (int, np.integer)):
            saw_int = True
        elif isinstance(v, (float, np.floating)):
            saw_float = True
        else:
            return ColumnType.STRING
    if saw_float or (saw_none and (saw_int or saw_float)):
        return ColumnType.FLOAT
    if saw_int:
        return ColumnType.FLOAT if saw_none else ColumnType.INT
    if saw_bool:
        return ColumnType.BOOL
    if saw_none:
        return ColumnType.STRING
    return ColumnType.FLOAT


class Column:
    """A named, typed, immutable 1-D array.

    Parameters
    ----------
    name:
        Column name; must be a non-empty string.
    values:
        Anything convertible to a 1-D array of the column's type.
    ctype:
        Logical type.  If omitted it is inferred from ``values``.
    """

    __slots__ = ("name", "ctype", "_data")

    def __init__(self, name: str, values, ctype: ColumnType | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        if ctype is None:
            if isinstance(values, np.ndarray) and values.dtype != object:
                ctype = _ctype_from_dtype(values.dtype)
            else:
                ctype = infer_column_type(list(values))
        data = _coerce(values, ctype)
        if data.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-D, got shape {data.shape}")
        self.name = name
        self.ctype = ctype
        self._data = data
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __getitem__(self, idx):
        out = self._data[idx]
        if isinstance(idx, (int, np.integer)):
            return out
        return Column(self.name, out, self.ctype)

    def __eq__(self, other) -> bool:  # value equality, used by tests
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.ctype != other.ctype:
            return False
        if len(self) != len(other):
            return False
        if self.ctype is ColumnType.FLOAT:
            a, b = self._data, other._data
            return bool(np.all((a == b) | (np.isnan(a) & np.isnan(b))))
        return bool(np.all(self._data == other._data))

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("Column is not hashable")

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._data[:5])
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column({self.name!r}, {self.ctype.value}, [{preview}{suffix}])"

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying array."""
        return self._data

    def to_numpy(self, copy: bool = False) -> np.ndarray:
        """Return the underlying array, optionally as a private copy."""
        return self._data.copy() if copy else self._data

    def to_list(self) -> list:
        """Return the column as a plain Python list."""
        return self._data.tolist()

    def rename(self, name: str) -> "Column":
        """Return a copy of this column under a new name (shares data)."""
        clone = object.__new__(Column)
        clone.name = name
        clone.ctype = self.ctype
        clone._data = self._data
        return clone

    def cast(self, ctype: ColumnType) -> "Column":
        """Return this column converted to another logical type."""
        if ctype is self.ctype:
            return self
        return Column(self.name, self._data, ctype)

    # ------------------------------------------------------------------
    # missing-data helpers
    # ------------------------------------------------------------------
    def is_missing(self) -> np.ndarray:
        """Boolean mask of missing entries (NaN for FLOAT, None for STRING)."""
        if self.ctype is ColumnType.FLOAT:
            return np.isnan(self._data)
        if self.ctype is ColumnType.STRING:
            return np.array([v is None for v in self._data], dtype=bool)
        return np.zeros(len(self), dtype=bool)

    def count_missing(self) -> int:
        """Number of missing entries."""
        return int(self.is_missing().sum())

    def fill_missing(self, value) -> "Column":
        """Return a copy with missing entries replaced by ``value``."""
        mask = self.is_missing()
        if not mask.any():
            return self
        data = self._data.copy()
        data[mask] = value
        return Column(self.name, data, self.ctype)


def _ctype_from_dtype(dtype: np.dtype) -> ColumnType:
    """Map a NumPy dtype to the matching logical type."""
    if np.issubdtype(dtype, np.bool_):
        return ColumnType.BOOL
    if np.issubdtype(dtype, np.integer):
        return ColumnType.INT
    if np.issubdtype(dtype, np.floating):
        return ColumnType.FLOAT
    return ColumnType.STRING


def _coerce(values, ctype: ColumnType) -> np.ndarray:
    """Convert ``values`` into the physical representation for ``ctype``."""
    if ctype is ColumnType.STRING:
        if isinstance(values, np.ndarray) and values.dtype == object:
            data = values.copy()
        else:
            data = np.empty(len(values), dtype=object)
            for i, v in enumerate(values):
                data[i] = None if v is None else str(v)
        return data
    if ctype is ColumnType.FLOAT:
        arr = np.asarray(
            [np.nan if v is None else v for v in values]
            if _contains_none(values)
            else values,
            dtype=np.float64,
        )
        return arr.copy() if arr is values else arr
    arr = np.asarray(values)
    if ctype is ColumnType.INT:
        if arr.dtype == np.float64 and np.isnan(arr).any():
            raise ValueError("INT column cannot hold NaN; use FLOAT")
        if arr.dtype.kind == "f" and not np.all(arr == np.round(arr)):
            raise ValueError("INT column cannot hold fractional values")
        return arr.astype(np.int64)
    if ctype is ColumnType.BOOL:
        if arr.dtype != np.bool_ and arr.size:
            uniq = np.unique(arr[~_none_mask(arr)])
            if not set(np.asarray(uniq, dtype=object).tolist()) <= {0, 1, True, False}:
                raise ValueError("BOOL column values must be boolean or 0/1")
        return arr.astype(np.bool_)
    raise AssertionError(f"unhandled column type {ctype}")  # pragma: no cover


def _contains_none(values: Iterable) -> bool:
    if isinstance(values, np.ndarray) and values.dtype != object:
        return False
    return any(v is None for v in values)


def _none_mask(arr: np.ndarray) -> np.ndarray:
    if arr.dtype == object:
        return np.array([v is None for v in arr], dtype=bool)
    return np.zeros(arr.shape, dtype=bool)
