"""Unit tests for repro.knowledge.ici."""

import numpy as np
import pytest

from repro.knowledge import (
    CutoffRule,
    ICICalculator,
    ICISpecification,
    ThresholdScore,
    default_ici_specification,
)
from repro.tabular import Table


@pytest.fixture(scope="module")
def spec():
    return default_ici_specification()


class TestDefaultSpecification:
    def test_covers_all_domains(self, spec):
        coverage = spec.domain_coverage()
        assert all(count >= 1 for count in coverage.values())

    def test_includes_wearable_variables(self, spec):
        assert "steps" in spec.variables
        assert "sleep_hours" in spec.variables

    def test_two_items_per_domain_plus_wearables(self, spec):
        assert len(spec.rules) == 5 * 2 + 2

    def test_items_per_domain_parameter(self):
        bigger = default_ici_specification(items_per_domain=3)
        assert len(bigger.rules) == 5 * 3 + 2

    def test_invalid_items_per_domain(self):
        with pytest.raises(ValueError):
            default_ici_specification(items_per_domain=0)

    def test_rules_have_rationales(self, spec):
        assert all(rule.rationale for rule in spec.rules)


class TestSpecificationValidation:
    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ICISpecification(rules=())

    def test_duplicate_variables_rejected(self):
        rule = CutoffRule("steps", ThresholdScore(1))
        with pytest.raises(ValueError, match="duplicate"):
            ICISpecification(rules=(rule, rule))

    def test_uncovered_domain_rejected(self):
        rules = (CutoffRule("steps", ThresholdScore(1)),)
        with pytest.raises(ValueError, match="uncovered"):
            ICISpecification(rules=rules)


class TestComputation:
    def test_normalised_sum_formula(self):
        # ICI = sum(s_i) / n, per section 4 of the paper.
        rules = tuple(
            CutoffRule(v, ThresholdScore(3))
            for v in ("pro_loc_01", "pro_cog_01", "pro_psy_01", "pro_vit_01", "pro_sen_01")
        )
        spec = ICISpecification(rules=rules)
        calc = ICICalculator(spec)
        table = Table(
            {
                "pro_loc_01": [5.0],
                "pro_cog_01": [5.0],
                "pro_psy_01": [1.0],
                "pro_vit_01": [1.0],
                "pro_sen_01": [1.0],
            }
        )
        assert calc.compute(table)[0] == pytest.approx(2.0 / 5.0)

    def test_missing_values_shrink_normaliser(self):
        rules = tuple(
            CutoffRule(v, ThresholdScore(3))
            for v in ("pro_loc_01", "pro_cog_01", "pro_psy_01", "pro_vit_01", "pro_sen_01")
        )
        calc = ICICalculator(ICISpecification(rules=rules))
        table = Table(
            {
                "pro_loc_01": [5.0],
                "pro_cog_01": [np.nan],
                "pro_psy_01": [np.nan],
                "pro_vit_01": [np.nan],
                "pro_sen_01": [1.0],
            }
        )
        assert calc.compute(table)[0] == pytest.approx(1.0 / 2.0)

    def test_all_missing_gives_nan(self):
        rules = tuple(
            CutoffRule(v, ThresholdScore(3))
            for v in ("pro_loc_01", "pro_cog_01", "pro_psy_01", "pro_vit_01", "pro_sen_01")
        )
        calc = ICICalculator(ICISpecification(rules=rules))
        table = Table({v: [np.nan] for v in calc.specification.variables})
        assert np.isnan(calc.compute(table)[0])

    def test_compute_from_mapping(self, spec):
        calc = ICICalculator(spec)
        values = {v: 5.0 for v in spec.variables}
        values["steps"] = 10000.0
        values["sleep_hours"] = 8.0
        ici = calc.compute_from_mapping(values)
        assert 0.0 <= ici <= 1.0

    def test_ici_bounded_on_cohort_features(self, qol_dd_samples):
        calc = ICICalculator()
        columns = {
            rule.variable: qol_dd_samples.X[
                :, qol_dd_samples.feature_index(rule.variable)
            ]
            for rule in calc.specification.rules
        }
        ici = calc.compute(Table(columns))
        observed = ici[~np.isnan(ici)]
        assert observed.min() >= 0.0 and observed.max() <= 1.0

    def test_healthier_answers_raise_ici(self, spec):
        calc = ICICalculator(spec)
        best = {v: 1e9 for v in spec.variables}
        worst = {v: -1e9 for v in spec.variables}
        # Reversed items score healthy on LOW answers, so drive values
        # per rule direction instead of blindly maxing.
        for rule in spec.rules:
            if getattr(rule.scorer, "healthy_if_low", False):
                best[rule.variable] = 0.0
                worst[rule.variable] = 1e9
        assert calc.compute_from_mapping(best) > calc.compute_from_mapping(worst)
