"""Per-clinic model stratification (the paper's Table 1 scenario).

The MySAwH study pools three clinics with different collection
protocols; the paper asks whether stratifying models per clinic is
worthwhile and observes that the small Hong Kong sub-cohort produces
anomalous metrics.  This example trains pooled and per-clinic models
and prints the comparison.

    python examples/clinic_stratification.py [--outcome sppb] [--full]
"""

from __future__ import annotations

import argparse

from repro import build_dd_samples, generate_cohort, run_protocol
from repro.learning import per_clinic_results

from _common import demo_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outcome", default="sppb", choices=("qol", "sppb", "falls"))
    parser.add_argument("--full", action="store_true", help="paper-scale cohort")
    args = parser.parse_args()

    cohort = generate_cohort(demo_config(args.full))
    samples = build_dd_samples(cohort, args.outcome, with_fi=True)

    pooled = run_protocol(samples, n_folds=3)
    metric = "accuracy" if args.outcome == "falls" else "1-MAPE"
    print(f"pooled model ({samples.n_samples} samples): "
          f"{metric} = {100 * pooled.headline:.1f}%")

    print("per-clinic models:")
    for clinic, result in per_clinic_results(samples, n_folds=3).items():
        n = result.samples.n_samples
        print(
            f"  {clinic:10s} ({n:4d} samples): "
            f"{metric} = {100 * result.headline:.1f}%"
        )
        if args.outcome == "falls":
            report = result.test_report
            print(
                f"             minority recall = {100 * report.recall_true:.0f}% "
                "(small clinics often collapse here, cf. Table 1)"
            )

    print(
        "\nNote: the smallest clinic's metrics are unstable across seeds —"
        "\nthe effect the paper attributes to its 33-patient cohort."
    )


if __name__ == "__main__":
    main()
