"""Deterministic parallel execution of the experiment grid.

The grid's independent units — CV folds, Fig. 4 cells, per-clinic
models, ablation arms — run concurrently across a process pool with
results bitwise-identical to the serial path.  See
:mod:`repro.parallel.executor` for the execution model and
:mod:`repro.parallel.shared` for the shared-memory design-matrix
handoff.

Worker-count selection: explicit ``n_jobs`` arguments beat the
``REPRO_JOBS`` environment variable; the default is serial.

:mod:`repro.parallel.hist` extends the same machinery *inside* a
single fit: a persistent pool shards per-level histogram accumulation
across contiguous feature blocks, bitwise-identical to the serial
grower.
"""

from repro.parallel.executor import (
    ShardedPool,
    in_worker,
    parallel_map,
    resolve_jobs,
)
from repro.parallel.hist import HistogramPool
from repro.parallel.shared import pack_samples, unpack_samples

__all__ = [
    "ShardedPool",
    "HistogramPool",
    "in_worker",
    "parallel_map",
    "resolve_jobs",
    "pack_samples",
    "unpack_samples",
]
