"""Unit and property tests for repro.synth.processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import ar1_process, clipped_noise, weekly_profile


class TestAR1:
    def test_length(self, rng):
        assert len(ar1_process(rng, 10, mean=0.5, phi=0.8, sigma=0.1)) == 10

    def test_zero_sigma_converges_to_mean(self, rng):
        path = ar1_process(rng, 200, mean=0.5, phi=0.5, sigma=0.0, start=1.0)
        assert path[-1] == pytest.approx(0.5, abs=1e-9)

    def test_drift_moves_mean(self, rng):
        path = ar1_process(
            rng, 100, mean=0.5, phi=0.0, sigma=0.0, start=0.5, drift=-0.01
        )
        assert path[-1] == pytest.approx(0.5 - 0.01 * 99, abs=1e-9)

    def test_mean_reversion_statistics(self, rng):
        path = ar1_process(rng, 20000, mean=2.0, phi=0.7, sigma=0.2)
        assert np.mean(path) == pytest.approx(2.0, abs=0.05)

    def test_stationary_variance(self, rng):
        phi, sigma = 0.6, 0.3
        path = ar1_process(rng, 50000, mean=0.0, phi=phi, sigma=sigma)
        expected_var = sigma**2 / (1 - phi**2)
        assert np.var(path) == pytest.approx(expected_var, rel=0.1)

    def test_invalid_phi(self, rng):
        with pytest.raises(ValueError, match="phi"):
            ar1_process(rng, 5, mean=0.0, phi=1.0, sigma=0.1)

    def test_negative_sigma(self, rng):
        with pytest.raises(ValueError, match="sigma"):
            ar1_process(rng, 5, mean=0.0, phi=0.5, sigma=-1.0)

    def test_zero_steps(self, rng):
        with pytest.raises(ValueError, match="n_steps"):
            ar1_process(rng, 0, mean=0.0, phi=0.5, sigma=0.1)

    @given(
        phi=st.floats(0.0, 0.95),
        sigma=st.floats(0.0, 1.0),
        mean=st.floats(-5.0, 5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_output_always_finite(self, phi, sigma, mean):
        rng = np.random.default_rng(0)
        path = ar1_process(rng, 50, mean=mean, phi=phi, sigma=sigma)
        assert np.isfinite(path).all()


class TestClippedNoise:
    def test_zero_mean(self, rng):
        noise = clipped_noise(rng, 50000, sigma=1.0)
        assert abs(float(np.mean(noise))) < 0.02

    def test_clipping_bound(self, rng):
        noise = clipped_noise(rng, 10000, sigma=2.0, heavy_tail=0.3, clip=3.0)
        assert np.abs(noise).max() <= 3.0 * 2.0 + 1e-12

    def test_heavy_tail_increases_spread(self, rng):
        base = clipped_noise(np.random.default_rng(0), 20000, sigma=1.0, clip=10.0)
        heavy = clipped_noise(
            np.random.default_rng(0), 20000, sigma=1.0, heavy_tail=0.3, clip=10.0
        )
        assert np.std(heavy) > np.std(base)

    def test_invalid_heavy_tail(self, rng):
        with pytest.raises(ValueError):
            clipped_noise(rng, 10, sigma=1.0, heavy_tail=1.5)


class TestWeeklyProfile:
    def test_length_seven(self, rng):
        assert len(weekly_profile(rng)) == 7

    def test_normalised_to_mean_one(self, rng):
        assert float(np.mean(weekly_profile(rng))) == pytest.approx(1.0)

    def test_weekend_dip(self):
        profiles = np.stack(
            [weekly_profile(np.random.default_rng(i)) for i in range(200)]
        )
        weekday = profiles[:, :5].mean()
        weekend = profiles[:, 5:].mean()
        assert weekend < weekday

    def test_strictly_positive(self, rng):
        assert (weekly_profile(rng) > 0).all()
