"""Bursty missing-data processes.

Section 3 of the paper reports gap statistics for the PRO time series:
missing observations arrive in *bursts* (mean burst length ~5 consecutive
missing points, max 17; ~108 gaps per patient on average across all
series, max 284).  A two-state (observed / missing) Markov chain produces
exactly this burst structure; the transition probabilities are derived
from the target mean gap length and overall missing rate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["burst_gap_mask", "gap_lengths"]


def burst_gap_mask(
    rng: np.random.Generator,
    n_steps: int,
    missing_rate: float,
    mean_gap_length: float,
    max_gap_length: int | None = None,
) -> np.ndarray:
    """Return a boolean mask (True = missing) from a two-state Markov chain.

    Parameters
    ----------
    rng:
        Source of randomness.
    n_steps:
        Length of the series.
    missing_rate:
        Target stationary fraction of missing entries, in [0, 1).
    mean_gap_length:
        Target expected length of a missing burst (>= 1).
    max_gap_length:
        Optional hard cap; bursts are truncated at this length
        (re-entering the observed state), mirroring the paper's max
        observed gap of 17.

    Notes
    -----
    With ``p_enter`` = P(observed -> missing) and ``p_exit`` =
    P(missing -> observed): the mean burst length is ``1 / p_exit`` and
    the stationary missing probability is
    ``p_enter / (p_enter + p_exit)``; both targets pin down the chain.
    """
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1)")
    if mean_gap_length < 1.0:
        raise ValueError("mean_gap_length must be >= 1")
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    mask = np.zeros(n_steps, dtype=bool)
    if missing_rate == 0.0 or n_steps == 0:
        return mask

    p_exit = 1.0 / mean_gap_length
    p_enter = missing_rate * p_exit / (1.0 - missing_rate)
    p_enter = min(p_enter, 1.0)

    missing = rng.random() < missing_rate
    run = 0
    draws = rng.random(n_steps)
    for t in range(n_steps):
        if missing and max_gap_length is not None and run >= max_gap_length:
            missing = False  # forced recovery step: hard cap on run length
        if missing:
            mask[t] = True
            run += 1
            if draws[t] < p_exit:
                missing = False
        else:
            run = 0
            if draws[t] < p_enter:
                missing = True
    return mask


def gap_lengths(mask: np.ndarray) -> np.ndarray:
    """Lengths of the maximal runs of True in a boolean mask.

    >>> gap_lengths(np.array([0, 1, 1, 0, 1], dtype=bool)).tolist()
    [2, 1]
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return np.array([], dtype=np.int64)
    padded = np.concatenate([[False], mask, [False]])
    changes = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(changes == 1)
    ends = np.flatnonzero(changes == -1)
    return (ends - starts).astype(np.int64)
