"""ABL3 bench — Falls class-weighting sweep (extension experiment).

Expected shape: raising the positive-class weight monotonically-ish
raises minority (True) recall while precision decreases — the standard
imbalance trade-off, quantified on the paper's Falls task.
"""

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_imbalance_ablation
from repro.experiments.ablation_imbalance import render_imbalance_ablation


def test_falls_class_weighting(benchmark, ctx, results_dir):
    runner = timed(run_imbalance_ablation)
    sweep = benchmark.pedantic(runner, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "ablation_imbalance", render_imbalance_ablation(sweep))
    record_bench(
        results_dir,
        "ablation_imbalance",
        min(runner.times),
        config={"seed": ctx.seed, "pos_weights": sorted(sweep)},
    )

    weights = sorted(sweep)
    # Highest weight recalls more fallers than the unweighted model.
    assert sweep[weights[-1]]["recall_true"] > sweep[1.0]["recall_true"]
    # The trade-off: precision at the highest weight does not exceed the
    # unweighted precision (allowing a small noise margin).
    assert (
        sweep[weights[-1]]["precision_true"]
        <= sweep[1.0]["precision_true"] + 0.05
    )
