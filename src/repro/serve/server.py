"""Asyncio HTTP front end over the multi-worker scoring plane.

:class:`ScoringServer` puts a network edge on the serving stack built in
PRs 3/5/7: a hand-rolled HTTP/1.1 server (asyncio streams, keep-alive)
that accepts ``POST /predict`` / ``POST /explain`` JSON requests,
coalesces them into micro-batches on a **background flush timer**
(replacing the router's flush-on-submit discipline), and executes each
batch on the existing :class:`~repro.serve.router.ScoringRouter` /
:class:`~repro.parallel.executor.ShardedPool` plane.

Determinism contract
--------------------
Every response is **bitwise identical** to the in-process
:class:`~repro.serve.service.ScoringService` on the same request
stream, at every worker count, cache-cold and cache-hot: the engines
are row-deterministic, the caches are exact, JSON serialises floats by
shortest round-trip repr (``json.loads(json.dumps(x)) == x`` exactly),
and a batch is always a run of *whole* posts — one response is never
assembled from two model versions.  NaN feature values encode as JSON
``null`` in both directions (JSON has no NaN literal).

Concurrency model
-----------------
Everything except scoring runs on the event-loop thread.  The pool is
single-owner (see :class:`~repro.parallel.executor.ShardedPool`), so all
router calls are funnelled through a one-thread executor (``_scorer``);
a second one-thread executor (``_builder``) packs replacement planes in
the background so a hot swap never stalls traffic.  The flow:

* **Handlers** parse a POST, ask the :class:`~repro.serve.admission
  .AdmissionController` for queue budget (refusing with ``429`` +
  ``Retry-After`` when the plane is saturated), enqueue the post with a
  future, and await it.
* **The flusher task** wakes on arrivals, waits ``flush_interval``
  seconds for co-travellers, then pops a run of whole posts (at most
  ``max_batch`` rows), scores it via the router on the scorer thread,
  and resolves each post's future.
* **The watcher task** polls the :class:`~repro.serve.registry
  .ModelRegistry` ``LATEST`` pointer; on a new version it builds a
  fresh router (new shm plane + workers) on the builder thread and
  stages it.  The flusher applies staged swaps **between batches**:
  zero requests are dropped, no response mixes versions, and the old
  plane is closed only after its last batch.
* **Shutdown** (:meth:`stop`, idempotent) stops accepting, lets the
  flusher drain every admitted post, waits for the responses to flush
  to the sockets, then tears down routers and executors — the
  SIGTERM-on-a-busy-server test asserts the zero-drop contract.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.serve.admission import AdmissionController
from repro.serve.registry import ModelRegistry
from repro.serve.router import ScoringRouter
from repro.serve.service import ScoreRequest, ScoreResult
from repro.serve.stats import LatencyWindow, ServerStats, metrics_payload

__all__ = ["ScoringServer", "ServerThread", "result_to_wire"]

_MAX_HEADER_BYTES = 65536


def _null_safe(value: float | None) -> float | None:
    """A float JSON can carry: NaN becomes None (the wire's ``null``)."""
    if value is None:
        return None
    value = float(value)
    return None if math.isnan(value) else value


def result_to_wire(result: ScoreResult) -> dict:
    """One :class:`ScoreResult` as its JSON wire document.

    Floats pass through untouched (Python's shortest-repr JSON encoding
    round-trips every finite float64 bitwise); only NaN feature values
    in the explanation — and a NaN probability, defensively — map to
    ``null``.  ``docs/formats.md`` is the normative schema reference.
    """
    explanation = None
    if result.explanation is not None:
        report = result.explanation
        explanation = {
            "prediction": float(report.prediction),
            "expected_value": float(report.expected_value),
            "features": list(report.features),
            "contributions": [float(c) for c in report.contributions],
            "values": [_null_safe(v) for v in report.values],
        }
    return {
        "raw_score": float(result.raw_score),
        "prediction": float(result.prediction),
        "probability": _null_safe(result.probability),
        "cached": bool(result.cached),
        "explanation": explanation,
    }


def _parse_rows(document: object, n_features: int) -> np.ndarray:
    """Decode a scoring POST body into an ``(n, n_features)`` matrix.

    Accepts ``{"rows": [[...], ...]}`` (a batch) or ``{"row": [...]}``
    (sugar for a single row).  JSON ``null`` means *missing* and maps
    to NaN, mirroring the response encoding.  Raises ``ValueError``
    with a client-presentable message on any malformed shape.
    """
    if not isinstance(document, dict):
        raise ValueError("request body must be a JSON object")
    if ("row" in document) == ("rows" in document):
        raise ValueError('request must carry exactly one of "row"/"rows"')
    rows = [document["row"]] if "row" in document else document["rows"]
    if not isinstance(rows, list):
        raise ValueError('"rows" must be a list of rows')
    out = np.empty((len(rows), n_features), dtype=np.float64)
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != n_features:
            raise ValueError(
                f"row {i}: expected a list of {n_features} numbers"
            )
        for j, value in enumerate(row):
            if value is None:
                out[i, j] = np.nan
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                out[i, j] = value
            else:
                raise ValueError(
                    f"row {i}, column {j}: expected a number or null"
                )
    return out


@dataclass
class _Post:
    """One admitted scoring POST awaiting its micro-batch."""

    rows: np.ndarray
    explain: bool
    future: asyncio.Future


class _StagedSlot:
    """Thread-safe holder of the staged hot-swap router.

    Staging happens on the builder thread, the swap on the event loop,
    and the shutdown sweep must never race either — the lock makes
    stage/pop/seal atomic, and a sealed slot hands a late-built router
    straight back for closing instead of dropping it (the staged-leak
    regression: a router is never in flight outside this slot).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: tuple[str, ScoringRouter] | None = None
        self._sealed = False

    def tag(self) -> str | None:
        """Tag of the currently staged router, if any."""
        with self._lock:
            return None if self._value is None else self._value[0]

    def stage(self, tag: str, router: ScoringRouter) -> ScoringRouter | None:
        """Stage ``router``; return whatever the caller must close.

        Normally that is the previously staged router it displaced;
        on a sealed slot (shutdown began) it is ``router`` itself,
        which must be closed before it ever serves.
        """
        with self._lock:
            if self._sealed:
                return router
            previous = self._value
            self._value = (tag, router)
        return None if previous is None else previous[1]

    def pop(self) -> tuple[str, ScoringRouter] | None:
        """Take the staged (tag, router) pair, leaving the slot empty."""
        with self._lock:
            value = self._value
            self._value = None
        return value

    def seal(self) -> tuple[str, ScoringRouter] | None:
        """Refuse all future staging; return what was staged, once."""
        with self._lock:
            self._sealed = True
            value = self._value
            self._value = None
        return value


class ScoringServer:
    """Serve one registry model over HTTP (see module docstring).

    Parameters
    ----------
    registry:
        A :class:`ModelRegistry` (or its root directory).
    name:
        Registry model name to serve.
    tag:
        Pin one version.  Default None follows the registry's
        ``LATEST`` pointer and hot-swaps when it moves.
    host / port:
        Listen address; port 0 binds an ephemeral port (read
        :attr:`port` after :meth:`start`).
    jobs:
        Scoring workers, the router/executor convention: argument over
        ``REPRO_JOBS`` over serial.  Responses are bitwise-identical
        for every value.
    max_batch:
        Micro-batch row bound.  Also the largest single POST (bigger
        posts get a 413 — they could not be answered by one version
        atomically).
    flush_interval:
        Seconds the background flush timer waits for co-travelling
        posts before executing a non-full batch.
    max_queue:
        Admission bound in rows; beyond it posts get 429 +
        ``Retry-After``.
    poll_interval:
        Seconds between registry ``LATEST`` polls (0 disables hot
        swapping even without a pinned tag).
    cache_size / top_k:
        Forwarded to the router (per-shard LRU rows; report size).
    task_deadline:
        Per-task stuck-worker deadline in seconds, forwarded to every
        router this server builds (argument over
        ``REPRO_TASK_DEADLINE`` over no deadline).  A worker that
        holds a batch past the deadline is killed, its rows are
        recomputed in-process (bitwise identically), and the
        supervisor respawns the slot.
    latency_window:
        Ring-buffer capacity behind the ``/metrics`` percentiles.
    clock:
        Injectable monotonic clock (tests pin latency accounting).
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        name: str,
        *,
        tag: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int | None = None,
        max_batch: int = 64,
        flush_interval: float = 0.002,
        max_queue: int = 256,
        poll_interval: float = 2.0,
        cache_size: int = 4096,
        top_k: int = 5,
        task_deadline: float | None = None,
        latency_window: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if flush_interval < 0:
            raise ValueError(
                f"flush_interval must be >= 0, got {flush_interval}"
            )
        if poll_interval < 0:
            raise ValueError(
                f"poll_interval must be >= 0, got {poll_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._registry = (
            registry
            if isinstance(registry, ModelRegistry)
            else ModelRegistry(registry)
        )
        self._name = name
        self._pinned_tag = tag
        self._host = host
        self._requested_port = port
        self._jobs = jobs
        self.max_batch = max_batch
        self.flush_interval = flush_interval
        self.poll_interval = poll_interval
        self._cache_size = cache_size
        self._top_k = top_k
        self._task_deadline = task_deadline
        self._clock = clock
        self._admission = AdmissionController(max_queue)
        self._latency = LatencyWindow(latency_window)
        self._stats = ServerStats()
        self._queue: deque[_Post] = deque()
        self._queued_rows = 0
        self._router: ScoringRouter | None = None
        self._tag: str | None = None
        self._staged = _StagedSlot()
        #: Recovery accounting: counters of routers already closed
        #: (swapped out or stopped) so /metrics is monotone across
        #: hot swaps.
        self._respawned_base = 0
        self._deadline_base = 0
        self._half_published = 0
        self._quarantine_seen: set[str] = set()
        self._stopping = False
        self._stopped = False
        self._started_at = 0.0
        self._inflight = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._flusher: asyncio.Task | None = None
        self._watcher: asyncio.Task | None = None
        self._wakeup: asyncio.Event | None = None
        self._flush_now: asyncio.Event | None = None
        self._scorer: ThreadPoolExecutor | None = None
        self._builder: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self) -> None:
        """Pack the plane, bind the socket, start the background tasks."""
        if self._router is not None or self._stopped:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._flush_now = asyncio.Event()
        self._scorer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-scorer"
        )
        self._builder = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-builder"
        )
        tag = await self._loop.run_in_executor(
            self._builder, self._registry.resolve, self._name,
            self._pinned_tag,
        )
        self._router = await self._loop.run_in_executor(
            self._builder, self._build_router, tag
        )
        self._tag = tag
        self._started_at = self._clock()
        self._server = await asyncio.start_server(
            self._handle, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._flusher = self._loop.create_task(self._flush_loop())
        if self._pinned_tag is None and self.poll_interval > 0:
            self._watcher = self._loop.create_task(self._watch_loop())

    async def stop(self) -> None:
        """Drain and tear down; idempotent; drops zero admitted posts."""
        if self._stopped:
            return
        self._stopping = True
        if self._loop is None:  # never started: nothing to drain
            self._stopped = True
            return
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._watcher is not None:
            self._watcher.cancel()
            await asyncio.gather(self._watcher, return_exceptions=True)
            self._watcher = None
        if self._wakeup is not None:
            self._wakeup.set()
        if self._flush_now is not None:
            self._flush_now.set()  # cut any co-traveller window short
        if self._flusher is not None:
            await self._flusher  # drains the queue, then exits
            self._flusher = None
        # Admitted posts are all answered now; wait for the handlers to
        # flush those responses onto their sockets before tearing down.
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        assert self._loop is not None
        # Quiesce the builder *before* sweeping what's staged: an
        # in-flight background build finishes inside _build_and_stage,
        # which stages its router (or, on a sealed slot, closes it
        # right there) — after this shutdown no router exists outside
        # the slot, so the sweep below cannot leak a packed plane.
        if self._builder is not None:
            self._builder.shutdown(wait=True)
        staged = self._staged.seal()
        if staged is not None:
            _tag, staged_router = staged
            await self._loop.run_in_executor(
                self._scorer, staged_router.close
            )
        if self._router is not None:
            self._respawned_base += self._router.workers_respawned
            self._deadline_base += self._router.deadline_kills
            await self._loop.run_in_executor(
                self._scorer, self._router.close
            )
        if self._scorer is not None:
            self._scorer.shutdown(wait=True)
        self._stopped = True

    def _build_router(self, tag: str) -> ScoringRouter:
        return ScoringRouter.from_registry(
            self._registry,
            self._name,
            tag,
            n_jobs=self._jobs,
            max_batch=self.max_batch,
            cache_size=self._cache_size,
            top_k=self._top_k,
            task_deadline=self._task_deadline,
        )

    # ------------------------------------------------------------------
    # Introspection.

    @property
    def model_ref(self) -> str:
        """The ``name@tag`` currently served."""
        return f"{self._name}@{self._tag}"

    @property
    def workers(self) -> int:
        """Scoring worker count of the live router."""
        return 1 if self._router is None else self._router.workers

    @property
    def stats(self) -> ServerStats:
        """Lifetime server counters."""
        return self._stats

    @property
    def workers_respawned(self) -> int:
        """Lifetime worker respawns across every router this server ran."""
        live = 0 if self._router is None else self._router.workers_respawned
        return self._respawned_base + live

    @property
    def deadline_kills(self) -> int:
        """Lifetime stuck-worker deadline kills across every router."""
        live = 0 if self._router is None else self._router.deadline_kills
        return self._deadline_base + live

    @property
    def half_published(self) -> int:
        """Distinct quarantined (torn-publish) version dirs seen so far."""
        return self._half_published

    def metrics(self) -> dict:
        """The ``GET /metrics`` document (see ``docs/formats.md``)."""
        assert self._router is not None
        uptime = self._clock() - self._started_at
        cache = self._router.cache_stats
        return metrics_payload(
            seconds=uptime,
            config={
                "jobs": self._router.workers,
                "max_batch": self.max_batch,
                "flush_interval": self.flush_interval,
                "max_queue": self._admission.max_queue,
                "poll_interval": self.poll_interval,
            },
            latency_ms=self._latency.percentiles(),
            throughput_rps=self._stats.throughput_rps(uptime),
            queue_depth=len(self._queue),
            queue_rows=self._queued_rows,
            max_queue=self._admission.max_queue,
            rejected=self._admission.rejected,
            stats=self._stats,
            shard_rows=self._router.stats.shard_rows,
            workers=self._router.workers,
            workers_alive=self._router.workers_alive,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_hit_rate=cache.hit_rate,
            version=self.model_ref,
            workers_respawned=self.workers_respawned,
            deadline_kills=self.deadline_kills,
            half_published=self._half_published,
        )

    def health(self) -> dict:
        """The ``GET /healthz`` document: readiness + liveness.

        Always answered with HTTP 200 — a degraded plane keeps serving
        (bitwise identically, via in-process fallback while the
        supervisor respawns workers), so orchestrators key on the
        ``status``/``ready`` fields rather than the status code.
        ``live`` is true by construction: a wedged event loop cannot
        answer at all.
        """
        workers = self.workers
        alive = (
            workers if self._router is None else self._router.workers_alive
        )
        if self._stopping:
            status = "stopping"
        elif alive < workers:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "ready": not self._stopping,
            "live": True,
            "version": self.model_ref,
            "workers": workers,
            "workers_alive": alive,
        }

    # ------------------------------------------------------------------
    # Micro-batch formation (the background flush timer).

    async def _flush_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            if not self._queue:
                if self._stopping:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(
                        self._wakeup.wait(), timeout=0.05
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    await self._apply_staged_swap()
                continue
            if (
                self.flush_interval > 0
                and self._queued_rows < self.max_batch
                and not self._stopping
            ):
                # The flush timer: give co-travelling posts a window to
                # join before executing a non-full batch.  The window is
                # cut short when the queue fills a whole batch or the
                # server starts draining for shutdown.
                assert self._flush_now is not None
                self._flush_now.clear()
                try:
                    await asyncio.wait_for(
                        self._flush_now.wait(), timeout=self.flush_interval
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    pass
            await self._apply_staged_swap()
            batch: list[_Post] = []
            batch_rows = 0
            while self._queue:
                next_rows = self._queue[0].rows.shape[0]
                if batch and batch_rows + next_rows > self.max_batch:
                    break
                post = self._queue.popleft()
                batch.append(post)
                batch_rows += next_rows
            self._queued_rows -= batch_rows
            if batch:
                await self._execute(batch)

    async def _execute(self, batch: list[_Post]) -> None:
        """Score a run of whole posts as one micro-batch, resolve futures."""
        assert self._router is not None and self._loop is not None
        requests = [
            ScoreRequest(row=post.rows[i], explain=post.explain)
            for post in batch
            for i in range(post.rows.shape[0])
        ]
        version = self.model_ref
        try:
            results = await self._loop.run_in_executor(
                self._scorer, self._router.score_batch, requests
            )
        except Exception as exc:
            self._stats.errors += len(batch)
            for post in batch:
                if not post.future.done():
                    post.future.set_exception(
                        RuntimeError(f"scoring failed: {exc}")
                    )
            return
        self._stats.micro_batches += 1
        offset = 0
        for post in batch:
            n = post.rows.shape[0]
            if not post.future.done():
                post.future.set_result((results[offset : offset + n], version))
            offset += n

    # ------------------------------------------------------------------
    # Hot swap.

    async def _watch_loop(self) -> None:
        assert self._loop is not None
        while not self._stopping:
            await asyncio.sleep(self.poll_interval)
            if self._stopping:
                break
            try:
                latest = await self._loop.run_in_executor(
                    self._builder, self._poll_registry
                )
            except (OSError, KeyError):
                continue  # transient registry trouble: keep serving
            if latest == self._tag or latest == self._staged.tag():
                continue
            try:
                await self._loop.run_in_executor(
                    self._builder, self._build_and_stage, latest
                )
            except (OSError, KeyError, ValueError):
                continue  # half-published version: retry next poll
            self._wakeup.set()  # an idle flusher applies it promptly

    def _poll_registry(self) -> str:
        """Resolve ``LATEST`` and account torn publishes (builder thread).

        Each poll counts version dirs that are newly quarantined (a
        crash between the model and meta writes) into the
        ``half_published`` recovery counter; ``resolve`` itself falls
        back past torn dirs, so the watcher keeps serving the newest
        complete version throughout.
        """
        for tag, _reason in self._registry.quarantined(self._name):
            if tag not in self._quarantine_seen:
                self._quarantine_seen.add(tag)
                self._half_published += 1
        return self._registry.resolve(self._name, None)

    def _build_and_stage(self, tag: str) -> None:
        """Pack a replacement plane and stage it (builder thread).

        Building and staging happen on the same thread: the new router
        is never in flight between threads, so a shutdown racing the
        watcher cannot drop it — either it lands in ``_staged`` (and
        the stop sweep closes it) or, when the drain already began, it
        is closed right here before its first batch.
        """
        router = self._build_router(tag)
        stale = self._staged.stage(tag, router)
        if stale is not None:
            stale.close()

    async def _apply_staged_swap(self) -> None:
        """Switch to a staged router between batches (flusher only)."""
        staged = self._staged.pop()
        if staged is None:
            return
        assert self._loop is not None
        tag, router = staged
        old = self._router
        self._router, self._tag = router, tag
        self._stats.swaps += 1
        if old is not None:
            self._respawned_base += old.workers_respawned
            self._deadline_base += old.deadline_kills
            # Close on the scorer thread, after the old plane's last
            # batch — scatter and close never overlap.
            await self._loop.run_in_executor(self._scorer, old.close)

    # ------------------------------------------------------------------
    # HTTP plumbing.

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._respond(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between keep-alive requests
        except asyncio.LimitOverrunError:
            return None  # unreasonable header block: drop the connection
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ConnectionError("malformed request line")
        method, target, _http_version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _sep, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_HEADER_BYTES * 256:
            raise ConnectionError("unreasonable content length")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _respond(self, request, writer: asyncio.StreamWriter) -> bool:
        method, target, headers, body = request
        path = target.split("?", 1)[0]
        keep_alive = headers.get("connection", "").lower() != "close"
        extra_headers: dict[str, str] = {}
        try:
            if path == "/healthz":
                if method != "GET":
                    status, payload = 405, {"error": "method not allowed"}
                else:
                    status, payload = 200, self.health()
            elif path == "/metrics":
                if method != "GET":
                    status, payload = 405, {"error": "method not allowed"}
                else:
                    status, payload = 200, self.metrics()
            elif path in ("/predict", "/explain"):
                if method != "POST":
                    status, payload = 405, {"error": "method not allowed"}
                else:
                    status, payload, extra_headers = await self._score_post(
                        path, body
                    )
            else:
                status, payload = 404, {"error": f"no such endpoint {path}"}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._stats.errors += 1
            status, payload = 500, {"error": f"internal error: {exc}"}
        await self._write_response(
            writer, status, payload, keep_alive, extra_headers
        )
        return keep_alive

    async def _score_post(self, path: str, body: bytes):
        if self._stopping:
            return 503, {"error": "server is shutting down"}, {}
        assert self._router is not None and self._loop is not None
        try:
            document = json.loads(body.decode("utf-8"))
            rows = _parse_rows(document, self._router.n_features)
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": str(exc)}, {}
        n = rows.shape[0]
        if n == 0:
            return 200, {"version": self.model_ref, "results": []}, {}
        if n > self.max_batch:
            self._stats.oversized += 1
            return (
                413,
                {
                    "error": (
                        f"at most {self.max_batch} rows per request "
                        "(one atomic micro-batch); split the post"
                    )
                },
                {},
            )
        if not self._admission.try_admit(n):
            retry = self._admission.retry_after(
                self._router.stats.rows_per_second
            )
            return (
                429,
                {"error": "scoring queue is full", "retry_after": retry},
                {"Retry-After": str(retry)},
            )
        self._inflight += 1
        t0 = self._clock()
        future: asyncio.Future = self._loop.create_future()
        self._queue.append(
            _Post(rows=rows, explain=(path == "/explain"), future=future)
        )
        self._queued_rows += n
        assert self._wakeup is not None and self._flush_now is not None
        self._wakeup.set()
        if self._queued_rows >= self.max_batch:
            self._flush_now.set()  # a full batch flushes immediately
        try:
            results, version = await future
        except Exception as exc:
            return 500, {"error": str(exc)}, {}
        finally:
            self._admission.release(n)
            self._inflight -= 1
        self._latency.observe(self._clock() - t0)
        self._stats.posts += 1
        self._stats.rows += n
        return (
            200,
            {
                "version": version,
                "results": [result_to_wire(r) for r in results],
            },
            {},
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        extra_headers: dict[str, str],
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            413: "Payload Too Large",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }
        body = json.dumps(payload).encode("utf-8")
        head_lines = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for key, value in sorted(extra_headers.items()):
            head_lines.append(f"{key}: {value}")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client hung up before reading its response


class ServerThread:
    """Run a :class:`ScoringServer` on a private event-loop thread.

    The harness tests and benches use: start the loop in a daemon
    thread, run :meth:`ScoringServer.start` on it, expose the bound
    port, and on exit run :meth:`ScoringServer.stop` (the zero-drop
    drain) before joining the thread.  Usable as a context manager::

        with ServerThread(ScoringServer(registry, "sppb")) as handle:
            requests.post(f"http://127.0.0.1:{handle.port}/predict", ...)
    """

    def __init__(self, server: ScoringServer, *, startup_timeout: float = 120.0):
        self.server = server
        self._startup_timeout = startup_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=self._startup_timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface startup failures to start()
            self._error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        loop.run_forever()
        loop.close()

    def stop(self) -> None:
        if self._loop is None or self._error is not None:
            return
        if self._thread is not None and self._thread.is_alive():
            done = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            done.result(timeout=self._startup_timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=self._startup_timeout)
