"""Quality-assurance statistics (paper section 3, "Quality Assurance").

The paper characterises missingness before choosing the interpolation
bound: gap sizes (mean ~5 consecutive missing observations, max 17),
gaps per patient (mean ~108 across all series, max 284), and the
retained sample count after imputation (2,250 of a possible 4,176).
``gap_report`` reproduces those statistics for a synthetic cohort and
``retention_sweep`` reruns sample building across interpolation bounds —
the experiment behind the paper's "more or less aggressive
interpolation" model-selection step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cohort.dataset import CohortDataset
from repro.cohort.schema import pro_item_names
from repro.pipeline.samples import build_dd_samples
from repro.synth import gap_lengths

__all__ = ["GapReport", "gap_report", "retention_sweep"]


@dataclass(frozen=True)
class GapReport:
    """Cohort-level missingness statistics.

    Attributes
    ----------
    mean_gap_length / max_gap_length:
        Over all maximal missing runs in all (patient, item) series.
    mean_gaps_per_patient / max_gaps_per_patient:
        Number of gaps (any size) per patient, summed over their 56
        item series.
    missing_fraction:
        Overall fraction of missing PRO cells.
    n_patients:
        Number of patients considered.
    """

    mean_gap_length: float
    max_gap_length: int
    mean_gaps_per_patient: float
    max_gaps_per_patient: int
    missing_fraction: float
    n_patients: int

    def render(self) -> str:
        """Plain-text summary (used by the QA bench)."""
        return (
            f"gaps: mean length {self.mean_gap_length:.2f} "
            f"(max {self.max_gap_length}); per patient mean "
            f"{self.mean_gaps_per_patient:.1f} (max {self.max_gaps_per_patient}); "
            f"missing {100 * self.missing_fraction:.1f}% of PRO cells"
        )


def gap_report(cohort: CohortDataset) -> GapReport:
    """Compute the paper's QA statistics for a cohort."""
    item_names = pro_item_names()
    pids = cohort.pro["patient_id"]
    months = cohort.pro["month"]
    matrix = np.column_stack([cohort.pro[name] for name in item_names])

    by_patient: dict[str, list[int]] = {}
    for i in range(cohort.pro.num_rows):
        by_patient.setdefault(pids[i], []).append(i)

    all_lengths: list[np.ndarray] = []
    gaps_per_patient: list[int] = []
    total_missing = 0
    total_cells = 0
    for pid, idx in by_patient.items():
        idx = np.asarray(idx, dtype=np.int64)
        order = np.argsort(months[idx], kind="stable")
        block = matrix[idx[order]]
        n_gaps = 0
        for j in range(block.shape[1]):
            lengths = gap_lengths(np.isnan(block[:, j]))
            if lengths.size:
                all_lengths.append(lengths)
                n_gaps += len(lengths)
        gaps_per_patient.append(n_gaps)
        total_missing += int(np.isnan(block).sum())
        total_cells += block.size

    lengths = (
        np.concatenate(all_lengths) if all_lengths else np.array([], dtype=np.int64)
    )
    return GapReport(
        mean_gap_length=float(lengths.mean()) if lengths.size else 0.0,
        max_gap_length=int(lengths.max()) if lengths.size else 0,
        mean_gaps_per_patient=float(np.mean(gaps_per_patient)),
        max_gaps_per_patient=int(np.max(gaps_per_patient)),
        missing_fraction=total_missing / total_cells if total_cells else 0.0,
        n_patients=len(by_patient),
    )


def retention_sweep(
    cohort: CohortDataset,
    max_gaps: tuple[int, ...] = (0, 1, 3, 5, 9, 17),
    outcome: str = "qol",
) -> dict[int, dict[str, float]]:
    """Sample retention as a function of the interpolation bound.

    Returns ``{max_gap: {"retained": n, "possible": N, "fraction": f}}``
    where ``possible`` counts every (patient, window, month) slot with a
    measured outcome — the paper's 4,176 figure (261 patients x 16
    months).
    """
    cfg = cohort.config
    possible = 0
    visits = cohort.outcome_visits()
    values = visits[outcome]
    possible = int(np.sum(~np.isnan(values)) * len(cfg.window_months(1)))

    out: dict[int, dict[str, float]] = {}
    for max_gap in max_gaps:
        samples = build_dd_samples(cohort, outcome, max_gap=max_gap)
        out[max_gap] = {
            "retained": float(samples.n_samples),
            "possible": float(possible),
            "fraction": samples.n_samples / possible if possible else 0.0,
        }
    return out
