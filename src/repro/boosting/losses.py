"""Loss functions for second-order (Newton) gradient boosting.

Each loss provides, for raw model scores ``z`` and targets ``y``:

* ``base_score(y)`` — the constant initial prediction;
* ``gradient_hessian(z, y)`` — first and second derivatives of the loss
  w.r.t. ``z`` (per sample);
* ``loss(z, y)`` — mean loss value (used for early stopping);
* ``transform(z)`` — map raw scores to the prediction scale (identity
  for regression, sigmoid for binary classification).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Loss", "SquaredErrorLoss", "LogisticLoss"]


class Loss(abc.ABC):
    """Interface of a twice-differentiable boosting loss."""

    @abc.abstractmethod
    def base_score(self, y: np.ndarray) -> float:
        """Optimal constant raw score for targets ``y``."""

    @abc.abstractmethod
    def gradient_hessian(
        self, raw: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample gradient and hessian of the loss at ``raw``."""

    @abc.abstractmethod
    def loss(self, raw: np.ndarray, y: np.ndarray) -> float:
        """Mean loss at raw scores ``raw``."""

    def transform(self, raw: np.ndarray) -> np.ndarray:
        """Map raw scores to the output scale (identity by default)."""
        return raw


class SquaredErrorLoss(Loss):
    """L2 regression loss: ``0.5 * (y - z)^2``."""

    def base_score(self, y: np.ndarray) -> float:
        if len(y) == 0:
            raise ValueError("cannot fit on an empty target vector")
        return float(np.mean(y))

    def gradient_hessian(self, raw, y):
        grad = raw - y
        hess = np.ones_like(raw)
        return grad, hess

    def loss(self, raw, y) -> float:
        return float(np.mean(0.5 * (raw - y) ** 2))


class LogisticLoss(Loss):
    """Binary log-loss on raw logits; targets must be in {0, 1}.

    Parameters
    ----------
    pos_weight:
        Multiplier on the positive-class loss term (XGBoost's
        ``scale_pos_weight``).  Values > 1 push the model towards
        recalling the minority positive class — the counter-measure to
        the Falls imbalance the paper observes in Fig. 4.
    """

    #: Clamp on probabilities to keep the log finite.
    _EPS = 1e-12

    def __init__(self, pos_weight: float = 1.0):
        if pos_weight <= 0:
            raise ValueError("pos_weight must be positive")
        self.pos_weight = float(pos_weight)

    def _weights(self, y: np.ndarray) -> np.ndarray:
        if self.pos_weight == 1.0:
            return np.ones_like(y)
        return np.where(y > 0.5, self.pos_weight, 1.0)

    def base_score(self, y: np.ndarray) -> float:
        if len(y) == 0:
            raise ValueError("cannot fit on an empty target vector")
        rate = float(np.mean(y))
        # Optimal constant for the weighted loss:
        # p* = w r / (w r + (1 - r)).
        p = self.pos_weight * rate / (self.pos_weight * rate + (1.0 - rate))
        p = min(max(p, 1e-6), 1.0 - 1e-6)
        return float(np.log(p / (1.0 - p)))

    def gradient_hessian(self, raw, y):
        p = self.transform(raw)
        w = self._weights(y)
        # d/dz [-w y log p - (1-y) log(1-p)] = -w y (1-p) + (1-y) p
        grad = -w * y * (1.0 - p) + (1.0 - y) * p
        hess = np.maximum((w * y + (1.0 - y)) * p * (1.0 - p), 1e-16)
        return grad, hess

    def loss(self, raw, y) -> float:
        p = np.clip(self.transform(raw), self._EPS, 1.0 - self._EPS)
        w = self._weights(y)
        return float(-np.mean(w * y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))

    def transform(self, raw: np.ndarray) -> np.ndarray:
        out = np.empty_like(raw, dtype=np.float64)
        pos = raw >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-raw[pos]))
        ez = np.exp(raw[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out
