"""Integration tests for the Fig. 3 protocol and per-clinic stratification."""

import numpy as np
import pytest

from repro.baselines import MeanRegressor
from repro.learning import per_clinic_results, run_protocol
from repro.learning.metrics import ClassificationReport, RegressionReport


@pytest.fixture(scope="module")
def qol_result(qol_dd_samples):
    return run_protocol(qol_dd_samples, n_folds=3, seed=0)


class TestProtocol:
    def test_regression_report_for_qol(self, qol_result):
        assert isinstance(qol_result.test_report, RegressionReport)

    def test_headline_is_one_minus_mape(self, qol_result):
        assert qol_result.headline == qol_result.test_report.one_minus_mape

    def test_beats_dummy_baseline(self, qol_dd_samples):
        gbm = run_protocol(qol_dd_samples, n_folds=3, seed=0)
        dummy = run_protocol(
            qol_dd_samples,
            model_factory=lambda s: MeanRegressor(),
            n_folds=3,
            seed=0,
        )
        assert gbm.test_report.mae < dummy.test_report.mae

    def test_split_sizes(self, qol_result, qol_dd_samples):
        n = qol_dd_samples.n_samples
        assert len(qol_result.test_idx) == pytest.approx(0.2 * n, abs=2)
        assert len(qol_result.train_idx) + len(qol_result.test_idx) == n

    def test_split_disjoint(self, qol_result):
        assert set(qol_result.train_idx) & set(qol_result.test_idx) == set()

    def test_cv_reports_per_fold(self, qol_result):
        assert len(qol_result.cv_reports) == 3
        assert all(isinstance(r, RegressionReport) for r in qol_result.cv_reports)

    def test_test_predictions_align(self, qol_result):
        preds = qol_result.test_predictions()
        assert len(preds) == len(qol_result.test_idx)
        assert np.isfinite(preds).all()

    def test_falls_uses_classification(self, falls_dd_samples):
        result = run_protocol(falls_dd_samples, n_folds=2, seed=0)
        assert isinstance(result.test_report, ClassificationReport)
        assert result.headline == result.test_report.accuracy

    def test_falls_split_stratified(self, falls_dd_samples):
        result = run_protocol(falls_dd_samples, n_folds=2, seed=0)
        y = falls_dd_samples.y
        test_rate = y[result.test_idx].mean()
        overall = y.mean()
        assert abs(test_rate - overall) < 0.1

    def test_deterministic(self, qol_dd_samples):
        a = run_protocol(qol_dd_samples, n_folds=2, seed=5)
        b = run_protocol(qol_dd_samples, n_folds=2, seed=5)
        assert a.test_report.mae == b.test_report.mae

    def test_seed_changes_split(self, qol_dd_samples):
        a = run_protocol(qol_dd_samples, n_folds=2, seed=1)
        b = run_protocol(qol_dd_samples, n_folds=2, seed=2)
        assert not np.array_equal(a.test_idx, b.test_idx)

    def test_custom_model_factory_used(self, qol_dd_samples):
        result = run_protocol(
            qol_dd_samples,
            model_factory=lambda s: MeanRegressor(),
            n_folds=2,
        )
        assert isinstance(result.model, MeanRegressor)


class TestPerClinic:
    def test_all_clinics_evaluated(self, qol_dd_samples):
        results = per_clinic_results(qol_dd_samples, n_folds=2, seed=0)
        assert set(results) == {"modena", "sydney", "hong_kong"}

    def test_subsets_are_clinic_pure(self, qol_dd_samples):
        results = per_clinic_results(qol_dd_samples, n_folds=2, seed=0)
        for clinic, result in results.items():
            assert set(result.samples.clinics.tolist()) == {clinic}

    def test_explicit_clinic_list(self, qol_dd_samples):
        results = per_clinic_results(
            qol_dd_samples, clinics=["modena"], n_folds=2, seed=0
        )
        assert list(results) == ["modena"]

    def test_folds_shrink_for_small_clinics(self, falls_dd_samples):
        # hong_kong has 6 patients; requesting many folds must not crash.
        results = per_clinic_results(falls_dd_samples, n_folds=10, seed=0)
        assert "hong_kong" in results
