"""REP004 positive: float32 (or unprovable) buffers feeding sums."""

# repro: scope[float64-sums]

import numpy as np


def narrow_sum(n):
    buf = np.ones(n, dtype=np.float32)
    return float(buf.sum())


def cast_then_cumsum(values):
    narrow = values.astype(np.float32)
    return np.cumsum(narrow)


def runtime_dtype(n, dt):
    buf = np.zeros(n, dtype=dt)  # not provably float64
    return buf.sum()
