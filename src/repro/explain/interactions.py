"""SHAP interaction values for tree ensembles.

Extension beyond the paper: the Shapley *interaction* index splits each
feature's attribution into a main effect (diagonal) and pairwise
synergies (off-diagonal), exposing e.g. "low step count only matters
for patients with poor locomotion answers" — one level deeper than the
Fig. 6 per-patient rankings.

Following Lundberg et al. (2018, §4.4), interaction values come from
*conditioned* TreeSHAP runs::

    phi_ij(x) = ( phi_j(x | i -> hot) - phi_j(x | i -> cold) ) / 2
    phi_ii(x) = phi_i(x) - sum_{j != i} phi_ij(x)

where "i -> hot/cold" forces every split on feature i down the branch x
does/does not take (without crediting i on the path).  The matrix is
symmetric and rows sum to the ordinary SHAP values — both properties
are asserted in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import LEAF, Tree, TreeEnsemble
from repro.explain.treeshap import _Path

__all__ = ["TreeShapInteractionExplainer"]


def _conditioned_tree_shap(
    tree: Tree,
    x: np.ndarray,
    phi: np.ndarray,
    condition: int,
    condition_feature: int,
) -> None:
    """TreeSHAP with one feature forced hot (+1) / cold (-1).

    ``condition = 0`` reduces to the unconditioned algorithm.
    """
    max_depth = tree.max_depth() + 2

    def hot_cold(node: int) -> tuple[int, int]:
        v = x[tree.feature[node]]
        if np.isnan(v):
            go_left = bool(tree.missing_left[node])
        else:
            go_left = bool(v <= tree.threshold[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        return (left, right) if go_left else (right, left)

    def recurse(
        node: int,
        path: _Path,
        zero_fraction: float,
        one_fraction: float,
        feature: int,
        condition_fraction: float,
    ) -> None:
        if condition_fraction == 0.0:
            return
        path = path.copy()
        # Skip crediting the conditioned feature on the path.
        if condition == 0 or condition_feature != feature:
            path.extend(zero_fraction, one_fraction, feature)
        if tree.children_left[node] == LEAF:
            value = tree.value[node]
            for i in range(1, path.length):
                w = path.unwound_sum(i)
                phi[path.feature[i]] += (
                    w * (path.one[i] - path.zero[i]) * value * condition_fraction
                )
            return

        hot, cold = hot_cold(node)
        split_feature = int(tree.feature[node])
        cover = tree.cover[node]
        hot_zero = tree.cover[hot] / cover
        cold_zero = tree.cover[cold] / cover

        hot_condition = condition_fraction
        cold_condition = condition_fraction
        if condition > 0 and split_feature == condition_feature:
            cold_condition = 0.0
        elif condition < 0 and split_feature == condition_feature:
            hot_condition *= hot_zero
            cold_condition *= cold_zero

        incoming_zero, incoming_one = 1.0, 1.0
        for i in range(1, path.length):
            if path.feature[i] == split_feature:
                incoming_zero = path.zero[i]
                incoming_one = path.one[i]
                path.unwind(i)
                break
        recurse(
            hot,
            path,
            incoming_zero * hot_zero,
            incoming_one,
            split_feature,
            hot_condition,
        )
        recurse(
            cold,
            path,
            incoming_zero * cold_zero,
            0.0,
            split_feature,
            cold_condition,
        )

    recurse(0, _Path(max_depth + 1), 1.0, 1.0, -1, 1.0)


class TreeShapInteractionExplainer:
    """Exact SHAP interaction matrices over a fitted ensemble.

    Cost is ``O(D)`` conditioned TreeSHAP passes per sample per tree
    (``D`` = number of features the tree uses), so explain modest
    batches (tens of samples), not whole cohorts.
    """

    def __init__(self, model):
        ensemble = getattr(model, "ensemble_", model)
        if not isinstance(ensemble, TreeEnsemble):
            raise TypeError("model must be a TreeEnsemble or fitted estimator")
        if ensemble.n_trees == 0:
            raise ValueError("cannot explain an empty ensemble")
        self.ensemble = ensemble

    def shap_interaction_values(self, x: np.ndarray, n_features: int) -> np.ndarray:
        """The ``(n_features, n_features)`` interaction matrix for ``x``.

        Rows sum to the sample's ordinary SHAP values; the matrix is
        symmetric; the diagonal holds main effects.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"expected a single sample, got shape {x.shape}")

        out = np.zeros((n_features, n_features), dtype=np.float64)
        plain = np.zeros(n_features, dtype=np.float64)
        for tree in self.ensemble.trees:
            _conditioned_tree_shap(tree, x, plain, 0, -1)
            for i in [int(f) for f in tree.used_features()]:
                phi_on = np.zeros(n_features, dtype=np.float64)
                phi_off = np.zeros(n_features, dtype=np.float64)
                _conditioned_tree_shap(tree, x, phi_on, 1, i)
                _conditioned_tree_shap(tree, x, phi_off, -1, i)
                delta = (phi_on - phi_off) / 2.0
                delta[i] = 0.0
                out[i] += delta

        # Symmetrise is unnecessary (the construction is symmetric up to
        # float error) but cheap insurance; then set main effects so each
        # row sums to the plain SHAP value.
        out = (out + out.T) / 2.0
        np.fill_diagonal(out, 0.0)
        np.fill_diagonal(out, plain - out.sum(axis=1))
        return out
