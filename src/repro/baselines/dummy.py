"""Dummy baselines: the floor any real model must clear."""

from __future__ import annotations

import numpy as np

__all__ = ["MeanRegressor", "MajorityClassifier"]


class MeanRegressor:
    """Predicts the training mean for every sample."""

    def __init__(self):
        self.mean_: float | None = None

    def fit(self, X, y, eval_set=None) -> "MeanRegressor":
        """Record the training mean (``X``/``eval_set`` are ignored)."""
        y = np.asarray(y, dtype=np.float64)
        if y.size == 0:
            raise ValueError("cannot fit on an empty target vector")
        self.mean_ = float(np.mean(y))
        return self

    def predict(self, X) -> np.ndarray:
        """Constant predictions."""
        if self.mean_ is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        return np.full(np.asarray(X).shape[0], self.mean_)


class MajorityClassifier:
    """Predicts the majority training class for every sample."""

    def __init__(self):
        self.majority_: bool | None = None
        self.rate_: float | None = None

    def fit(self, X, y, eval_set=None) -> "MajorityClassifier":
        """Record the majority class (``X``/``eval_set`` are ignored)."""
        y = np.asarray(y, dtype=bool)
        if y.size == 0:
            raise ValueError("cannot fit on an empty target vector")
        self.rate_ = float(np.mean(y))
        self.majority_ = bool(self.rate_ >= 0.5)
        return self

    def predict(self, X) -> np.ndarray:
        """Constant class predictions."""
        if self.majority_ is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        return np.full(np.asarray(X).shape[0], self.majority_, dtype=bool)

    def predict_proba(self, X) -> np.ndarray:
        """Constant probability = training positive rate."""
        if self.rate_ is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        return np.full(np.asarray(X).shape[0], self.rate_)
