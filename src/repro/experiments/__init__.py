"""Experiment runners: one module per paper table/figure.

Every runner regenerates the rows/series of one artefact of the paper's
evaluation section from a synthetic cohort (see DESIGN.md section 4 for
the experiment index).  Runners share a cached
:class:`~repro.experiments.context.ExperimentContext` so the cohort is
generated and the models are trained once per process.

=========  =======================================================
FIG1       outcome distributions            ``fig1_distributions``
FIG4       DD vs KD performance grid        ``fig4_performance``
TAB1       per-clinic models                ``table1_clinics``
FIG5       per-patient MAE by clinic        ``fig5_mae_by_clinic``
FIG6       local SHAP explanations          ``fig6_local_explanations``
FIG7       global SV dependence             ``fig7_global_dependence``
QA         gap statistics / retention       ``qa_gaps``
ABL1       model-family ablation            ``ablation_models``
ABL2       imputation-bound ablation        ``ablation_imputation``
ABL3       Falls class-weighting ablation   ``ablation_imbalance``
=========  =======================================================
"""

from repro.experiments.ablation_imbalance import run_imbalance_ablation
from repro.experiments.ablation_imputation import run_imputation_ablation
from repro.experiments.ablation_models import run_model_ablation
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.fig1_distributions import run_fig1
from repro.experiments.fig4_performance import run_fig4
from repro.experiments.fig5_mae_by_clinic import run_fig5
from repro.experiments.fig6_local_explanations import run_fig6
from repro.experiments.fig7_global_dependence import run_fig7
from repro.experiments.qa_gaps import run_qa
from repro.experiments.table1_clinics import run_table1

__all__ = [
    "ExperimentContext",
    "default_context",
    "run_fig1",
    "run_fig4",
    "run_table1",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_qa",
    "run_model_ablation",
    "run_imputation_ablation",
    "run_imbalance_ablation",
]
