"""Rule engine core: findings, file context, registry, AST helpers.

A :class:`Rule` is a stateless checker over one parsed file.  Rules
declare the scope tags they require (``tags``; ``None`` means every
scanned file) and yield :class:`Finding` objects from :meth:`Rule.check`.
Concrete rules live in :mod:`repro.analysis.rulepack` and register
themselves into :data:`RULES` at import time via :func:`register`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "RULES",
    "FileContext",
    "Finding",
    "Rule",
    "collect_aliases",
    "dotted_name",
    "register",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    tags: frozenset[str]
    tree: ast.AST
    source: str
    #: module kind -> names it is bound to in this file, e.g.
    #: ``{"numpy": {"np"}, "random": {"random"}}`` (import-derived).
    aliases: dict[str, set[str]] = field(default_factory=dict)
    #: child AST node -> parent AST node, for ancestor walks.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node``, innermost first, up to the module."""
        while node in self.parents:
            node = self.parents[node]
            yield node

    def roots(self, kind: str) -> set[str]:
        """Names the module ``kind`` is imported under in this file."""
        return self.aliases.get(kind, set())


class Rule:
    """Base class: one determinism/concurrency check."""

    id: str = "REP000"
    title: str = ""
    #: Scope tags that activate this rule; ``None`` = every file.
    tags: frozenset[str] | None = None

    def applies(self, ctx: FileContext) -> bool:
        return self.tags is None or bool(self.tags & ctx.tags)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule id -> singleton rule instance (populated by :func:`register`).
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    rule = cls()
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


#: Top-level modules whose bindings rules care about.
_TRACKED_MODULES = ("numpy", "random", "time", "datetime", "os", "glob")


def collect_aliases(tree: ast.AST) -> dict[str, set[str]]:
    """Names each tracked module is bound to (``import numpy as np`` ...)."""
    aliases: dict[str, set[str]] = {name: set() for name in _TRACKED_MODULES}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                top = item.name.split(".")[0]
                if top in aliases:
                    aliases[top].add(item.asname or top)
        elif isinstance(node, ast.ImportFrom) and node.module:
            top = node.module.split(".")[0]
            if top == "datetime":
                # from datetime import datetime/date: the class names
                # become roots for the wall-clock checks.
                for item in node.names:
                    if item.name in ("datetime", "date"):
                        aliases["datetime"].add(item.asname or item.name)
    return aliases


def attach_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child -> parent map over the whole tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents
