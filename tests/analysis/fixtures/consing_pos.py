"""Hash-consing shaped positive: the two ways a consing pass goes wrong.

A structure-interning table is a dict keyed by node-shape tuples.  The
pass stays reproducible only if (a) any sweep over the intern table
runs in a sorted order and (b) tie-breaks never touch an unseeded RNG.
This fixture violates both.
"""

# repro: scope[deterministic]

import numpy as np


def emit_rows(intern_table):
    # Sweeping the *key set* of the intern table: set order follows the
    # per-process hash seed, so the emitted row order is unstable.
    rows = []
    for key in set(intern_table):
        rows.append(intern_table[key])
    return rows


def dedupe_features(trees):
    return [f for f in {t.feature for t in trees}]


def jitter_tie_break(candidates):
    # Unseeded generator deciding which duplicate subtree wins.
    rng = np.random.default_rng()
    return candidates[rng.integers(len(candidates))]
