"""Shared-memory model plane: pack a model once, map it everywhere.

A published model's working set — the flat tree node arrays and
bin-space thresholds, the fitted :class:`~repro.boosting.binning
.BinMapper` bin edges, and the preprocessed TreeSHAP per-leaf path
structures of :mod:`repro.explain.structure` — is identical for every
process that serves the version.  :class:`ModelPlane` packs all of it
into a handful of flat arrays exactly once per version tag; the arrays
ride to scoring workers through the executor's POSIX shared-memory
handoff (:mod:`repro.parallel.shared`), and each worker *maps* the
plane back into a live model + explainer with zero-copy views
(:func:`repro.boosting.serialize.model_from_arrays`,
:meth:`~repro.explain.structure.TreeStructure.from_flat`) instead of
unpickling a private copy and re-deriving the structures.

This is the same pay-the-structural-cost-once discipline the decision-
diagram literature applies to shared subgraphs: build the mapped
representation once, answer many queries off it.

The module also hosts :func:`parallel_shap` — the row-sharded batched
TreeSHAP sweep used by the Fig. 6/7 runners.  Because the batched
engine is row-deterministic (see :mod:`repro.explain.structure`),
sharding rows across workers is bitwise-identical to the serial pass.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.serialize import (
    model_from_arrays,
    model_to_arrays,
    model_to_dict,
)
from repro.explain.structure import TreeStructure
from repro.explain.treeshap import TreeShapExplainer
from repro.parallel import parallel_map, resolve_jobs
from repro.serve.registry import model_fingerprint

__all__ = ["ModelPlane", "parallel_shap"]


class ModelPlane:
    """Flat-array representation of one model version, built once.

    Attributes
    ----------
    manifest:
        Small picklable dict (scalars, shapes, version tag) shipped to
        workers through the pool initializer.
    arrays:
        Name -> flat ``np.ndarray`` mapping; large arrays travel via
        shared memory, reconstruction slices them into zero-copy views.
    version:
        The version tag (defaults to the model's content fingerprint),
        namespacing every downstream result cache.
    """

    def __init__(self, manifest: dict, arrays: dict[str, np.ndarray]):
        self.manifest = manifest
        self.arrays = arrays
        #: Parent-side structures (reused so the packing process never
        #: rebuilds what it just exported); workers get views instead.
        self._structures: list[TreeStructure] | None = None

    @property
    def version(self) -> str:
        return self.manifest["version"]

    @property
    def nbytes(self) -> int:
        """Total bytes of the packed arrays (what every worker maps)."""
        return sum(array.nbytes for array in self.arrays.values())

    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, model, *, version: str | None = None) -> "ModelPlane":
        """Pack a fitted model (with mapper + bin thresholds) for serving.

        Raises ``ValueError`` for models the scoring plane cannot serve:
        unfitted, no fitted ``mapper_``, or trees without bin-space
        thresholds (the binned fast path is the serving contract).
        """
        if getattr(model, "ensemble_", None) is None:
            raise ValueError("model is not fitted")
        if getattr(model, "mapper_", None) is None:
            raise ValueError(
                "model carries no fitted BinMapper (mapper_); reload it "
                "through the registry (format v2) or refit"
            )
        manifest, arrays = model_to_arrays(model)
        if not manifest["binnable"]:
            raise ValueError(
                "model trees carry no bin thresholds; the scoring plane "
                "requires the binned fast path"
            )
        if version is None:
            version = model_fingerprint(model_to_dict(model))
        manifest["version"] = version

        # The dag layout re-expands trees in canonical node order, so
        # the packed TreeSHAP structures must be built from the same
        # canonical trees the workers will map — structure output is
        # topology-driven, hence bitwise identical to the originals,
        # but its node indices must match the worker-side trees.
        canonical = model_from_arrays(manifest, arrays)
        structures = [TreeStructure(t) for t in canonical.ensemble_.trees]
        shapes: list[dict] = []
        scalars: list[dict] = []
        per_field: dict[str, list[np.ndarray]] = {
            name: [] for name in TreeStructure._FLAT_FIELDS
        }
        for struct in structures:
            fields, struct_scalars = struct.to_flat()
            scalars.append(struct_scalars)
            shapes.append({name: len(fields[name]) for name in per_field})
            for name, flat in fields.items():
                per_field[name].append(flat)
        for name, flats in per_field.items():
            arrays[f"shap:{name}"] = np.concatenate(flats)
        manifest["shap"] = {"scalars": scalars, "lengths": shapes}

        plane = cls(manifest, arrays)
        plane._structures = structures
        return plane

    # ------------------------------------------------------------------
    @staticmethod
    def materialize(
        manifest: dict, arrays: dict[str, np.ndarray]
    ) -> tuple[object, TreeShapExplainer]:
        """Rebuild ``(model, explainer)`` from a packed plane, zero-copy.

        Called once per worker over the attached shared arrays; every
        numeric field of the result is a read-only view into the plane.
        """
        model = model_from_arrays(manifest, arrays)
        structures = []
        offsets = {name: 0 for name in TreeStructure._FLAT_FIELDS}
        shap_info = manifest["shap"]
        for tree, scalars, lengths in zip(
            model.ensemble_.trees, shap_info["scalars"], shap_info["lengths"]
        ):
            fields = {}
            for name in TreeStructure._FLAT_FIELDS:
                lo = offsets[name]
                hi = lo + lengths[name]
                fields[name] = arrays[f"shap:{name}"][lo:hi]
                offsets[name] = hi
            structures.append(TreeStructure.from_flat(tree, fields, scalars))
        return model, TreeShapExplainer(model, structures=structures)

# ----------------------------------------------------------------------
# Row-sharded SHAP sweeps (Fig. 6 / Fig. 7).


def _sweep_setup(arrays: dict[str, np.ndarray], manifest: dict):
    _, explainer = ModelPlane.materialize(manifest, arrays)
    return explainer, arrays["sweep:X"]


def _sweep_chunk(bounds: tuple[int, int], state) -> np.ndarray:
    explainer, X = state
    lo, hi = bounds
    return explainer.shap_values(X[lo:hi])


def parallel_shap(
    model, X: np.ndarray, *, n_jobs: int | None = None
) -> tuple[np.ndarray, float]:
    """Batched TreeSHAP over ``X``, row-sharded across the executor.

    Returns ``(phi, expected_value)``.  The model plane is packed once
    and mapped by every worker; rows are split into one contiguous chunk
    per worker.  The batched engine is row-deterministic, so the result
    is **bitwise identical** to the serial pass for any worker count
    (asserted in ``tests/experiments/test_parallel_sweeps.py``).
    """
    X = np.asarray(X, dtype=np.float64)
    jobs = min(resolve_jobs(n_jobs), max(int(X.shape[0]), 1))
    if jobs <= 1:
        explainer = TreeShapExplainer(model)
        return explainer.shap_values(X), explainer.expected_value

    try:
        plane = ModelPlane.pack(model, version="sweep")
    except ValueError:
        # Models the plane cannot serve (no fitted mapper / bin
        # thresholds, e.g. reloaded format-v1 documents) still explain
        # fine through the raw-threshold path — serially, so the result
        # stays independent of the worker count.
        explainer = TreeShapExplainer(model)
        return explainer.shap_values(X), explainer.expected_value


    shared = dict(plane.arrays)
    shared["sweep:X"] = X
    bounds = np.linspace(0, X.shape[0], jobs + 1).astype(np.int64)
    chunks = parallel_map(
        _sweep_chunk,
        [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])],
        n_jobs=jobs,
        shared=shared,
        setup=_sweep_setup,
        setup_args=(plane.manifest,),
    )
    explainer = TreeShapExplainer(model, structures=plane._structures)
    return np.vstack(chunks), explainer.expected_value
