"""Integration tests for the experiment runners (small cohort).

These tests assert the *shape* of each artefact rather than absolute
numbers: with 30 patients the metrics are noisy, but the structure
(grids complete, invariants hold) must be stable.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_imbalance_ablation,
    run_imputation_ablation,
    run_model_ablation,
    run_qa,
)
from repro.experiments.ablation_imputation import render_imputation_ablation
from repro.experiments.ablation_models import render_model_ablation
from repro.experiments.fig1_distributions import render_fig1
from repro.experiments.fig4_performance import render_fig4
from repro.experiments.fig5_mae_by_clinic import BoxStats, render_fig5
from repro.experiments.fig6_local_explanations import render_fig6
from repro.experiments.fig7_global_dependence import render_fig7
from repro.experiments.qa_gaps import render_qa
from tests.conftest import small_config


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=11, n_folds=2, cohort_config=small_config())


class TestContext:
    def test_cohort_cached(self, ctx):
        assert ctx.cohort is ctx.cohort

    def test_samples_cached(self, ctx):
        a = ctx.samples("qol", "dd", True)
        b = ctx.samples("qol", "dd", True)
        assert a is b

    def test_kd_derived_from_dd(self, ctx):
        kd = ctx.samples("qol", "kd", True)
        assert kd.kind == "kd"

    def test_results_cached(self, ctx):
        a = ctx.result("qol", "kd", False)
        b = ctx.result("qol", "kd", False)
        assert a is b


class TestFig1:
    def test_series_shapes(self, ctx):
        result = run_fig1(ctx)
        assert len(result["qol_counts"]) == 10
        assert len(result["sppb_counts"]) == 13
        assert result["falls_false"] + result["falls_true"] == 60  # 30 pats x 2

    def test_falls_majority_false(self, ctx):
        result = run_fig1(ctx)
        assert result["falls_false"] > result["falls_true"]

    def test_qol_mass_in_upper_bins(self, ctx):
        counts = run_fig1(ctx)["qol_counts"]
        assert counts[5:].sum() > counts[:5].sum()

    def test_render(self, ctx):
        text = render_fig1(run_fig1(ctx))
        assert "FIG1(a)" in text and "Falls" in text


class TestQA:
    def test_bundle_structure(self, ctx):
        result = run_qa(ctx, max_gaps=(0, 5))
        assert set(result["retention"]) == {0, 5}
        assert result["gap_report"].n_patients == 30

    def test_render(self, ctx):
        assert "retention" in render_qa(run_qa(ctx, max_gaps=(0,)))


class TestFig4:
    def test_grid_complete(self, ctx):
        grid = run_fig4(ctx)
        assert set(grid) == {"qol", "sppb", "falls"}
        for outcome in grid:
            assert set(grid[outcome]) == {
                ("kd", False),
                ("kd", True),
                ("dd", False),
                ("dd", True),
            }

    def test_regression_metrics_present(self, ctx):
        grid = run_fig4(ctx)
        cell = grid["qol"][("dd", True)]
        assert "one_minus_mape" in cell and 0.0 < cell["one_minus_mape"] <= 1.0

    def test_classification_metrics_present(self, ctx):
        cell = run_fig4(ctx)["falls"][("dd", True)]
        assert "recall_true" in cell and "f1_false" in cell

    def test_render(self, ctx):
        text = render_fig4(run_fig4(ctx))
        assert "1-MAPE" in text and "Falls" in text


class TestFig5:
    def test_groups_by_clinic(self, ctx):
        result = run_fig5(ctx)
        assert set(result) == {"qol", "sppb"}
        for groups in result.values():
            assert set(groups) <= {"modena", "sydney", "hong_kong"}

    def test_box_stats_ordered(self, ctx):
        for groups in run_fig5(ctx).values():
            for stats in groups.values():
                assert stats.q1 <= stats.median <= stats.q3
                assert stats.whisker_low <= stats.q1
                assert stats.whisker_high >= stats.q3

    def test_box_stats_from_values(self):
        stats = BoxStats.from_values(np.array([1.0, 2.0, 3.0, 4.0, 100.0]))
        assert stats.outliers == 1
        assert stats.n == 5

    def test_box_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values(np.array([]))

    def test_render(self, ctx):
        assert "per-patient MAE" in render_fig5(run_fig5(ctx))


class TestFig6:
    def test_pair_found(self, ctx):
        pair = run_fig6(ctx, tolerance=0.6)
        assert pair.patient_a != pair.patient_b
        assert abs(pair.prediction_a - pair.prediction_b) <= 0.6

    def test_explanations_have_five_features(self, ctx):
        pair = run_fig6(ctx, tolerance=0.6)
        assert len(pair.explanation_a.features) == 5
        assert len(pair.explanation_b.features) == 5

    def test_rankings_differ(self, ctx):
        pair = run_fig6(ctx, tolerance=0.6)
        assert pair.explanation_a.features != pair.explanation_b.features

    def test_render(self, ctx):
        assert "patient A" in render_fig6(run_fig6(ctx, tolerance=0.6))


class TestFig7:
    def test_curve_over_pro_item(self, ctx):
        curve = run_fig7(ctx)
        assert curve.feature.startswith("pro_")
        assert len(curve.values) >= 2
        assert curve.counts.sum() > 0

    def test_render(self, ctx):
        assert "dependence" in render_fig7(run_fig7(ctx))


class TestAblations:
    def test_model_ablation_grid(self, ctx):
        grid = run_model_ablation(ctx)
        assert set(grid) == {"qol", "sppb", "falls"}
        for row in grid.values():
            assert set(row) == {"gbm", "ebm", "linear", "dummy"}

    def test_gbm_beats_dummy(self, ctx):
        grid = run_model_ablation(ctx)
        for outcome, row in grid.items():
            key = "accuracy" if outcome == "falls" else "one_minus_mape"
            assert row["gbm"][key] >= row["dummy"][key] - 0.02

    def test_model_ablation_render(self, ctx):
        assert "ABL1" in render_model_ablation(run_model_ablation(ctx))

    def test_imputation_ablation_sweep(self, ctx):
        sweep = run_imputation_ablation(ctx, max_gaps=(0, 5))
        assert set(sweep) == {0, 5}
        assert sweep[5]["n_samples"] >= sweep[0]["n_samples"]

    def test_imputation_ablation_render(self, ctx):
        text = render_imputation_ablation(run_imputation_ablation(ctx, max_gaps=(0,)))
        assert "max_gap" in text

    def test_imbalance_ablation_sweep(self, ctx):
        sweep = run_imbalance_ablation(ctx, pos_weights=(1.0, 6.0))
        assert set(sweep) == {1.0, 6.0}
        for metrics in sweep.values():
            assert 0.0 <= metrics["recall_true"] <= 1.0

    def test_imbalance_ablation_render(self, ctx):
        from repro.experiments.ablation_imbalance import render_imbalance_ablation

        text = render_imbalance_ablation(
            run_imbalance_ablation(ctx, pos_weights=(1.0,))
        )
        assert "pos_weight" in text
