"""Monthly aggregation of the daily wearable trace.

The paper: "3 aggregated values computed as the mean of the daily
wearable device data (step count, calories, number of sleep hours)
collected during the same month".
"""

from __future__ import annotations

import numpy as np

from repro.cohort.schema import ACTIVITY_VARIABLES
from repro.tabular import Table

__all__ = ["monthly_activity"]


def monthly_activity(daily: Table) -> Table:
    """Mean daily steps/calories/sleep per (patient, month).

    Parameters
    ----------
    daily:
        The cohort's wearable table (``patient_id``, ``month``, one
        column per activity variable).

    Returns
    -------
    Table
        Columns ``patient_id``, ``month`` and the three activity means,
        one row per observed (patient, month) pair, ordered by first
        appearance.
    """
    for required in ("patient_id", "month", *ACTIVITY_VARIABLES):
        daily.column(required)
    return daily.group_by(
        ["patient_id", "month"],
        {var: "mean" for var in ACTIVITY_VARIABLES},
    )


def activity_lookup(monthly: Table) -> dict[tuple[str, int], np.ndarray]:
    """Index the monthly table: ``(patient_id, month) -> activity vector``.

    The vector follows :data:`ACTIVITY_VARIABLES` order.  Used by the
    sample builders for O(1) joins against PRO months.
    """
    pids = monthly["patient_id"]
    months = monthly["month"]
    matrix = np.column_stack([monthly[v] for v in ACTIVITY_VARIABLES])
    return {
        (pids[i], int(months[i])): matrix[i] for i in range(monthly.num_rows)
    }
