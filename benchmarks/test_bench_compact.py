"""Compaction bench — the hash-consed DAG vs the per-tree ensemble.

Two numbers on the Fig. 4 model family (the reproduction's default
400-round gradient-boosting configuration):

* **Compression** — source ensemble nodes per shared-table row.  The
  grower re-derives identical subtrees across boosting rounds (shallow
  trees over a shared bin space), so hash-consing collapses the
  ensemble well below its nominal node count (target >= 1.2x; measured
  ~2.5x on the DD representation).
* **Predict speedup** — serving-shaped micro-batches routed through
  ``CompactEnsemble.predict_raw_binned``'s fused frontier loop vs the
  per-tree ``TreeEnsemble`` path.  One numpy dispatch per tree level
  (amortised over all trees) replaces ``n_trees x depth`` of them, so
  the win grows as batches shrink toward the single-visit case.

Both are recorded to ``results/bench.json`` (``model_nodes``,
``model_bytes``, ``compression_ratio``) next to the wall time, with
bitwise identity between the two paths asserted on every batch.
"""

import time

import numpy as np

from benchmarks.conftest import record, record_bench

#: Requests per service micro-batch (matches the serve bench).
MICRO_BATCH = 64
#: Timing repetitions; best-of is reported.
ROUNDS = 15


def _best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_compact_dag_compression_and_speedup(ctx, results_dir):
    samples = ctx.samples("sppb", "dd", with_fi=True)
    result = ctx.result("sppb", "dd", with_fi=True)
    model = result.model
    compact = model.compact()
    stats = compact.stats()
    missing_bin = model.mapper_.missing_bin

    codes = model.bin(samples.X)
    batch = codes[:MICRO_BATCH]
    reference = model.ensemble_.predict_raw_binned(batch, missing_bin)
    assert np.array_equal(
        compact.predict_raw_binned(batch, missing_bin), reference
    )
    assert np.array_equal(
        compact.predict_raw_binned(codes, missing_bin),
        model.ensemble_.predict_raw_binned(codes, missing_bin),
    )

    t_tree = _best_of(
        lambda: model.ensemble_.predict_raw_binned(batch, missing_bin)
    )
    t_dag = _best_of(lambda: compact.predict_raw_binned(batch, missing_bin))
    one = codes[:1]
    t_tree_1 = _best_of(
        lambda: model.ensemble_.predict_raw_binned(one, missing_bin)
    )
    t_dag_1 = _best_of(lambda: compact.predict_raw_binned(one, missing_bin))

    speedup = t_tree / t_dag
    speedup_1 = t_tree_1 / t_dag_1
    record(
        results_dir,
        "compact_dag",
        (
            "COMPACT bench (hash-consed DAG vs per-tree ensemble)\n"
            f"  model: {stats['n_trees']} trees, {stats['nodes']} source "
            f"nodes -> {stats['table_rows']} shared table rows "
            f"({stats['ratio']:.2f}x compression, target >= 1.2x), "
            f"{stats['nbytes']} table bytes\n"
            f"  micro-batch ({MICRO_BATCH} rows): per-tree "
            f"{t_tree * 1e3:.2f} ms, fused DAG {t_dag * 1e3:.2f} ms "
            f"({speedup:.1f}x)\n"
            f"  single visit (1 row):   per-tree {t_tree_1 * 1e3:.2f} ms, "
            f"fused DAG {t_dag_1 * 1e3:.2f} ms ({speedup_1:.1f}x)\n"
            "  bitwise identity asserted on both batch shapes"
        ),
    )
    record_bench(
        results_dir,
        "compact_dag",
        t_dag,
        speedup=speedup,
        config={
            "trees": stats["n_trees"],
            "micro_batch": MICRO_BATCH,
            "single_row_speedup": round(speedup_1, 2),
        },
        model_nodes=stats["nodes"],
        model_bytes=stats["nbytes"],
        compression_ratio=stats["ratio"],
    )
    assert stats["ratio"] >= 1.2
    assert speedup >= 1.2
