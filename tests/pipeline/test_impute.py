"""Unit and property tests for repro.pipeline.impute."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import interpolate_bounded, interpolate_matrix


class TestInterpolateBounded:
    def test_single_interior_gap(self):
        out = interpolate_bounded(np.array([1.0, np.nan, 3.0]), max_gap=1)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_longer_gap_linear_values(self):
        out = interpolate_bounded(np.array([0.0, np.nan, np.nan, np.nan, 4.0]), max_gap=3)
        assert out.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_gap_longer_than_bound_untouched(self):
        series = np.array([0.0, np.nan, np.nan, 3.0])
        out = interpolate_bounded(series, max_gap=1)
        assert np.isnan(out[1]) and np.isnan(out[2])

    def test_leading_gap_never_filled(self):
        out = interpolate_bounded(np.array([np.nan, 2.0, 3.0]), max_gap=5)
        assert np.isnan(out[0])

    def test_trailing_gap_never_filled(self):
        out = interpolate_bounded(np.array([1.0, 2.0, np.nan]), max_gap=5)
        assert np.isnan(out[2])

    def test_max_gap_zero_disables(self):
        series = np.array([1.0, np.nan, 3.0])
        out = interpolate_bounded(series, max_gap=0)
        assert np.isnan(out[1])

    def test_multiple_gaps_handled_independently(self):
        series = np.array([1.0, np.nan, 3.0, np.nan, np.nan, np.nan, 7.0])
        out = interpolate_bounded(series, max_gap=2)
        assert out[1] == pytest.approx(2.0)
        assert np.isnan(out[3:6]).all()  # length-3 gap exceeds bound

    def test_input_not_mutated(self):
        series = np.array([1.0, np.nan, 3.0])
        interpolate_bounded(series, max_gap=1)
        assert np.isnan(series[1])

    def test_complete_series_passthrough(self):
        series = np.array([1.0, 2.0])
        assert interpolate_bounded(series, max_gap=3).tolist() == [1.0, 2.0]

    def test_empty_series(self):
        assert interpolate_bounded(np.array([]), max_gap=3).size == 0

    def test_all_missing_stays_missing(self):
        out = interpolate_bounded(np.full(4, np.nan), max_gap=10)
        assert np.isnan(out).all()

    def test_negative_max_gap_rejected(self):
        with pytest.raises(ValueError):
            interpolate_bounded(np.array([1.0]), max_gap=-1)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            interpolate_bounded(np.zeros((2, 2)), max_gap=1)

    @given(
        st.lists(
            st.one_of(st.none(), st.floats(-100, 100)), min_size=2, max_size=40
        ),
        st.integers(0, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, raw, max_gap):
        series = np.array([np.nan if v is None else v for v in raw])
        out = interpolate_bounded(series, max_gap)
        observed = ~np.isnan(series)
        # observed values never change
        assert np.array_equal(out[observed], series[observed])
        # imputation is monotone: missing count never increases
        assert np.isnan(out).sum() <= np.isnan(series).sum()
        # filled values lie within the convex hull of observations
        if observed.any():
            lo, hi = series[observed].min(), series[observed].max()
            filled = out[~observed & ~np.isnan(out)]
            assert ((filled >= lo - 1e-9) & (filled <= hi + 1e-9)).all()


class TestInterpolateMatrix:
    def test_columns_independent(self):
        matrix = np.array(
            [
                [1.0, 10.0],
                [np.nan, np.nan],
                [3.0, np.nan],
                [4.0, np.nan],
                [5.0, 50.0],
            ]
        )
        out = interpolate_matrix(matrix, max_gap=1)
        assert out[1, 0] == pytest.approx(2.0)
        assert np.isnan(out[1:4, 1]).all()  # 3-long gap exceeds bound

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            interpolate_matrix(np.array([1.0]), max_gap=1)
