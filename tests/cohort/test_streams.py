"""Unit tests for the per-patient observation streams (wearable, PRO,
clinical, outcomes, missingness)."""

import numpy as np
import pytest

from repro.cohort.clinical import generate_visit_deficits
from repro.cohort.missingness import apply_missingness
from repro.cohort.outcomes import generate_outcomes
from repro.cohort.patients import generate_patients
from repro.cohort.pro import build_item_links, generate_pro_answers
from repro.cohort.schema import PRO_ITEMS, pro_item_names
from repro.cohort.wearable import generate_daily_trace
from repro.frailty.deficits import deficit_names
from repro.synth import SeedSequenceFactory

from tests.conftest import small_config


@pytest.fixture(scope="module")
def setup():
    cfg = small_config()
    seeds = SeedSequenceFactory(cfg.seed)
    patients = generate_patients(cfg, seeds)
    clinics = {c.name: c for c in cfg.clinics}
    return cfg, seeds, patients, clinics


class TestWearable:
    def test_trace_length(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        trace = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
        assert len(trace["day"]) == cfg.n_months * cfg.days_per_month

    def test_month_attribution(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        trace = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
        assert trace["month"].min() == 1
        assert trace["month"].max() == cfg.n_months
        # each month holds exactly days_per_month days
        counts = np.bincount(trace["month"])[1:]
        assert (counts == cfg.days_per_month).all()

    def test_values_positive(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[1]
        trace = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
        assert (trace["steps"] >= 0).all()
        assert (trace["calories"] > 0).all()
        assert (trace["sleep_hours"] > 0).all()

    def test_steps_track_locomotion(self, setup):
        cfg, seeds, patients, clinics = setup
        # Patients with higher mean locomotion walk more on average.
        mean_steps, mean_loco = [], []
        for p in patients:
            trace = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
            mean_steps.append(float(np.mean(trace["steps"])))
            mean_loco.append(float(np.mean(p.domain_scores["locomotion"])))
        assert np.corrcoef(mean_steps, mean_loco)[0, 1] > 0.3

    def test_deterministic(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        a = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
        b = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
        assert np.array_equal(a["steps"], b["steps"])


class TestPro:
    def test_months_covered(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        assert answers["month"].tolist() == list(range(1, cfg.n_months + 1))

    def test_all_items_present(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        assert set(pro_item_names()) <= set(answers)

    def test_answers_within_scale(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[2]
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        for item in PRO_ITEMS:
            vals = answers[item.name]
            assert vals.min() >= 1 and vals.max() <= item.n_levels

    def test_item_links_cover_bank(self):
        links = build_item_links()
        assert set(links) == set(pro_item_names())

    def test_protocol_noise_widens_links(self):
        base = build_item_links(extra_noise=0.0)
        noisy = build_item_links(extra_noise=0.1)
        name = pro_item_names()[0]
        assert noisy[name].noise_sd > base[name].noise_sd


class TestMissingness:
    def test_nan_holes_created(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        gappy = apply_missingness(cfg, clinics[p.clinic], p.patient_id, answers, seeds)
        total_nan = sum(
            int(np.isnan(gappy[name]).sum()) for name in pro_item_names()
        )
        assert total_nan > 0

    def test_input_not_mutated(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        before = answers[pro_item_names()[0]].copy()
        apply_missingness(cfg, clinics[p.clinic], p.patient_id, answers, seeds)
        assert np.array_equal(answers[pro_item_names()[0]], before)

    def test_month_column_untouched(self, setup):
        cfg, seeds, patients, clinics = setup
        p = patients[0]
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        gappy = apply_missingness(cfg, clinics[p.clinic], p.patient_id, answers, seeds)
        assert np.array_equal(gappy["month"], answers["month"])

    def test_patient_level_bursts_blank_many_items_at_once(self, setup):
        cfg, seeds, patients, clinics = setup
        # In months hit by the patient-level mask, most items are NaN
        # simultaneously; count months where >90% of items are missing.
        hits = 0
        for p in patients[:10]:
            answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
            gappy = apply_missingness(
                cfg, clinics[p.clinic], p.patient_id, answers, seeds
            )
            matrix = np.column_stack([gappy[n] for n in pro_item_names()])
            frac = np.isnan(matrix).mean(axis=1)
            hits += int(np.sum(frac > 0.9))
        assert hits > 0


class TestClinical:
    def test_visit_months(self, setup):
        cfg, seeds, patients, _ = setup
        deficits = generate_visit_deficits(cfg, patients[0], seeds)
        assert deficits["visit_month"].tolist() == list(cfg.visit_months)

    def test_all_deficits_present_in_unit_interval(self, setup):
        cfg, seeds, patients, _ = setup
        deficits = generate_visit_deficits(cfg, patients[0], seeds)
        for name in deficit_names():
            vals = deficits[name]
            assert ((vals >= 0) & (vals <= 1)).all()

    def test_sicker_patients_express_more_deficits(self, setup):
        cfg, seeds, patients, _ = setup
        burden, health = [], []
        for p in patients:
            deficits = generate_visit_deficits(cfg, p, seeds)
            matrix = np.column_stack([deficits[n] for n in deficit_names()])
            burden.append(float(matrix.mean()))
            health.append(float(p.health[list(cfg.visit_months)].mean()))
        assert np.corrcoef(burden, health)[0, 1] < -0.5


class TestOutcomes:
    def test_one_row_per_window(self, setup):
        cfg, seeds, patients, _ = setup
        out = generate_outcomes(cfg, patients[0], seeds)
        assert out["window"].tolist() == [1, 2]
        assert out["visit_month"].tolist() == [9, 18]

    def test_qol_in_unit_interval(self, setup):
        cfg, seeds, patients, _ = setup
        for p in patients[:10]:
            out = generate_outcomes(cfg, p, seeds)
            assert (out["qol"] >= 0).all() and (out["qol"] <= 1).all()

    def test_sppb_in_range(self, setup):
        cfg, seeds, patients, _ = setup
        for p in patients[:10]:
            out = generate_outcomes(cfg, p, seeds)
            assert out["sppb"].min() >= 0 and out["sppb"].max() <= 12

    def test_falls_is_boolean(self, setup):
        cfg, seeds, patients, _ = setup
        out = generate_outcomes(cfg, patients[0], seeds)
        assert out["falls"].dtype == bool

    def test_falls_minority_class(self, setup):
        cfg, seeds, patients, _ = setup
        all_falls = np.concatenate(
            [generate_outcomes(cfg, p, seeds)["falls"] for p in patients]
        )
        assert 0.0 < all_falls.mean() < 0.5  # strong False majority

    def test_sppb_tracks_locomotion(self, setup):
        cfg, seeds, patients, _ = setup
        sppb, loco = [], []
        for p in patients:
            out = generate_outcomes(cfg, p, seeds)
            sppb.extend(out["sppb"].tolist())
            loco.extend(
                p.window_mean(cfg.window_months(int(j)), "locomotion")
                for j in out["window"]
            )
        assert np.corrcoef(sppb, loco)[0, 1] > 0.6
