"""Unit/integration tests for repro.pipeline.samples."""

import numpy as np
import pytest

from repro.cohort.schema import ACTIVITY_VARIABLES, pro_item_names
from repro.pipeline import build_all_sample_sets, build_dd_samples, build_kd_samples


class TestDDSamples:
    def test_feature_layout_without_fi(self, small_cohort):
        samples = build_dd_samples(small_cohort, "qol", with_fi=False)
        assert samples.feature_names == (*pro_item_names(), *ACTIVITY_VARIABLES)
        assert samples.n_features == 59

    def test_feature_layout_with_fi(self, qol_dd_samples):
        assert qol_dd_samples.feature_names[-1] == "fi"
        assert qol_dd_samples.n_features == 60

    def test_labels_match_outcome_range(self, small_cohort):
        qol = build_dd_samples(small_cohort, "qol")
        assert qol.y.min() >= 0.0 and qol.y.max() <= 1.0
        sppb = build_dd_samples(small_cohort, "sppb")
        assert sppb.y.min() >= 0 and sppb.y.max() <= 12
        falls = build_dd_samples(small_cohort, "falls")
        assert set(np.unique(falls.y)) <= {0.0, 1.0}

    def test_months_restricted_to_windows(self, qol_dd_samples):
        cfg_months = set(range(1, 9)) | set(range(10, 18))
        assert set(qol_dd_samples.months.tolist()) <= cfg_months

    def test_same_label_for_all_months_of_a_window(self, qol_dd_samples):
        s = qol_dd_samples
        key = (s.patient_ids[0], s.windows[0])
        mask = (s.patient_ids == key[0]) & (s.windows == key[1])
        assert len(set(s.y[mask].tolist())) == 1

    def test_fi_constant_within_window(self, qol_dd_samples):
        s = qol_dd_samples
        fi_col = s.feature_index("fi")
        key = (s.patient_ids[0], s.windows[0])
        mask = (s.patient_ids == key[0]) & (s.windows == key[1])
        fis = s.X[mask, fi_col]
        assert len(set(fis.tolist())) == 1

    def test_retention_below_possible(self, small_cohort, qol_dd_samples):
        possible = 30 * 16
        assert 0 < qol_dd_samples.n_samples < possible

    def test_interpolation_increases_retention(self, small_cohort):
        none = build_dd_samples(small_cohort, "qol", max_gap=0)
        some = build_dd_samples(small_cohort, "qol", max_gap=5)
        assert some.n_samples >= none.n_samples

    def test_residual_missing_bounded_by_threshold(self, qol_dd_samples):
        item_cols = [
            qol_dd_samples.feature_index(n) for n in pro_item_names()
        ]
        frac = np.isnan(qol_dd_samples.X[:, item_cols]).mean(axis=1)
        assert frac.max() <= 0.25 + 1e-9

    def test_unknown_outcome_rejected(self, small_cohort):
        with pytest.raises(ValueError, match="outcome"):
            build_dd_samples(small_cohort, "bmi")

    def test_invalid_threshold_rejected(self, small_cohort):
        with pytest.raises(ValueError, match="drop_threshold"):
            build_dd_samples(small_cohort, "qol", drop_threshold=1.5)

    def test_deterministic(self, small_cohort, qol_dd_samples):
        again = build_dd_samples(small_cohort, "qol", with_fi=True)
        assert np.array_equal(again.y, qol_dd_samples.y)
        assert np.array_equal(
            np.isnan(again.X), np.isnan(qol_dd_samples.X)
        )


class TestKDSamples:
    def test_collapses_to_ici_plus_fi(self, qol_kd_samples):
        assert qol_kd_samples.feature_names == ("ici", "fi")
        assert qol_kd_samples.kind == "kd"

    def test_without_fi_single_column(self, small_cohort):
        dd = build_dd_samples(small_cohort, "qol", with_fi=False)
        kd = build_kd_samples(dd)
        assert kd.feature_names == ("ici",)

    def test_same_labels_and_provenance(self, qol_dd_samples, qol_kd_samples):
        assert np.array_equal(qol_dd_samples.y, qol_kd_samples.y)
        assert np.array_equal(
            qol_dd_samples.patient_ids, qol_kd_samples.patient_ids
        )

    def test_ici_in_unit_interval(self, qol_kd_samples):
        ici = qol_kd_samples.X[:, 0]
        observed = ici[~np.isnan(ici)]
        assert observed.min() >= 0.0 and observed.max() <= 1.0

    def test_rejects_kd_input(self, qol_kd_samples):
        with pytest.raises(ValueError, match="DD"):
            build_kd_samples(qol_kd_samples)


class TestSampleSetOps:
    def test_filter_clinic(self, qol_dd_samples):
        sub = qol_dd_samples.filter_clinic("modena")
        assert set(sub.clinics.tolist()) == {"modena"}
        assert sub.n_samples < qol_dd_samples.n_samples

    def test_filter_unknown_clinic(self, qol_dd_samples):
        with pytest.raises(ValueError):
            qol_dd_samples.filter_clinic("atlantis")

    def test_feature_index(self, qol_dd_samples):
        assert qol_dd_samples.feature_index("steps") == 56

    def test_feature_index_missing(self, qol_dd_samples):
        with pytest.raises(KeyError):
            qol_dd_samples.feature_index("nope")


class TestBuildAll:
    def test_all_twelve_sets(self, small_cohort):
        sets = build_all_sample_sets(small_cohort)
        assert len(sets) == 12
        for (outcome, kind, with_fi), samples in sets.items():
            assert samples.outcome == outcome
            assert samples.kind == kind
            assert samples.with_fi == with_fi
