"""Vectorised group-by passes vs the preserved loop oracles.

The sample-set build, QA statistics and lookup helpers were rewritten
as numpy group-by passes (``repro.pipeline.prep`` + vectorised
``Table.group_by``); the originals live on in
``repro.pipeline.reference``.  These tests prove the two produce
identical outputs — bitwise for every float — including the edge cases
the loops handled implicitly (empty patients, single-row groups, NaN
labels).
"""

import numpy as np
import pytest

from repro.pipeline import build_dd_samples, gap_report
from repro.pipeline import reference as ref
from repro.pipeline.impute import interpolate_blocks, interpolate_matrix
from repro.pipeline.prep import cohort_prep, group_sort
from repro.tabular import Table


def assert_matrices_equal(a: np.ndarray, b: np.ndarray) -> None:
    assert a.shape == b.shape
    assert a.dtype == b.dtype
    assert ((a == b) | (np.isnan(a) & np.isnan(b))).all()


class TestSampleBuildEquivalence:
    @pytest.mark.parametrize("outcome", ["qol", "falls"])
    @pytest.mark.parametrize("with_fi", [False, True])
    def test_bitwise_identical_samples(self, small_cohort, outcome, with_fi):
        new = build_dd_samples(small_cohort, outcome, with_fi=with_fi)
        old = ref.build_dd_samples_loop(small_cohort, outcome, with_fi=with_fi)
        assert new.feature_names == old.feature_names
        assert_matrices_equal(new.X, old.X)
        assert np.array_equal(new.y, old.y)
        assert (new.patient_ids == old.patient_ids).all()
        assert (new.clinics == old.clinics).all()
        assert np.array_equal(new.windows, old.windows)
        assert np.array_equal(new.months, old.months)

    @pytest.mark.parametrize("max_gap", [0, 1, 17])
    def test_identical_across_interpolation_bounds(self, small_cohort, max_gap):
        new = build_dd_samples(small_cohort, "sppb", max_gap=max_gap)
        old = ref.build_dd_samples_loop(small_cohort, "sppb", max_gap=max_gap)
        assert_matrices_equal(new.X, old.X)
        assert np.array_equal(new.months, old.months)

    def test_gap_report_identical(self, small_cohort):
        assert gap_report(small_cohort) == ref.gap_report_loop(small_cohort)

    def test_label_plane_matches_loop_lookup_with_nan_labels(self, small_cohort):
        # Synthetic cohorts carry NaN outcome values for some visits —
        # exactly the entries the sample build must skip.  The dense
        # prep plane must agree with the loop dict entry-for-entry and
        # be NaN (= skip) everywhere the dict has no entry.
        prep = cohort_prep(small_cohort)
        code_of = prep.code_of
        n_windows = small_cohort.config.n_windows
        for outcome in ("qol", "sppb", "falls"):
            plane = prep.labels(outcome)
            old = ref.label_lookup_loop(small_cohort, outcome)
            covered = set()
            for (pid, window), value in old.items():
                if window > n_windows:
                    continue  # outside the plane, never queried
                got = plane[code_of[pid], window]
                assert (np.isnan(value) and np.isnan(got)) or value == got
                covered.add((code_of[pid], window))
            for code in range(len(prep.patient_ids)):
                for window in range(1, n_windows + 1):
                    if (code, window) not in covered:
                        assert np.isnan(plane[code, window])

    def test_fi_plane_matches_loop_lookup(self, small_cohort):
        prep = cohort_prep(small_cohort)
        old = ref.fi_lookup_loop(small_cohort)
        codes, months = np.nonzero(~np.isnan(prep.fi))
        plane_entries = {
            (prep.patient_ids[c], int(m)): float(prep.fi[c, m])
            for c, m in zip(codes, months)
        }
        assert plane_entries == {
            k: v for k, v in old.items() if not np.isnan(v)
        }

    def test_pro_grouping_matches_loop(self, small_cohort):
        prep = cohort_prep(small_cohort)
        old = ref.pro_rows_by_patient_loop(small_cohort)
        # first-appearance patient order
        assert prep.patient_ids.tolist() == list(old)
        starts = prep.pro_starts
        for code, pid in enumerate(prep.patient_ids):
            months, items = old[pid]
            assert np.array_equal(
                prep.pro_months_sorted[starts[code] : starts[code + 1]], months
            )
            assert_matrices_equal(
                prep.pro_matrix_sorted[starts[code] : starts[code + 1]],
                np.asarray(items, dtype=np.float64),
            )

    def test_prep_cached_per_cohort(self, small_cohort):
        assert cohort_prep(small_cohort) is cohort_prep(small_cohort)


class TestGroupSort:
    def test_empty_input(self):
        keys = np.array([], dtype=object)
        order, starts, codes, uniq = group_sort(keys, np.array([], dtype=np.int64))
        assert order.size == 0 and codes.size == 0
        assert starts.tolist() == [0]
        assert uniq.size == 0

    def test_single_row_groups(self):
        keys = np.array(["c", "a", "b"], dtype=object)
        order, starts, codes, uniq = group_sort(keys, np.array([5, 1, 3]))
        assert uniq.tolist() == ["c", "a", "b"]  # first appearance, not sorted
        assert starts.tolist() == [0, 1, 2, 3]
        assert order.tolist() == [0, 1, 2]

    def test_sorts_within_group_stably(self):
        keys = np.array(["p", "q", "p", "q", "p"], dtype=object)
        months = np.array([3, 2, 1, 2, 3])
        order, starts, codes, uniq = group_sort(keys, months)
        assert uniq.tolist() == ["p", "q"]
        # group p: months [3, 1, 3] at rows [0, 2, 4] -> sorted 1, 3, 3
        # with the tie broken by original row order (0 before 4).
        assert order[starts[0] : starts[1]].tolist() == [2, 0, 4]
        # group q: tie on month 2 -> original order 1, 3.
        assert order[starts[1] : starts[2]].tolist() == [1, 3]
        assert codes.tolist() == [0, 1, 0, 1, 0]


class TestTableGroupByVectorised:
    """The vectorised Table.group_by against a per-group recomputation."""

    @staticmethod
    def _loop_group_by(table, keys, aggregations):
        """Reference semantics: old per-row dict grouping + per-group agg."""
        from repro.tabular.table import _AGGREGATIONS

        arrays = [table[k] for k in keys]
        groups: dict[tuple, list[int]] = {}
        for i in range(table.num_rows):
            groups.setdefault(tuple(arr[i] for arr in arrays), []).append(i)
        out: dict[str, list] = {k: [] for k in keys}
        out.update({c: [] for c in aggregations})
        for key_tuple, idx in groups.items():
            for k, v in zip(keys, key_tuple):
                out[k].append(v)
            for cname, agg in aggregations.items():
                fn = _AGGREGATIONS[agg] if isinstance(agg, str) else agg
                out[cname].append(fn(table[cname][np.asarray(idx)]))
        return Table(out)

    @pytest.mark.parametrize(
        "agg", ["mean", "sum", "min", "max", "std", "median", "count", "first", "last"]
    )
    def test_uniform_groups_match_loop(self, agg):
        rng = np.random.default_rng(3)
        n_groups, size = 37, 8
        table = Table(
            {
                "k": np.repeat(np.arange(n_groups), size),
                "v": np.where(
                    rng.random(n_groups * size) < 0.2,
                    np.nan,
                    rng.normal(size=n_groups * size),
                ),
            }
        )
        with np.errstate(all="ignore"):
            got = table.group_by("k", {"v": agg})
            want = self._loop_group_by(table, ["k"], {"v": agg})
        assert got.column_names == want.column_names
        assert np.array_equal(got["k"], want["k"])
        assert_matrices_equal(
            got["v"][None, :].astype(np.float64),
            want["v"][None, :].astype(np.float64),
        )

    def test_single_row_groups_match_loop(self):
        table = Table({"k": ["b", "a", "c"], "v": [1.5, np.nan, 3.0]})
        with np.errstate(all="ignore"):
            got = table.group_by("k", {"v": "mean"})
            want = self._loop_group_by(table, ["k"], {"v": "mean"})
        assert got["k"].tolist() == ["b", "a", "c"]
        assert_matrices_equal(got["v"], want["v"])

    def test_unequal_group_sizes_match_loop(self):
        table = Table(
            {"k": [0, 0, 1, 0, 2, 2], "v": [1.0, 2.0, 3.0, np.nan, 5.0, 6.0]}
        )
        got = table.group_by("k", {"v": "mean"})
        want = self._loop_group_by(table, ["k"], {"v": "mean"})
        assert np.array_equal(got["k"], want["k"])
        assert_matrices_equal(got["v"], want["v"])

    def test_nan_keys_collapse_to_one_group(self):
        # Documented behaviour change vs the per-row loop: all NaN keys
        # form a single group (np.unique semantics) instead of one group
        # per row (a nan != nan dict artefact).
        table = Table({"k": [np.nan, 1.0, np.nan], "v": [1.0, 2.0, 3.0]})
        got = table.group_by("k", {"v": "sum"})
        assert got.num_rows == 2
        assert got["v"].tolist() == [4.0, 2.0]

    def test_empty_table(self):
        table = Table({"k": np.array([], dtype=np.float64), "v": np.array([], dtype=np.float64)})
        got = table.group_by("k", {"v": "mean"})
        assert got.num_rows == 0
        assert got.column_names == ("k", "v")

    def test_multi_key_first_appearance_order(self):
        table = Table(
            {
                "a": ["x", "x", "y", "x"],
                "b": [2, 1, 2, 2],
                "v": [1.0, 2.0, 3.0, 4.0],
            }
        )
        got = table.group_by(["a", "b"], {"v": "sum"})
        assert list(zip(got["a"].tolist(), got["b"].tolist())) == [
            ("x", 2),
            ("x", 1),
            ("y", 2),
        ]
        assert got["v"].tolist() == [5.0, 2.0, 3.0]


class TestInterpolateBlocks:
    @pytest.mark.parametrize("max_gap", [0, 1, 5, 17])
    def test_matches_per_block_loop(self, rng, max_gap):
        blocks = rng.normal(size=(40, 8, 7))
        blocks[rng.random(blocks.shape) < 0.5] = np.nan
        want = np.stack([interpolate_matrix(b, max_gap) for b in blocks])
        assert_matrices_equal(interpolate_blocks(blocks, max_gap), want)

    def test_all_missing_series_untouched(self):
        blocks = np.full((3, 6, 2), np.nan)
        out = interpolate_blocks(blocks, 5)
        assert np.isnan(out).all()

    def test_boundary_gaps_stay_missing(self):
        blocks = np.array([[[np.nan], [1.0], [np.nan], [3.0], [np.nan]]])
        out = interpolate_blocks(blocks, 5)
        assert np.isnan(out[0, 0, 0]) and np.isnan(out[0, 4, 0])
        assert out[0, 2, 0] == 2.0

    def test_empty_stack(self):
        assert interpolate_blocks(np.empty((0, 8, 3)), 5).shape == (0, 8, 3)

    def test_does_not_mutate_input_single_block(self):
        # Regression: for m == 1 the internal transpose is already
        # contiguous; without an explicit copy the fill mutated the
        # caller's array in place.
        blocks = np.array([[[1.0], [np.nan], [3.0], [4.0]]])
        out = interpolate_blocks(blocks, 2)
        assert np.isnan(blocks[0, 1, 0])
        assert not np.shares_memory(out, blocks)
        assert out[0, 1, 0] == 2.0

    def test_rejects_negative_gap_and_bad_shape(self):
        with pytest.raises(ValueError):
            interpolate_blocks(np.zeros((2, 2, 2)), -1)
        with pytest.raises(ValueError):
            interpolate_blocks(np.zeros((2, 2)), 1)
