"""Reference loop implementations of the data-prep passes.

The vectorised sample-set build (:mod:`repro.pipeline.samples`) and QA
statistics (:mod:`repro.pipeline.qa`) replaced the original per-row
Python loops with numpy group-by passes.  The originals are preserved
here verbatim as the oracle: the equivalence tests
(``tests/pipeline/test_groupby.py``) prove the vectorised passes produce
identical samples and statistics, and the pipeline benchmark
(``benchmarks/test_bench_pipeline.py``) measures the speedup against
them.  Mirrors the ``explain/reference.py`` pattern of the batched
TreeSHAP engine.

Do not "optimise" this module — its value is being the unoptimised
original.
"""

from __future__ import annotations

import numpy as np

from repro.cohort.dataset import CohortDataset
from repro.cohort.outcomes import OUTCOME_NAMES
from repro.cohort.schema import ACTIVITY_VARIABLES, pro_item_names
from repro.frailty import FrailtyIndexCalculator
from repro.pipeline.aggregate import monthly_activity
from repro.pipeline.impute import interpolate_matrix
from repro.synth import gap_lengths

__all__ = [
    "activity_lookup_loop",
    "fi_lookup_loop",
    "label_lookup_loop",
    "pro_rows_by_patient_loop",
    "build_dd_samples_loop",
    "gap_report_loop",
]


def activity_lookup_loop(monthly) -> dict[tuple[str, int], np.ndarray]:
    """Original per-row ``(patient, month) -> activity vector`` index."""
    pids = monthly["patient_id"]
    months = monthly["month"]
    matrix = np.column_stack([monthly[v] for v in ACTIVITY_VARIABLES])
    return {
        (pids[i], int(months[i])): matrix[i] for i in range(monthly.num_rows)
    }


def fi_lookup_loop(cohort: CohortDataset) -> dict[tuple[str, int], float]:
    """Original per-row ``(patient, visit_month) -> FI`` loop."""
    fi = FrailtyIndexCalculator().compute(cohort.visits)
    pids = cohort.visits["patient_id"]
    months = cohort.visits["visit_month"]
    return {
        (pids[i], int(months[i])): float(fi[i]) for i in range(len(fi))
    }


def label_lookup_loop(
    cohort: CohortDataset, outcome: str
) -> dict[tuple[str, int], float]:
    """Original per-row ``(patient, window) -> label`` loop."""
    pids = cohort.visits["patient_id"]
    months = cohort.visits["visit_month"]
    values = cohort.visits[outcome]
    out: dict[tuple[str, int], float] = {}
    for i in range(cohort.visits.num_rows):
        m = int(months[i])
        if m > 0 and m % 9 == 0:
            out[(pids[i], m // 9)] = float(values[i])
    return out


def pro_rows_by_patient_loop(
    cohort: CohortDataset,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Original per-row grouping of PRO rows by patient."""
    item_names = pro_item_names()
    pids = cohort.pro["patient_id"]
    months = cohort.pro["month"]
    matrix = np.column_stack([cohort.pro[name] for name in item_names])
    by_patient: dict[str, list[int]] = {}
    for i in range(cohort.pro.num_rows):
        by_patient.setdefault(pids[i], []).append(i)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for pid, idx in by_patient.items():
        idx = np.asarray(idx, dtype=np.int64)
        order = np.argsort(months[idx], kind="stable")
        idx = idx[order]
        out[pid] = (months[idx], matrix[idx])
    return out


def build_dd_samples_loop(
    cohort: CohortDataset,
    outcome: str,
    with_fi: bool = False,
    max_gap: int = 5,
    drop_threshold: float = 0.25,
):
    """Original row-at-a-time ``Sample_o`` build (one window at a time,
    one month at a time, one ``np.concatenate`` per retained sample)."""
    from repro.pipeline.samples import SampleSet

    if outcome not in OUTCOME_NAMES:
        raise ValueError(f"unknown outcome {outcome!r}; have {OUTCOME_NAMES}")
    if not 0.0 <= drop_threshold <= 1.0:
        raise ValueError("drop_threshold must be in [0, 1]")

    cfg = cohort.config
    item_names = pro_item_names()
    activity = activity_lookup_loop(monthly_activity(cohort.daily))
    clinic_of = cohort.clinic_of()
    fi_of = fi_lookup_loop(cohort)
    labels = label_lookup_loop(cohort, outcome)
    pro_rows = pro_rows_by_patient_loop(cohort)

    feature_names = [*item_names, *ACTIVITY_VARIABLES] + (["fi"] if with_fi else [])

    rows: list[np.ndarray] = []
    ys: list[float] = []
    pids: list[str] = []
    clinics: list[str] = []
    windows: list[int] = []
    months_out: list[int] = []

    for pid, (months, items) in pro_rows.items():
        for j in range(1, cfg.n_windows + 1):
            label = labels.get((pid, j))
            if label is None or np.isnan(label):
                continue
            window_months = cfg.window_months(j)
            month_pos = {int(m): k for k, m in enumerate(months)}
            idx = [month_pos[m] for m in window_months if m in month_pos]
            if len(idx) != len(window_months):
                continue  # incomplete acquisition schedule (not expected)
            block = interpolate_matrix(items[idx], max_gap)
            fi_value = fi_of.get((pid, 9 * (j - 1)), np.nan) if with_fi else None

            for k, month in enumerate(window_months):
                item_vec = block[k]
                missing_frac = float(np.isnan(item_vec).mean())
                if missing_frac > drop_threshold:
                    continue
                act = activity.get((pid, month))
                if act is None:
                    continue
                feats = [item_vec, act]
                if with_fi:
                    feats.append(np.array([fi_value]))
                rows.append(np.concatenate(feats))
                ys.append(float(label))
                pids.append(pid)
                clinics.append(clinic_of[pid])
                windows.append(j)
                months_out.append(month)

    if not rows:
        raise ValueError(
            f"no samples survived QA for outcome {outcome!r}; "
            "check missingness / drop_threshold settings"
        )
    return SampleSet(
        outcome=outcome,
        kind="dd",
        with_fi=with_fi,
        X=np.vstack(rows),
        y=np.asarray(ys, dtype=np.float64),
        feature_names=tuple(feature_names),
        patient_ids=np.asarray(pids, dtype=object),
        clinics=np.asarray(clinics, dtype=object),
        windows=np.asarray(windows, dtype=np.int64),
        months=np.asarray(months_out, dtype=np.int64),
    )


def gap_report_loop(cohort: CohortDataset):
    """Original per-(patient, item) gap-statistics loop."""
    from repro.pipeline.qa import GapReport

    item_names = pro_item_names()
    pids = cohort.pro["patient_id"]
    months = cohort.pro["month"]
    matrix = np.column_stack([cohort.pro[name] for name in item_names])

    by_patient: dict[str, list[int]] = {}
    for i in range(cohort.pro.num_rows):
        by_patient.setdefault(pids[i], []).append(i)

    all_lengths: list[np.ndarray] = []
    gaps_per_patient: list[int] = []
    total_missing = 0
    total_cells = 0
    for pid, idx in by_patient.items():
        idx = np.asarray(idx, dtype=np.int64)
        order = np.argsort(months[idx], kind="stable")
        block = matrix[idx[order]]
        n_gaps = 0
        for j in range(block.shape[1]):
            lengths = gap_lengths(np.isnan(block[:, j]))
            if lengths.size:
                all_lengths.append(lengths)
                n_gaps += len(lengths)
        gaps_per_patient.append(n_gaps)
        total_missing += int(np.isnan(block).sum())
        total_cells += block.size

    lengths = (
        np.concatenate(all_lengths) if all_lengths else np.array([], dtype=np.int64)
    )
    return GapReport(
        mean_gap_length=float(lengths.mean()) if lengths.size else 0.0,
        max_gap_length=int(lengths.max()) if lengths.size else 0,
        mean_gaps_per_patient=float(np.mean(gaps_per_patient)),
        max_gaps_per_patient=int(np.max(gaps_per_patient)),
        missing_fraction=total_missing / total_cells if total_cells else 0.0,
        n_patients=len(by_patient),
    )
