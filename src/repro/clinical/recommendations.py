"""From SHAP attributions to domain-level intervention guidance.

The mapping chain is: feature -> IC domain (via the ontology; the FI
feature maps to a dedicated ``clinical_baseline`` bucket) -> summed
negative contribution per domain -> ranked domains -> intervention
templates.  Everything is deterministic and auditable: each
recommendation lists the features (and their SHAP values) that
triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knowledge import IntrinsicCapacityOntology

__all__ = [
    "DomainImpact",
    "aggregate_by_domain",
    "Recommendation",
    "DecisionSupportReport",
    "recommend",
    "DEFAULT_INTERVENTIONS",
]

#: Bucket for features outside the IC ontology (the Frailty Index).
CLINICAL_BASELINE = "clinical_baseline"

#: Per-domain intervention templates (ICOPE-style guidance [16]).
DEFAULT_INTERVENTIONS: dict[str, str] = {
    "locomotion": (
        "structured physical-activity programme (gait, balance and "
        "resistance training); review fall hazards"
    ),
    "cognition": (
        "cognitive screening and stimulation; review medications with "
        "anticholinergic burden"
    ),
    "psychological": (
        "mood assessment; consider psychological support or social "
        "prescribing"
    ),
    "vitality": (
        "nutritional review and sleep-hygiene counselling; screen for "
        "fatigue causes"
    ),
    "sensory": "vision and hearing assessment; assistive-device check",
    CLINICAL_BASELINE: (
        "comprehensive geriatric re-assessment: the clinical frailty "
        "baseline is depressing the predicted outcome"
    ),
}


@dataclass(frozen=True)
class DomainImpact:
    """Aggregated SHAP mass of one domain for one patient.

    ``negative`` sums contributions pushing the outcome down (the
    actionable part); ``positive`` sums protective contributions;
    ``features`` lists the (name, shap) pairs behind ``negative``,
    worst first.
    """

    domain: str
    negative: float
    positive: float
    features: tuple[tuple[str, float], ...]


def aggregate_by_domain(
    shap_row: np.ndarray,
    feature_names: list[str],
    ontology: IntrinsicCapacityOntology | None = None,
) -> dict[str, DomainImpact]:
    """Fold a SHAP vector into per-IC-domain impact summaries.

    Features unknown to the ontology (e.g. ``fi``) land in the
    ``clinical_baseline`` bucket.
    """
    shap_row = np.asarray(shap_row, dtype=np.float64)
    if len(shap_row) != len(feature_names):
        raise ValueError("shap_row and feature_names lengths differ")
    onto = ontology or IntrinsicCapacityOntology.default()

    negatives: dict[str, list[tuple[str, float]]] = {}
    positives: dict[str, float] = {}
    for name, value in zip(feature_names, shap_row):
        try:
            domain = onto.domain_of(name)
        except KeyError:
            domain = CLINICAL_BASELINE
        if value < 0:
            negatives.setdefault(domain, []).append((name, float(value)))
            positives.setdefault(domain, 0.0)
        else:
            positives[domain] = positives.get(domain, 0.0) + float(value)
            negatives.setdefault(domain, [])

    out: dict[str, DomainImpact] = {}
    # sorted(): set order follows the per-process string-hash seed; the
    # report's domain order must not.
    for domain in sorted(set(negatives) | set(positives)):
        neg_features = sorted(negatives.get(domain, []), key=lambda kv: kv[1])
        out[domain] = DomainImpact(
            domain=domain,
            negative=float(sum(v for _, v in neg_features)),
            positive=float(positives.get(domain, 0.0)),
            features=tuple(neg_features),
        )
    return out


@dataclass(frozen=True)
class Recommendation:
    """One ranked intervention suggestion."""

    domain: str
    impact: float
    action: str
    evidence: tuple[tuple[str, float], ...]

    def render(self) -> str:
        """One-paragraph rendering with its evidence trail."""
        lines = [f"[{self.domain}] impact {self.impact:+.4f}: {self.action}"]
        for name, value in self.evidence[:3]:
            lines.append(f"    evidence: {name} ({value:+.4f})")
        return "\n".join(lines)


@dataclass(frozen=True)
class DecisionSupportReport:
    """Ranked recommendations for one patient."""

    patient_id: str
    prediction: float
    recommendations: tuple[Recommendation, ...]

    def render(self) -> str:
        """Plain-text report for the clinician."""
        lines = [
            f"decision support for {self.patient_id} "
            f"(predicted outcome {self.prediction:+.3f})"
        ]
        if not self.recommendations:
            lines.append("  no impaired domains detected")
        for rec in self.recommendations:
            lines.extend("  " + line for line in rec.render().splitlines())
        return "\n".join(lines)


def recommend(
    patient_id: str,
    prediction: float,
    shap_row: np.ndarray,
    feature_names: list[str],
    ontology: IntrinsicCapacityOntology | None = None,
    interventions: dict[str, str] | None = None,
    min_impact: float = 0.0,
    max_recommendations: int = 3,
) -> DecisionSupportReport:
    """Build the ranked decision-support report for one patient.

    Parameters
    ----------
    shap_row / feature_names:
        The patient's SHAP vector and its column names.
    min_impact:
        Only domains whose summed negative contribution is more
        negative than ``-min_impact`` trigger a recommendation.
    max_recommendations:
        Cap on the number of returned recommendations (worst domains
        first).
    """
    if min_impact < 0:
        raise ValueError("min_impact must be >= 0")
    if max_recommendations < 1:
        raise ValueError("max_recommendations must be >= 1")
    catalogue = interventions or DEFAULT_INTERVENTIONS

    impacts = aggregate_by_domain(shap_row, feature_names, ontology)
    harmed = [
        impact
        for impact in impacts.values()
        if impact.negative < -min_impact and impact.features
    ]
    harmed.sort(key=lambda im: im.negative)

    recommendations = tuple(
        Recommendation(
            domain=impact.domain,
            impact=impact.negative,
            action=catalogue.get(
                impact.domain, "review this domain with the care team"
            ),
            evidence=impact.features,
        )
        for impact in harmed[:max_recommendations]
    )
    return DecisionSupportReport(
        patient_id=patient_id,
        prediction=float(prediction),
        recommendations=recommendations,
    )
