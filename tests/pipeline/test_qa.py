"""Unit tests for repro.pipeline.qa."""

import pytest

from repro.pipeline import gap_report, retention_sweep


class TestGapReport:
    def test_fields_populated(self, small_cohort):
        report = gap_report(small_cohort)
        assert report.n_patients == 30
        assert report.mean_gap_length > 0
        assert report.max_gap_length >= report.mean_gap_length
        assert report.max_gaps_per_patient >= report.mean_gaps_per_patient
        assert 0.0 < report.missing_fraction < 1.0

    def test_gap_lengths_bounded_by_series(self, small_cohort):
        report = gap_report(small_cohort)
        assert report.max_gap_length <= small_cohort.config.n_months

    def test_render_mentions_key_stats(self, small_cohort):
        text = gap_report(small_cohort).render()
        assert "mean length" in text and "per patient" in text


class TestRetentionSweep:
    def test_monotone_in_max_gap(self, small_cohort):
        sweep = retention_sweep(small_cohort, max_gaps=(0, 1, 5))
        retained = [sweep[g]["retained"] for g in (0, 1, 5)]
        assert retained == sorted(retained)

    def test_fraction_consistency(self, small_cohort):
        sweep = retention_sweep(small_cohort, max_gaps=(5,))
        row = sweep[5]
        assert row["fraction"] == pytest.approx(
            row["retained"] / row["possible"]
        )

    def test_possible_counts_labelled_slots(self, small_cohort):
        sweep = retention_sweep(small_cohort, max_gaps=(0,))
        assert sweep[0]["possible"] == 30 * 16  # patients x monthly slots
