"""Fig. 6/7 SHAP sweeps fanned across the executor == serial, bitwise.

The runners' ``n_jobs`` shards the population SHAP pass over the
shared-memory model plane; because the batched engine is
row-deterministic, the parallel artefacts must equal the serial ones
bit for bit — not approximately.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentContext, run_fig6, run_fig7
from repro.experiments.fig6_local_explanations import render_fig6
from repro.experiments.fig7_global_dependence import render_fig7

from tests.conftest import small_config


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=11, n_folds=2, cohort_config=small_config())


class TestFig6Parallel:
    def test_two_workers_bitwise_equal_serial(self, ctx):
        serial = run_fig6(ctx, n_jobs=1)
        fanned = run_fig6(ctx, n_jobs=2)
        assert fanned.patient_a == serial.patient_a
        assert fanned.patient_b == serial.patient_b
        assert fanned.prediction_a == serial.prediction_a
        assert fanned.prediction_b == serial.prediction_b
        assert (
            fanned.explanation_a.contributions
            == serial.explanation_a.contributions
        )
        assert (
            fanned.explanation_b.contributions
            == serial.explanation_b.contributions
        )
        assert render_fig6(fanned) == render_fig6(serial)


class TestFig7Parallel:
    def test_two_workers_bitwise_equal_serial(self, ctx):
        serial = run_fig7(ctx, n_jobs=1)
        fanned = run_fig7(ctx, n_jobs=2)
        assert fanned.feature == serial.feature
        assert np.array_equal(fanned.values, serial.values)
        assert np.array_equal(fanned.mean_shap, serial.mean_shap)
        assert fanned.threshold == serial.threshold
        assert render_fig7(fanned) == render_fig7(serial)
