"""Reporters: human-readable text and machine-readable JSON.

The JSON document is what CI archives (``python -m repro lint
--format=json --out results/lint.json``): a stable, sorted record of
findings, justified suppressions and notes, with ``clean`` as the gate
bit.  The text form is for humans at the terminal.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.rules import RULES

__all__ = ["render_json", "render_text", "report_to_dict"]

#: Bump when the JSON shape changes.
JSON_VERSION = 1


def report_to_dict(report: LintReport) -> dict:
    """The machine-readable form of a report (JSON-serialisable)."""
    return {
        "version": JSON_VERSION,
        "clean": report.clean,
        "files_scanned": report.files_scanned,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col + 1,
                "message": f.message,
            }
            for f in report.findings
        ],
        "suppressed": [
            {
                "rule": s.finding.rule,
                "path": s.finding.path,
                "line": s.finding.line,
                "reason": s.reason,
            }
            for s in report.suppressed
        ],
        "notes": list(report.notes),
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True) + "\n"


def render_text(report: LintReport) -> str:
    lines: list[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    for note in report.notes:
        lines.append(f"note: {note}")
    n = len(report.findings)
    summary = (
        f"repro lint: {n} violation{'s' if n != 1 else ''}"
        f" in {report.files_scanned} files"
        f" ({len(report.suppressed)} pragma-suppressed)"
    )
    if report.clean:
        summary = (
            f"repro lint: clean ({report.files_scanned} files, "
            f"{len(report.suppressed)} pragma-suppressed)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_rule_table() -> str:
    """One line per registered rule (``--list-rules``)."""
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        scope = ", ".join(sorted(rule.tags)) if rule.tags else "all files"
        lines.append(f"{rule_id}  [{scope}]  {rule.title}")
    return "\n".join(lines)
