"""A small LRU cache for exact scoring results.

The scoring service keys entries on ``(model version tag, row bin
codes)``.  Bin codes are the model's quantized view of a row: every tree
routes on codes alone, so two raw rows with equal codes produce
identical predictions and SHAP values.  A hit therefore returns the
*exact* answer — this is a correctness-preserving cache, not an
approximation, and it needs no TTL (entries are invalidated by the
version tag changing, never by time).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters observed on an :class:`LRUCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``capacity=0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op), which keeps the service code branch-free.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Pure inspection: no recency update, no stats change.
        return key in self._data

    def get(self, key: Hashable, default=None):
        """Return the cached value (marking it most recent) or ``default``."""
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._data.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh an entry, evicting the LRU one when full."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._data.clear()

    @property
    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._data),
            capacity=self.capacity,
        )
