"""Unit tests for repro.boosting.tree (structure + prediction)."""

import numpy as np
import pytest

from repro.boosting import Tree, TreeEnsemble


def make_stump(feature=0, threshold=0.5, left=-1.0, right=1.0, missing_left=True):
    """Root with two leaves: x[feature] <= threshold -> left leaf."""
    return Tree(
        children_left=np.array([1, -1, -1]),
        children_right=np.array([2, -1, -1]),
        feature=np.array([feature, -1, -1]),
        threshold=np.array([threshold, np.nan, np.nan]),
        missing_left=np.array([missing_left, False, False]),
        value=np.array([0.0, left, right]),
        cover=np.array([10.0, 4.0, 6.0]),
    )


def make_depth2():
    """Two-level tree over features 0 and 1."""
    return Tree(
        children_left=np.array([1, 3, 5, -1, -1, -1, -1]),
        children_right=np.array([2, 4, 6, -1, -1, -1, -1]),
        feature=np.array([0, 1, 1, -1, -1, -1, -1]),
        threshold=np.array([0.0, -1.0, 1.0, np.nan, np.nan, np.nan, np.nan]),
        missing_left=np.array([True, False, True, False, False, False, False]),
        value=np.array([0.0, 0.0, 0.0, 10.0, 20.0, 30.0, 40.0]),
        cover=np.array([16.0, 8.0, 8.0, 4.0, 4.0, 4.0, 4.0]),
    )


class TestTreeStructure:
    def test_leaf_counts(self):
        tree = make_stump()
        assert tree.n_nodes == 3
        assert tree.n_leaves == 2

    def test_is_leaf(self):
        tree = make_stump()
        assert not tree.is_leaf(0)
        assert tree.is_leaf(1) and tree.is_leaf(2)

    def test_max_depth(self):
        assert make_stump().max_depth() == 1
        assert make_depth2().max_depth() == 2

    def test_used_features(self):
        assert make_depth2().used_features().tolist() == [0, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            Tree(
                children_left=np.array([-1]),
                children_right=np.array([-1]),
                feature=np.array([-1]),
                threshold=np.array([np.nan]),
                missing_left=np.array([False]),
                value=np.array([1.0, 2.0]),
                cover=np.array([1.0]),
            )

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Tree(*[np.array([])] * 7)


class TestPrediction:
    def test_stump_routing(self):
        tree = make_stump()
        X = np.array([[0.2], [0.8]])
        assert tree.predict(X).tolist() == [-1.0, 1.0]

    def test_boundary_goes_left(self):
        tree = make_stump(threshold=0.5)
        assert tree.predict(np.array([[0.5]]))[0] == -1.0

    def test_missing_routing_left(self):
        tree = make_stump(missing_left=True)
        assert tree.predict(np.array([[np.nan]]))[0] == -1.0

    def test_missing_routing_right(self):
        tree = make_stump(missing_left=False)
        assert tree.predict(np.array([[np.nan]]))[0] == 1.0

    def test_depth2_all_leaves_reachable(self):
        tree = make_depth2()
        X = np.array(
            [[-1.0, -2.0], [-1.0, 0.0], [1.0, 0.0], [1.0, 2.0]]
        )
        assert tree.predict(X).tolist() == [10.0, 20.0, 30.0, 40.0]

    def test_predict_matches_decision_path(self, rng):
        tree = make_depth2()
        X = rng.normal(size=(50, 2))
        preds = tree.predict(X)
        for i in range(50):
            leaf = tree.decision_path(X[i])[-1]
            assert preds[i] == tree.value[leaf]

    def test_decision_path_starts_at_root(self):
        path = make_depth2().decision_path(np.array([0.0, 0.0]))
        assert path[0] == 0 and len(path) == 3

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            make_stump().predict(np.array([1.0]))


class TestBinnedPrediction:
    @staticmethod
    def make_binned_stump(missing_left=False):
        """Stump over bin codes: code <= 2 -> left, missing bin = 5."""
        return Tree(
            children_left=np.array([1, -1, -1]),
            children_right=np.array([2, -1, -1]),
            feature=np.array([0, -1, -1]),
            threshold=np.array([0.5, np.nan, np.nan]),
            missing_left=np.array([missing_left, False, False]),
            value=np.array([0.0, -1.0, 1.0]),
            cover=np.array([10.0, 4.0, 6.0]),
            bin_threshold=np.array([2, -1, -1]),
        )

    def test_binned_routing(self):
        tree = self.make_binned_stump()
        codes = np.array([[0], [2], [3], [4]], dtype=np.uint8)
        assert tree.predict_binned(codes, 5).tolist() == [-1.0, -1.0, 1.0, 1.0]

    def test_missing_bin_follows_default_direction(self):
        codes = np.array([[5]], dtype=np.uint8)
        assert self.make_binned_stump(False).predict_binned(codes, 5)[0] == 1.0
        assert self.make_binned_stump(True).predict_binned(codes, 5)[0] == -1.0

    def test_tree_without_bin_thresholds_rejected(self):
        with pytest.raises(ValueError, match="bin thresholds"):
            make_stump().predict_binned(np.zeros((1, 1), dtype=np.uint8), 5)

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            self.make_binned_stump().predict_binned(
                np.zeros(3, dtype=np.uint8), 5
            )

    def test_bin_threshold_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bin_threshold"):
            Tree(
                children_left=np.array([-1]),
                children_right=np.array([-1]),
                feature=np.array([-1]),
                threshold=np.array([np.nan]),
                missing_left=np.array([False]),
                value=np.array([1.0]),
                cover=np.array([1.0]),
                bin_threshold=np.array([-1, -1]),
            )


class TestEnsemble:
    def test_additivity(self):
        ens = TreeEnsemble(base_score=5.0, trees=[make_stump(), make_stump()])
        X = np.array([[0.2]])
        assert ens.predict_raw(X)[0] == pytest.approx(5.0 - 2.0)

    def test_n_trees_truncation(self):
        ens = TreeEnsemble(base_score=0.0, trees=[make_stump(), make_stump()])
        X = np.array([[0.9]])
        assert ens.predict_raw(X, n_trees=1)[0] == pytest.approx(1.0)

    def test_empty_ensemble_returns_base(self):
        ens = TreeEnsemble(base_score=3.0, trees=[])
        assert ens.predict_raw(np.zeros((2, 1))).tolist() == [3.0, 3.0]

    def test_total_cover_by_feature(self):
        ens = TreeEnsemble(base_score=0.0, trees=[make_depth2()])
        imp = ens.total_cover_by_feature(3)
        assert imp[0] == pytest.approx(16.0)
        assert imp[1] == pytest.approx(16.0)  # two internal nodes, 8 + 8
        assert imp[2] == 0.0


class TestVectorizedEquivalence:
    """The vectorized max_depth / bincount cover paths must agree with
    straightforward reference implementations on fitted models."""

    @staticmethod
    def _reference_max_depth(tree):
        depth = np.zeros(tree.n_nodes, dtype=np.int64)
        best = 0
        for i in range(tree.n_nodes):
            if tree.children_left[i] != -1:
                for child in (tree.children_left[i], tree.children_right[i]):
                    depth[child] = depth[i] + 1
                    best = max(best, int(depth[child]))
        return best

    @staticmethod
    def _reference_total_cover(ens, n_features):
        importance = np.zeros(n_features, dtype=np.float64)
        for tree in ens.trees:
            internal = tree.children_left != -1
            np.add.at(
                importance, tree.feature[internal], tree.cover[internal]
            )
        return importance

    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.boosting import GBRegressor

        rng = np.random.default_rng(23)
        X = rng.normal(size=(300, 5))
        X[rng.random(X.shape) < 0.1] = np.nan
        y = np.nan_to_num(X[:, 0]) - 2 * np.nan_to_num(X[:, 3])
        return GBRegressor(n_estimators=25, max_depth=4).fit(X, y)

    def test_max_depth_matches_reference(self, fitted):
        for tree in fitted.ensemble_.trees:
            assert tree.max_depth() == self._reference_max_depth(tree)

    def test_max_depth_of_stump(self):
        assert make_stump().max_depth() == 1

    def test_max_depth_of_single_leaf(self):
        leaf = Tree(
            children_left=np.array([-1]),
            children_right=np.array([-1]),
            feature=np.array([-1]),
            threshold=np.array([np.nan]),
            missing_left=np.array([False]),
            value=np.array([1.0]),
            cover=np.array([1.0]),
        )
        assert leaf.max_depth() == 0

    def test_total_cover_bitwise_matches_scatter_add(self, fitted):
        ens = fitted.ensemble_
        got = ens.total_cover_by_feature(5)
        ref = self._reference_total_cover(ens, 5)
        assert np.array_equal(got, ref)

    def test_total_cover_all_stump_trees(self):
        leaf = Tree(
            children_left=np.array([-1]),
            children_right=np.array([-1]),
            feature=np.array([-1]),
            threshold=np.array([np.nan]),
            missing_left=np.array([False]),
            value=np.array([1.0]),
            cover=np.array([1.0]),
        )
        ens = TreeEnsemble(base_score=0.0, trees=[leaf])
        assert ens.total_cover_by_feature(4).tolist() == [0.0] * 4

    def test_total_cover_out_of_range_feature_raises(self):
        ens = TreeEnsemble(base_score=0.0, trees=[make_depth2()])
        with pytest.raises(IndexError):
            ens.total_cover_by_feature(1)
