"""Which determinism contracts apply where.

The analyzer attaches *scope tags* to every scanned module; each rule
declares the tags it needs (see :mod:`repro.analysis.rulepack`) and
only fires inside matching modules.  Tags come from two places, unioned:

* the :data:`DEFAULT_SCOPES` table below, keyed by dotted package
  prefix — the repo-wide contract map; and
* an in-file module marker comment, ``# repro: scope[tag, ...]``, for
  modules whose obligations exceed their package default (e.g. the
  Fig. 6/7 runners are ``row-deterministic`` because their SHAP
  artefacts must not depend on how the batch was sharded).

Tags
----
``row-deterministic``
    A row's outputs must be bitwise identical in any batch: reductions
    must have a fixed order (REP001).  Established by PR 5 for the
    batched TreeSHAP engine and the whole serving plane.
``deterministic``
    Engine/pipeline code whose outputs feed reproducible artefacts: no
    unseeded randomness or wall-clock values (REP002), no unsorted
    filesystem/set iteration feeding ordered outputs (REP007).
``float64-sums``
    Sum channels must accumulate in float64 (REP004) — the PR 1
    contract for histogram/leaf-value accumulation in the boosting
    engine.

REP003 (shared-memory lifecycle), REP005 (lock discipline) and REP006
(unpicklable pool units) are structural hazards, not scoped contracts:
they apply to every scanned file.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "DETERMINISTIC",
    "FLOAT64_SUMS",
    "KNOWN_TAGS",
    "ROW_DETERMINISTIC",
    "DEFAULT_SCOPES",
    "module_name_for",
    "tags_for_module",
]

ROW_DETERMINISTIC = "row-deterministic"
DETERMINISTIC = "deterministic"
FLOAT64_SUMS = "float64-sums"

#: Tags a ``# repro: scope[...]`` marker may declare.
KNOWN_TAGS = frozenset({ROW_DETERMINISTIC, DETERMINISTIC, FLOAT64_SUMS})

#: Dotted-module prefix -> contract tags.  A module inherits the tags of
#: every prefix that contains it.
DEFAULT_SCOPES: dict[str, frozenset[str]] = {
    "repro.explain": frozenset({ROW_DETERMINISTIC, DETERMINISTIC}),
    "repro.serve": frozenset({ROW_DETERMINISTIC, DETERMINISTIC}),
    "repro.boosting": frozenset({DETERMINISTIC, FLOAT64_SUMS}),
    "repro.analysis": frozenset({DETERMINISTIC}),
    "repro.baselines": frozenset({DETERMINISTIC}),
    "repro.clinical": frozenset({DETERMINISTIC}),
    "repro.cohort": frozenset({DETERMINISTIC}),
    "repro.experiments": frozenset({DETERMINISTIC}),
    "repro.faults": frozenset({DETERMINISTIC}),
    "repro.frailty": frozenset({DETERMINISTIC}),
    "repro.knowledge": frozenset({DETERMINISTIC}),
    "repro.learning": frozenset({DETERMINISTIC}),
    "repro.parallel": frozenset({DETERMINISTIC}),
    "repro.pipeline": frozenset({DETERMINISTIC}),
    "repro.synth": frozenset({DETERMINISTIC}),
    "repro.tabular": frozenset({DETERMINISTIC}),
}


def module_name_for(path: str | Path) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    Files outside a ``repro`` package directory (test fixtures, ad-hoc
    snippets) get their bare stem — they match no default scope and are
    governed solely by their in-file markers.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
        return ".".join(parts)
    return parts[-1] if parts else ""


def tags_for_module(module: str) -> frozenset[str]:
    """Union of the default-scope tags whose prefix covers ``module``."""
    tags: set[str] = set()
    for prefix, scope_tags in DEFAULT_SCOPES.items():
        if module == prefix or module.startswith(prefix + "."):
            tags |= scope_tags
    return frozenset(tags)
