"""FIG5 bench — per-patient MAE by clinic (paper Fig. 5).

Expected shape vs the paper: box statistics per clinic for QoL and
SPPB; the Hong Kong group is smaller and (relative to its size) more
outlier-prone than Modena/Sydney.
"""

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_fig5
from repro.experiments.fig5_mae_by_clinic import render_fig5


def test_fig5_mae_by_clinic(benchmark, ctx, results_dir):
    runner = timed(run_fig5)
    result = benchmark.pedantic(runner, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig5_mae_by_clinic", render_fig5(result))
    record_bench(
        results_dir,
        "fig5_mae_by_clinic",
        min(runner.times),
        config={"seed": ctx.seed},
    )

    for outcome in ("qol", "sppb"):
        groups = result[outcome]
        assert set(groups) == {"modena", "sydney", "hong_kong"}
        # Group sizes follow clinic sizes.
        assert groups["modena"].n > groups["sydney"].n > groups["hong_kong"].n
        # Medians are small relative to the outcome scale (QoL in [0,1],
        # SPPB in 0..12): the models fit every clinic reasonably.
        assert groups["modena"].median < (0.15 if outcome == "qol" else 2.0)
        for stats in groups.values():
            assert stats.q1 <= stats.median <= stats.q3
