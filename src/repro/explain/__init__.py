"""Shapley-value model interpretation (the paper's SHAP [11]).

The paper couples XGBoost with the SHAP TreeExplainer to produce local
(per-patient) and global (population) feature attributions.  This package
re-implements that machinery:

``TreeShapExplainer``
    Exact polynomial-time *path-dependent* TreeSHAP (Lundberg et al.,
    Algorithm 2) over :class:`repro.boosting.TreeEnsemble`.
``brute_force_shap``
    Exponential-time reference implementation of the same value function
    (subset enumeration), used to property-test the fast algorithm.
``LocalExplanation`` / ``top_k_features``
    Per-patient attribution reports (paper Fig. 6).
``GlobalDependence`` / ``dependence_curve`` / ``detect_threshold``
    Population-level value-vs-SV curves and the automatic cutoff
    extraction the paper highlights in Fig. 7.
"""

from repro.explain.treeshap import TreeShapExplainer
from repro.explain.exact import brute_force_shap, tree_value_function
from repro.explain.sampling import PermutationShapEstimator
from repro.explain.interactions import TreeShapInteractionExplainer
from repro.explain.reports import (
    GlobalDependence,
    GlobalImportance,
    LocalExplanation,
    dependence_curve,
    detect_threshold,
    global_importance,
    top_k_features,
)

__all__ = [
    "TreeShapExplainer",
    "brute_force_shap",
    "tree_value_function",
    "PermutationShapEstimator",
    "TreeShapInteractionExplainer",
    "LocalExplanation",
    "GlobalDependence",
    "GlobalImportance",
    "dependence_curve",
    "detect_threshold",
    "global_importance",
    "top_k_features",
]
