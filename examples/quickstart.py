"""Quickstart: cohort -> samples -> DD vs KD models -> explanation.

Walks the full public API on a reduced cohort (fast on a laptop):

    python examples/quickstart.py          # ~50-patient cohort
    python examples/quickstart.py --full   # the paper's 261 patients

Reproduces in miniature the paper's core comparison: a gradient-boosted
model on the raw PRO + wearable features (data-driven) versus the same
learner on the expert ICI scalar (knowledge-driven), both with the
Frailty Index appended.
"""

from __future__ import annotations

import argparse

from repro import (
    TreeShapExplainer,
    build_dd_samples,
    build_kd_samples,
    generate_cohort,
    run_protocol,
)
from repro.explain import top_k_features

from _common import demo_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale cohort")
    parser.add_argument("--outcome", default="qol", choices=("qol", "sppb", "falls"))
    args = parser.parse_args()

    print("1. generating synthetic MySAwH-like cohort ...")
    cohort = generate_cohort(demo_config(args.full))
    print(f"   {cohort.summary()}")

    print("2. building sample sets (bounded interpolation, max gap 5) ...")
    dd = build_dd_samples(cohort, args.outcome, with_fi=True)
    kd = build_kd_samples(dd)
    print(f"   {dd.n_samples} samples; DD features={dd.n_features}, KD features={kd.n_features}")

    print("3. running the Fig. 3 protocol on both arms ...")
    dd_result = run_protocol(dd, n_folds=3)
    kd_result = run_protocol(kd, n_folds=3)
    metric = "accuracy" if args.outcome == "falls" else "1-MAPE"
    print(f"   DD {metric}: {100 * dd_result.headline:.1f}%")
    print(f"   KD {metric}: {100 * kd_result.headline:.1f}%")

    print("4. explaining one held-out prediction with TreeSHAP ...")
    explainer = TreeShapExplainer(dd_result.model)
    idx = dd_result.test_idx[0]
    x = dd.X[idx]
    pred = dd_result.model.predict(x[None, :])[0]
    report = top_k_features(
        explainer.shap_values_single(x),
        x,
        list(dd.feature_names),
        float(pred),
        explainer.expected_value,
    )
    print(f"   patient {dd.patient_ids[idx]} (true {dd.y[idx]:.3f}):")
    for line in report.render().splitlines():
        print("   " + line)


if __name__ == "__main__":
    main()
