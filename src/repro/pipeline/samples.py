"""Sample-set construction (paper section 3, "Observational data ...").

For outcome ``o`` and window ``j`` (closing with the clinical visit at
month ``9 j``), each observation month ``i in [1, 8]`` of the window
yields one sample: the 56 PRO answers of that month (after bounded
interpolation), the 3 monthly wearable means, and the label measured at
the window-closing visit.  ``Sample^FI_o`` additionally carries the
Frailty Index computed at the window-*opening* visit (month ``9 (j-1)``)
— the physician's baseline assessment.

The KD sample sets collapse the same feature vectors into the expert ICI
scalar (plus optionally the same FI column), giving the four datasets of
Fig. 3: ``Sample_o``, ``Sample^FI_o``, ``Sample^ICI_o`` and
``Sample^{ICI,FI}_o``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cohort.dataset import CohortDataset
from repro.cohort.outcomes import OUTCOME_NAMES
from repro.cohort.schema import ACTIVITY_VARIABLES, pro_item_names
from repro.frailty import FrailtyIndexCalculator
from repro.knowledge import ICICalculator, ICISpecification
from repro.pipeline.aggregate import activity_lookup, monthly_activity
from repro.pipeline.impute import interpolate_matrix
from repro.tabular import Table

__all__ = [
    "SampleSet",
    "build_dd_samples",
    "build_kd_samples",
    "build_all_sample_sets",
]

#: A sample is dropped when more than this fraction of its PRO items is
#: still missing after bounded interpolation (app-abandonment months).
DEFAULT_DROP_THRESHOLD = 0.25

#: The paper's experimentally determined safe interpolation bound.
DEFAULT_MAX_GAP = 5


@dataclass(frozen=True)
class SampleSet:
    """A model-ready dataset: design matrix + labels + provenance.

    Attributes
    ----------
    outcome:
        One of ``qol`` / ``sppb`` / ``falls``.
    kind:
        ``"dd"`` (raw features) or ``"kd"`` (ICI scalar).
    with_fi:
        Whether the window-opening FI column is included.
    X:
        ``(n, d)`` float matrix; NaN = missing (handled natively by the
        boosting models).
    y:
        ``(n,)`` labels (floats; Falls encoded 0/1).
    feature_names:
        Column names of ``X``.
    patient_ids / clinics / windows / months:
        Per-sample provenance arrays.
    """

    outcome: str
    kind: str
    with_fi: bool
    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]
    patient_ids: np.ndarray
    clinics: np.ndarray
    windows: np.ndarray
    months: np.ndarray

    def __post_init__(self):
        n = len(self.y)
        if self.X.shape != (n, len(self.feature_names)):
            raise ValueError(
                f"X shape {self.X.shape} inconsistent with {n} labels and "
                f"{len(self.feature_names)} feature names"
            )
        for name in ("patient_ids", "clinics", "windows", "months"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch")

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return len(self.y)

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return len(self.feature_names)

    def filter_clinic(self, clinic: str) -> "SampleSet":
        """Restrict to samples of one clinic."""
        mask = self.clinics == clinic
        if not mask.any():
            raise ValueError(f"no samples for clinic {clinic!r}")
        return self._take(mask)

    def _take(self, mask: np.ndarray) -> "SampleSet":
        return replace(
            self,
            X=self.X[mask],
            y=self.y[mask],
            patient_ids=self.patient_ids[mask],
            clinics=self.clinics[mask],
            windows=self.windows[mask],
            months=self.months[mask],
        )

    def feature_index(self, name: str) -> int:
        """Column index of a feature name."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise KeyError(
                f"no feature {name!r}; have {self.feature_names[:8]}..."
            ) from None


def build_dd_samples(
    cohort: CohortDataset,
    outcome: str,
    with_fi: bool = False,
    max_gap: int = DEFAULT_MAX_GAP,
    drop_threshold: float = DEFAULT_DROP_THRESHOLD,
) -> SampleSet:
    """Build ``Sample_o`` (or ``Sample^FI_o``) from a cohort.

    Parameters
    ----------
    outcome:
        ``qol``, ``sppb`` or ``falls``.
    with_fi:
        Append the window-opening Frailty Index feature.
    max_gap:
        Bounded-interpolation limit (paper default 5; 0 disables).
    drop_threshold:
        Drop a monthly sample when more than this fraction of PRO items
        remains missing after interpolation.
    """
    if outcome not in OUTCOME_NAMES:
        raise ValueError(f"unknown outcome {outcome!r}; have {OUTCOME_NAMES}")
    if not 0.0 <= drop_threshold <= 1.0:
        raise ValueError("drop_threshold must be in [0, 1]")

    cfg = cohort.config
    item_names = pro_item_names()
    activity = activity_lookup(monthly_activity(cohort.daily))
    clinic_of = cohort.clinic_of()
    fi_of = _fi_lookup(cohort)
    labels = _label_lookup(cohort, outcome)
    pro_rows = _pro_rows_by_patient(cohort)

    feature_names = [*item_names, *ACTIVITY_VARIABLES] + (["fi"] if with_fi else [])

    rows: list[np.ndarray] = []
    ys: list[float] = []
    pids: list[str] = []
    clinics: list[str] = []
    windows: list[int] = []
    months_out: list[int] = []

    for pid, (months, items) in pro_rows.items():
        for j in range(1, cfg.n_windows + 1):
            label = labels.get((pid, j))
            if label is None or np.isnan(label):
                continue
            window_months = cfg.window_months(j)
            month_pos = {int(m): k for k, m in enumerate(months)}
            idx = [month_pos[m] for m in window_months if m in month_pos]
            if len(idx) != len(window_months):
                continue  # incomplete acquisition schedule (not expected)
            block = interpolate_matrix(items[idx], max_gap)
            fi_value = fi_of.get((pid, 9 * (j - 1)), np.nan) if with_fi else None

            for k, month in enumerate(window_months):
                item_vec = block[k]
                missing_frac = float(np.isnan(item_vec).mean())
                if missing_frac > drop_threshold:
                    continue
                act = activity.get((pid, month))
                if act is None:
                    continue
                feats = [item_vec, act]
                if with_fi:
                    feats.append(np.array([fi_value]))
                rows.append(np.concatenate(feats))
                ys.append(float(label))
                pids.append(pid)
                clinics.append(clinic_of[pid])
                windows.append(j)
                months_out.append(month)

    if not rows:
        raise ValueError(
            f"no samples survived QA for outcome {outcome!r}; "
            "check missingness / drop_threshold settings"
        )
    return SampleSet(
        outcome=outcome,
        kind="dd",
        with_fi=with_fi,
        X=np.vstack(rows),
        y=np.asarray(ys, dtype=np.float64),
        feature_names=tuple(feature_names),
        patient_ids=np.asarray(pids, dtype=object),
        clinics=np.asarray(clinics, dtype=object),
        windows=np.asarray(windows, dtype=np.int64),
        months=np.asarray(months_out, dtype=np.int64),
    )


def build_kd_samples(
    dd: SampleSet,
    specification: ICISpecification | None = None,
) -> SampleSet:
    """Collapse a DD sample set into its KD (ICI) counterpart.

    The ICI is computed from exactly the feature values the DD model
    sees (post-imputation), so the two arms differ only in
    representation — the comparison the paper draws in Fig. 3.
    """
    if dd.kind != "dd":
        raise ValueError("build_kd_samples expects a DD sample set")
    calculator = ICICalculator(specification)
    spec = calculator.specification
    columns = {}
    for rule in spec.rules:
        columns[rule.variable] = dd.X[:, dd.feature_index(rule.variable)]
    ici = calculator.compute(Table(columns))

    if dd.with_fi:
        fi = dd.X[:, dd.feature_index("fi")]
        X = np.column_stack([ici, fi])
        names: tuple[str, ...] = ("ici", "fi")
    else:
        X = ici[:, None]
        names = ("ici",)
    return replace(dd, kind="kd", X=X, feature_names=names)


def build_all_sample_sets(
    cohort: CohortDataset,
    max_gap: int = DEFAULT_MAX_GAP,
    specification: ICISpecification | None = None,
) -> dict[tuple[str, str, bool], SampleSet]:
    """All 12 sample sets of Fig. 3.

    Returns a dict keyed by ``(outcome, kind, with_fi)`` covering the
    three outcomes x {dd, kd} x {False, True}.
    """
    out: dict[tuple[str, str, bool], SampleSet] = {}
    for outcome in OUTCOME_NAMES:
        for with_fi in (False, True):
            dd = build_dd_samples(cohort, outcome, with_fi=with_fi, max_gap=max_gap)
            out[(outcome, "dd", with_fi)] = dd
            out[(outcome, "kd", with_fi)] = build_kd_samples(dd, specification)
    return out


# ----------------------------------------------------------------------
# lookup helpers
# ----------------------------------------------------------------------
def _fi_lookup(cohort: CohortDataset) -> dict[tuple[str, int], float]:
    """(patient, visit_month) -> FI."""
    fi = FrailtyIndexCalculator().compute(cohort.visits)
    pids = cohort.visits["patient_id"]
    months = cohort.visits["visit_month"]
    return {
        (pids[i], int(months[i])): float(fi[i]) for i in range(len(fi))
    }


def _label_lookup(cohort: CohortDataset, outcome: str) -> dict[tuple[str, int], float]:
    """(patient, window) -> outcome value at the window-closing visit."""
    pids = cohort.visits["patient_id"]
    months = cohort.visits["visit_month"]
    values = cohort.visits[outcome]
    out: dict[tuple[str, int], float] = {}
    for i in range(cohort.visits.num_rows):
        m = int(months[i])
        if m > 0 and m % 9 == 0:
            out[(pids[i], m // 9)] = float(values[i])
    return out


def _pro_rows_by_patient(
    cohort: CohortDataset,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """patient -> (months sorted ascending, item matrix in that order)."""
    item_names = pro_item_names()
    pids = cohort.pro["patient_id"]
    months = cohort.pro["month"]
    matrix = np.column_stack([cohort.pro[name] for name in item_names])
    by_patient: dict[str, list[int]] = {}
    for i in range(cohort.pro.num_rows):
        by_patient.setdefault(pids[i], []).append(i)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for pid, idx in by_patient.items():
        idx = np.asarray(idx, dtype=np.int64)
        order = np.argsort(months[idx], kind="stable")
        idx = idx[order]
        out[pid] = (months[idx], matrix[idx])
    return out
