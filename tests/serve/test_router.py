"""Unit tests for the multi-worker scoring router (repro.serve.router).

The heart of the suite is the equivalence contract: on the same request
stream the router's output is bitwise-identical to the single-process
:class:`ScoringService`, cache-cold and cache-hot, for every worker
count.
"""

import numpy as np
import pytest

from repro.boosting import GBClassifier, GBRegressor
from repro.faults import faults_active
from repro.serve import (
    ModelRegistry,
    ScoreRequest,
    ScoringRouter,
    ScoringService,
)

from tests.serve.test_service import explanations_equal


@pytest.fixture(scope="module")
def regressor():
    rng = np.random.default_rng(21)
    X = rng.normal(size=(300, 6))
    X[rng.random(X.shape) < 0.1] = np.nan
    y = 2 * np.nan_to_num(X[:, 0]) - np.nan_to_num(X[:, 3]) + rng.normal(
        0, 0.1, 300
    )
    return GBRegressor(n_estimators=15, max_depth=3).fit(X, y), X


@pytest.fixture(scope="module")
def classifier():
    rng = np.random.default_rng(22)
    X = rng.normal(size=(200, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return GBClassifier(n_estimators=10, max_depth=2).fit(X, y), X


def _stream(X, revisits=3, explain_every=2):
    """A repeated-cohort stream with mixed predict/explain flags."""
    distinct = X[:80]
    return [
        ScoreRequest(row=row, explain=(i % explain_every == 0))
        for _ in range(revisits)
        for i, row in enumerate(distinct)
    ]


def _run_batched(target, stream, batch=32):
    out = []
    for lo in range(0, len(stream), batch):
        out.extend(target.score_batch(stream[lo : lo + batch]))
    return out


def _assert_results_equal(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.raw_score == b.raw_score
        assert a.prediction == b.prediction
        assert a.probability == b.probability
        # Under an active fault plan (the CI chaos matrix), a respawned
        # shard starts cache-cold: `cached` bookkeeping may diverge,
        # values never may — the eviction-pressure rule.
        if not faults_active():
            assert a.cached == b.cached
        if b.explanation is None:
            assert a.explanation is None
        else:
            assert explanations_equal(a.explanation, b.explanation)


class TestEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_bitwise_equal_to_service_cold_and_hot(self, regressor, jobs):
        model, X = regressor
        stream = _stream(X)
        service = ScoringService(model, version="v")
        reference = _run_batched(service, stream)
        with ScoringRouter(model, version="v", n_jobs=jobs) as router:
            got = _run_batched(router, stream)
            _assert_results_equal(got, reference)
            # Cache-hot second pass: every row recurs, both paths hit.
            reference_hot = _run_batched(service, stream)
            got_hot = _run_batched(router, stream)
            _assert_results_equal(got_hot, reference_hot)
            if not faults_active():  # chaos may restart a shard cache cold
                assert all(r.cached for r in got_hot)
                # Shard caches jointly behave like the single LRU.
                assert router.cache_stats.hits == service.cache_stats.hits
                assert router.cache_stats.misses == service.cache_stats.misses

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_raw_scores_bitwise_equal_to_ensemble_per_worker_count(
        self, regressor, jobs
    ):
        # The acceptance contract for the compact DAG path: at every
        # ShardedPool worker count, raw scores through the router (whose
        # workers map the shared table) equal the per-tree ensemble
        # path bitwise — cache-cold and cache-hot.
        model, X = regressor
        reference = model.ensemble_.predict_raw_binned(
            model.bin(X[:60]), model.mapper_.missing_bin
        )
        with ScoringRouter(model, version="v", n_jobs=jobs) as router:
            cold = router.score_rows(X[:60])
            assert np.array_equal([r.raw_score for r in cold], reference)
            hot = router.score_rows(X[:60])
            assert np.array_equal([r.raw_score for r in hot], reference)
            if not faults_active():  # chaos may restart a shard cache cold
                assert all(r.cached for r in hot)

    def test_classifier_probabilities_bitwise(self, classifier):
        model, X = classifier
        stream = _stream(X, revisits=2)
        service = ScoringService(model, version="c")
        reference = _run_batched(service, stream)
        with ScoringRouter(model, version="c", n_jobs=2) as router:
            _assert_results_equal(_run_batched(router, stream), reference)

    def test_values_identical_under_eviction_pressure(self, regressor):
        """Evictions may flip `cached` bookkeeping, never a value.

        With more distinct rows than capacity, N per-shard LRUs age
        entries by shard-local recency, so hit patterns can diverge
        from one global LRU — every answer must still be bitwise equal.
        """
        model, X = regressor
        stream = [
            ScoreRequest(row=X[i % 60], explain=(i % 4 == 0))
            for _ in range(3)
            for i in range(60)
        ]
        service = ScoringService(model, version="v", cache_size=30)
        reference = _run_batched(service, stream)
        with ScoringRouter(
            model, version="v", n_jobs=2, cache_size=30
        ) as router:
            got = _run_batched(router, stream)
        for a, b in zip(got, reference):
            assert a.raw_score == b.raw_score
            assert a.prediction == b.prediction
            if b.explanation is not None:
                assert explanations_equal(a.explanation, b.explanation)

    def test_score_rows_matches_service(self, regressor):
        model, X = regressor
        service = ScoringService(model, version="v")
        reference = service.score_rows(X[:50], explain=True)
        with ScoringRouter(
            model, version="v", n_jobs=2, max_batch=16
        ) as router:
            got = router.score_rows(X[:50], explain=True)
        _assert_results_equal(got, reference)


class TestCoalescing:
    def _router(self, model, clock, **kwargs):
        kwargs.setdefault("n_jobs", 1)
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("max_delay", 1.0)
        return ScoringRouter(model, version="v", clock=clock, **kwargs)

    def test_size_bound_flushes(self, regressor):
        model, X = regressor
        with self._router(model, clock=lambda: 0.0) as router:
            for i in range(7):
                router.submit(ScoreRequest(row=X[i]))
            # 7 submits at max_batch=4: one full flush, 3 pending.
            assert router.stats.micro_batches == 1
            done = router.drain()
            assert len(done) == 7
            assert router.stats.micro_batches == 2

    def test_deadline_bound_flushes(self, regressor):
        model, X = regressor
        now = [0.0]
        with self._router(model, clock=lambda: now[0]) as router:
            router.submit(ScoreRequest(row=X[0]))
            router.submit(ScoreRequest(row=X[1]))
            assert router.poll() == []  # deadline not reached
            now[0] = 2.0
            done = router.poll()  # deadline passed -> flushed
            assert len(done) == 2
            assert router.stats.micro_batches == 1

    def test_submit_after_deadline_flushes_previous(self, regressor):
        model, X = regressor
        now = [0.0]
        with self._router(model, clock=lambda: now[0]) as router:
            router.submit(ScoreRequest(row=X[0]))
            now[0] = 5.0
            router.submit(ScoreRequest(row=X[1]))  # flushes request 0
            assert router.stats.micro_batches == 1
            assert len(router.poll()) == 1
            assert len(router.drain()) == 1

    def test_results_in_submission_order(self, regressor):
        model, X = regressor
        service = ScoringService(model, version="v")
        expected = [
            r.raw_score for r in service.score_rows(X[:10], explain=False)
        ]
        with self._router(model, clock=lambda: 0.0, n_jobs=2) as router:
            for i in range(10):
                router.submit(ScoreRequest(row=X[i]))
            got = [r.raw_score for r in router.drain()]
        assert got == expected


class TestRegistryAndValidation:
    def test_from_registry(self, regressor, tmp_path):
        model, X = regressor
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.publish(
            "m", model, metadata={"features": [f"c{i}" for i in range(6)]}
        )
        with ScoringRouter.from_registry(
            registry, "m", n_jobs=2
        ) as router:
            assert router.version == version.ref
            assert router.feature_names == [f"c{i}" for i in range(6)]
            results = router.score_rows(X[:5], explain=True)
        assert results[0].explanation.features[0].startswith("c")

    def test_bad_row_shape_rejected(self, regressor):
        model, _ = regressor
        with ScoringRouter(model, version="v", n_jobs=1) as router:
            with pytest.raises(ValueError, match="request 0"):
                router.score_batch([ScoreRequest(row=np.zeros(3))])

    def test_feature_name_count_validated(self, regressor):
        model, _ = regressor
        with pytest.raises(ValueError, match="feature names"):
            ScoringRouter(model, feature_names=["a"])

    def test_bad_bounds_rejected(self, regressor):
        model, _ = regressor
        with pytest.raises(ValueError, match="max_batch"):
            ScoringRouter(model, max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            ScoringRouter(model, max_delay=-1)

    def test_closed_router_rejects_work(self, regressor):
        model, X = regressor
        router = ScoringRouter(model, version="v", n_jobs=1)
        router.close()
        router.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            router.score_batch([ScoreRequest(row=X[0])])


class TestFlushApiAndShutdown:
    def test_external_flush_drives_batches(self, regressor):
        model, X = regressor
        service = ScoringService(model, version="v")
        expected = [
            r.raw_score for r in service.score_rows(X[:6], explain=False)
        ]
        # A huge deadline: nothing flushes until the external timer does.
        with ScoringRouter(
            model, version="v", n_jobs=1, max_delay=1e9
        ) as router:
            for i in range(6):
                router.submit(ScoreRequest(row=X[i]))
            assert router.pending == 6
            assert router.oldest_wait() is not None
            assert router.poll() == []  # deadline has not passed
            router.flush()
            assert router.pending == 0
            assert router.oldest_wait() is None
            got = [r.raw_score for r in router.poll()]
        assert got == expected

    def test_flush_with_nothing_pending_is_noop(self, regressor):
        model, _X = regressor
        with ScoringRouter(model, version="v", n_jobs=1) as router:
            router.flush()
            assert router.stats.micro_batches == 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_close_flushes_pending_requests(self, regressor, jobs):
        """SIGTERM-style shutdown: close() drops zero submitted requests."""
        model, X = regressor
        service = ScoringService(model, version="v")
        expected = service.score_rows(X[:5], explain=False)
        router = ScoringRouter(
            model, version="v", n_jobs=jobs, max_delay=1e9
        )
        try:
            for i in range(5):
                router.submit(ScoreRequest(row=X[i]))
            assert router.pending == 5
        finally:
            router.close()
        # The flushed results stay collectable after the close.
        got = router.poll()
        _assert_results_equal(got, expected)
        assert router.drain() == []  # drain after close is safe too
        router.close()  # and close stays idempotent

    def test_shard_rows_accounting(self, regressor):
        model, X = regressor
        with ScoringRouter(model, version="v", n_jobs=2) as router:
            router.score_rows(X[:20], explain=False)
            occupancy = router.stats.shard_rows
        assert sum(occupancy.values()) == 20
        assert all(shard in (0, 1) for shard in occupancy)
        assert router.workers_alive in (0, 1, 2)
