"""Model serving: registry, micro-batched scoring, exact result caching.

The training and explanation engines (:mod:`repro.boosting`,
:mod:`repro.explain`) answer *whole-matrix* questions fast; this package
turns them into a request/response subsystem — the paper's vision of a
fitted model assisting many clinical visits, scaled to heavy traffic:

``ModelRegistry``
    Content-addressed persistence of fitted estimators on top of
    :mod:`repro.boosting.serialize`: a version tag is the fingerprint of
    the model document, so publishing is idempotent and a tag uniquely
    names the exact trees, bin mapper and hyper-parameters that produced
    every cached result.
``ScoringService``
    Accepts heterogeneous requests (predict-only and predict+explain
    mixed), micro-batches them into single ``predict_binned`` /
    batched-TreeSHAP calls, and reuses the preprocessed per-tree
    structures across every request of the service's lifetime.
``LRUCache``
    Exact result cache keyed on ``(model version, row bin codes)``.  The
    bin codes are the model's own quantized view of a row — two rows
    with equal codes are indistinguishable to every tree — so cache hits
    return bitwise-identical predictions and SHAP values, never
    approximations.
``ModelPlane`` / ``ScoringRouter``
    The multi-worker scoring plane (:mod:`repro.serve.plane`,
    :mod:`repro.serve.router`): the plane packs a version's quantized
    representation — tree node arrays, bin thresholds, fitted bin
    edges, preprocessed TreeSHAP path structures — into shared memory
    once, N workers map it, and the router coalesces heterogeneous
    requests across callers into size/deadline-bounded micro-batches
    sharded by bin-code hash.  Output is bitwise-identical to the
    single-process service for every worker count.
``ScoringServer``
    The network edge (:mod:`repro.serve.server`): an asyncio HTTP/1.1
    front end with a background flush timer over the router, admission
    control (:mod:`repro.serve.admission`), hot model swap driven by
    the registry's ``LATEST`` pointer, and a ``/metrics`` ops endpoint
    (:mod:`repro.serve.stats`).  Responses stay bitwise-identical to
    the in-process service at every worker count.
``python -m repro serve``
    Driver (:mod:`repro.serve.driver`): publish models into a registry,
    score cohort CSV tables end-to-end (streamed in chunks, optionally
    multi-worker via ``--jobs``), and ``start`` the HTTP server.
"""

from repro.serve.admission import AdmissionController
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.plane import ModelPlane, parallel_shap
from repro.serve.registry import ModelRegistry, ModelVersion, model_fingerprint
from repro.serve.router import RouterStats, ScoringRouter
from repro.serve.server import ScoringServer, ServerThread, result_to_wire
from repro.serve.service import (
    ScoreRequest,
    ScoreResult,
    ScoringService,
    ServiceStats,
)
from repro.serve.stats import LatencyWindow, ServerStats, metrics_payload

__all__ = [
    "AdmissionController",
    "CacheStats",
    "LatencyWindow",
    "LRUCache",
    "ModelPlane",
    "ModelRegistry",
    "ModelVersion",
    "model_fingerprint",
    "metrics_payload",
    "parallel_shap",
    "result_to_wire",
    "RouterStats",
    "ScoreRequest",
    "ScoreResult",
    "ScoringRouter",
    "ScoringServer",
    "ScoringService",
    "ServerThread",
    "ServerStats",
    "ServiceStats",
]
