"""FIG4 bench — DD vs KD predictive performance (paper Fig. 4).

Expected shape vs the paper: DD >= KD for every outcome; adding FI
helps both arms; the Falls minority-class recall collapses for KD and
recovers with FI (paper: KD w/o FI recall-True = 2 %).
"""

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_fig4
from repro.experiments.fig4_performance import render_fig4


def test_fig4_dd_vs_kd(benchmark, ctx, results_dir):
    runner = timed(run_fig4)
    grid = benchmark.pedantic(runner, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig4_performance", render_fig4(grid))
    record_bench(
        results_dir,
        "fig4_performance",
        min(runner.times),
        config={"seed": ctx.seed, "n_folds": ctx.n_folds, "cells": 12},
    )

    for outcome in ("qol", "sppb"):
        cells = grid[outcome]
        # DD beats KD, with and without FI (small slack for split noise).
        assert (
            cells[("dd", False)]["one_minus_mape"]
            >= cells[("kd", False)]["one_minus_mape"] - 0.005
        )
        assert (
            cells[("dd", True)]["one_minus_mape"]
            >= cells[("kd", True)]["one_minus_mape"] - 0.005
        )
        # FI helps the DD arm.
        assert (
            cells[("dd", True)]["one_minus_mape"]
            >= cells[("dd", False)]["one_minus_mape"] - 0.005
        )
        # Magnitudes in the paper's regime (> 85 % everywhere).
        assert cells[("kd", False)]["one_minus_mape"] > 0.85

    falls = grid["falls"]
    assert falls[("dd", True)]["accuracy"] >= falls[("kd", True)]["accuracy"] - 0.01
    # The paper's imbalance effect: KD recall on the minority class is
    # far below DD recall.
    assert falls[("kd", False)]["recall_true"] < falls[("dd", False)]["recall_true"]
    # FI lifts minority recall for both arms.
    assert falls[("dd", True)]["recall_true"] >= falls[("dd", False)]["recall_true"] - 0.05
