"""REP006 negative: module-level (picklable) pool units."""

from repro.parallel import parallel_map


def unit(item, state):
    return item


def run(items):
    return parallel_map(unit, items)
