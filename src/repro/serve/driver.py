"""Serving driver behind ``python -m repro serve``.

Five subcommands cover the train-once / score-later lifecycle::

    # fit a model on a training CSV and publish it into a registry
    python -m repro serve publish --registry models/ --name sppb \\
        --train cohort.csv --target sppb

    # list published versions
    python -m repro serve versions --registry models/ --name sppb

    # score a cohort CSV end-to-end (micro-batched, cached, optionally
    # with per-row attribution reports; --jobs N runs the multi-worker
    # scoring plane)
    python -m repro serve score --registry models/ --name sppb \\
        --input visits.csv --out scored.csv --explain --jobs 4

    # serve scoring over HTTP (asyncio front end, hot model swap,
    # admission control, /metrics; see docs/serving-ops.md)
    python -m repro serve start --registry models/ --name sppb \\
        --port 8000 --jobs 4

    # sweep shared-memory segments orphaned by killed processes
    # (dry run by default; --yes unlinks)
    python -m repro serve gc-shm

``score`` appends a ``prediction`` column (plus ``probability`` for
classifiers) to the input table, writes per-row attribution reports next
to the output when ``--explain`` is given, and prints throughput plus
cache statistics.  The input table is **streamed in chunks**
(``--chunk-rows``) so peak memory is bounded by the chunk size, not the
cohort size, and the output CSV/report files are appended incrementally;
because the scoring engine is row-deterministic, chunked output is
byte-identical to whole-table scoring for any chunk size and worker
count.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

import numpy as np

from repro.boosting import GBClassifier, GBConfig, GBRegressor
from repro.serve.registry import ModelRegistry
from repro.serve.router import ScoringRouter
from repro.serve.service import ScoreRequest
from repro.tabular.column import ColumnType
from repro.tabular.io import CsvBatchWriter, iter_csv_batches, read_csv
from repro.tabular.table import Table

__all__ = ["build_serve_parser", "main"]

_NUMERIC = (ColumnType.FLOAT, ColumnType.INT, ColumnType.BOOL)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Model registry + batched scoring over CSV tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pub = sub.add_parser("publish", help="fit a model and publish it")
    pub.add_argument("--registry", type=Path, required=True, metavar="DIR")
    pub.add_argument("--name", required=True, help="registry model name")
    pub.add_argument("--train", type=Path, required=True, metavar="CSV")
    pub.add_argument("--target", required=True, help="target column in CSV")
    pub.add_argument(
        "--kind",
        choices=("regressor", "classifier"),
        default="regressor",
    )
    pub.add_argument("--n-estimators", type=int, default=100)
    pub.add_argument("--max-depth", type=int, default=4)
    pub.add_argument("--learning-rate", type=float, default=0.1)

    ver = sub.add_parser("versions", help="list published versions")
    ver.add_argument("--registry", type=Path, required=True, metavar="DIR")
    ver.add_argument("--name", required=True)

    sc = sub.add_parser("score", help="score a cohort CSV")
    sc.add_argument("--registry", type=Path, required=True, metavar="DIR")
    sc.add_argument("--name", required=True)
    sc.add_argument("--tag", default=None, help="version tag (default latest)")
    sc.add_argument("--input", type=Path, required=True, metavar="CSV")
    sc.add_argument("--out", type=Path, required=True, metavar="CSV")
    sc.add_argument(
        "--explain",
        action="store_true",
        help="also write per-row attribution reports",
    )
    sc.add_argument(
        "--features",
        default=None,
        metavar="A,B,...",
        help="comma-separated feature columns; required when the "
        "published version carries no feature metadata",
    )
    sc.add_argument("--top-k", type=int, default=5)
    sc.add_argument("--batch-size", type=int, default=256)
    sc.add_argument("--cache-size", type=int, default=4096)
    sc.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="scoring worker processes (default: the REPRO_JOBS "
        "environment variable, else serial; 0 or -1 = one per CPU).  "
        "Output is byte-identical on every backend.",
    )
    sc.add_argument(
        "--chunk-rows",
        type=int,
        default=4096,
        metavar="N",
        help="stream the input CSV in chunks of N rows (bounds peak "
        "memory; does not change any output byte)",
    )

    st = sub.add_parser("start", help="serve scoring over HTTP")
    st.add_argument("--registry", type=Path, required=True, metavar="DIR")
    st.add_argument("--name", required=True)
    st.add_argument(
        "--tag",
        default=None,
        help="pin one version (default: follow LATEST and hot-swap)",
    )
    st.add_argument("--host", default="127.0.0.1")
    st.add_argument(
        "--port",
        type=int,
        default=8000,
        help="listen port (0 binds an ephemeral port)",
    )
    st.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="scoring worker processes (default: REPRO_JOBS, else "
        "serial; 0 or -1 = one per CPU).  Responses are byte-identical "
        "for every value.",
    )
    st.add_argument("--max-batch", type=int, default=64)
    st.add_argument(
        "--flush-interval",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="background flush timer: how long a post may wait for "
        "co-travellers before its micro-batch executes",
    )
    st.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="ROWS",
        help="admission bound; beyond it posts get 429 + Retry-After",
    )
    st.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="registry LATEST poll period for hot swaps (0 disables)",
    )
    st.add_argument("--cache-size", type=int, default=4096)
    st.add_argument("--top-k", type=int, default=5)
    st.add_argument(
        "--task-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task stuck-worker deadline (default: the "
        "REPRO_TASK_DEADLINE environment variable, else none); an "
        "overdue worker is killed, its rows recomputed in-process "
        "(byte-identically), and the slot respawned",
    )
    st.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for a fixed duration then drain and exit "
        "(default: until SIGINT/SIGTERM)",
    )

    gc = sub.add_parser(
        "gc-shm",
        help="sweep shared-memory segments orphaned by killed processes",
    )
    gc.add_argument(
        "--yes",
        action="store_true",
        help="actually unlink the orphans (default: dry run, list only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        if args.command == "publish":
            return _publish(args)
        if args.command == "versions":
            return _versions(args)
        if args.command == "start":
            return _start(args)
        if args.command == "gc-shm":
            return _gc_shm(args)
        return _score(args)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {_message(exc)}", file=sys.stderr)
        return 2


def _message(exc: Exception) -> str:
    # KeyError reprs its argument; unwrap for a readable CLI message.
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def _numeric_matrix(table: Table, names: list[str]) -> np.ndarray:
    """Stack named columns into a float64 design matrix."""
    out = np.empty((table.num_rows, len(names)), dtype=np.float64)
    for j, name in enumerate(names):
        if name not in table:
            raise KeyError(f"input table has no column {name!r}")
        if table.column(name).ctype not in _NUMERIC:
            raise ValueError(f"column {name!r} is not numeric")
        out[:, j] = np.asarray(table[name], dtype=np.float64)
    return out


def _numeric_names(table: Table, exclude: tuple[str, ...] = ()) -> list[str]:
    return [
        name
        for name in table.column_names
        if name not in exclude and table.column(name).ctype in _NUMERIC
    ]


def _publish(args: argparse.Namespace) -> int:
    table = read_csv(args.train)
    if args.target not in table:
        raise KeyError(f"training table has no target column {args.target!r}")
    features = _numeric_names(table, exclude=(args.target,))
    if not features:
        raise ValueError("training table has no numeric feature columns")
    X = _numeric_matrix(table, features)
    y = np.asarray(table[args.target], dtype=np.float64)

    config = GBConfig(
        n_estimators=args.n_estimators,
        max_depth=args.max_depth,
        learning_rate=args.learning_rate,
    )
    cls = GBClassifier if args.kind == "classifier" else GBRegressor
    model = cls(config).fit(X, y)

    registry = ModelRegistry(args.registry)
    version = registry.publish(
        args.name,
        model,
        metadata={
            "features": features,
            "target": args.target,
            "train_rows": table.num_rows,
            "source": args.train.name,
        },
    )
    print(f"published {version.ref}")
    print(f"  kind={version.kind} trees={version.n_trees} features={features}")
    return 0


def _versions(args: argparse.Namespace) -> int:
    registry = ModelRegistry(args.registry)
    latest = registry.resolve(args.name)
    for v in registry.versions(args.name):
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(v.created_at))
        marker = " (latest)" if v.tag == latest else ""
        nodes = "?" if v.n_nodes is None else str(v.n_nodes)
        compacted = ""
        if v.compaction is not None:
            compacted = (
                f" table_rows={v.compaction['table_rows']}"
                f" compression={v.compaction['ratio']:.2f}x"
            )
        print(
            f"{v.ref}  kind={v.kind} trees={v.n_trees} nodes={nodes} "
            f"bytes={v.size_on_disk}{compacted} "
            f"features={v.n_features} published={stamp}{marker}"
        )
    for tag, reason in registry.quarantined(args.name):
        print(
            f"{args.name}@{tag}  QUARANTINED: {reason} "
            "(re-publish the model to heal)"
        )
    return 0


def _gc_shm(args: argparse.Namespace) -> int:
    """Sweep ``/dev/shm`` segments no live process has mapped.

    A SIGKILLed fit or serve process cannot run its ``close()`` path,
    so its POSIX shared-memory segments outlive it.  Dry run by
    default: prints what would be removed; ``--yes`` unlinks.  See
    docs/serving-ops.md ("Failure modes & recovery").
    """
    from repro.parallel.shared import scan_orphan_segments, unlink_segments

    orphans = scan_orphan_segments()
    if not orphans:
        print("no orphaned shared-memory segments")
        return 0
    if not args.yes:
        for name in orphans:
            print(f"orphan: /dev/shm/{name}")
        print(
            f"{len(orphans)} orphaned segment"
            f"{'s' if len(orphans) != 1 else ''} (dry run; pass --yes "
            "to unlink)"
        )
        return 0
    removed = unlink_segments(orphans)
    for name in removed:
        print(f"unlinked: /dev/shm/{name}")
    print(
        f"removed {len(removed)} orphaned segment"
        f"{'s' if len(removed) != 1 else ''}"
    )
    return 0


def _start(args: argparse.Namespace) -> int:
    """Run the asyncio HTTP front end until a signal (or a deadline)."""
    from repro.serve.server import ScoringServer

    if args.for_seconds is not None and args.for_seconds < 0:
        raise ValueError("--for-seconds must be >= 0")
    server = ScoringServer(
        ModelRegistry(args.registry),
        args.name,
        tag=args.tag,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_batch=args.max_batch,
        flush_interval=args.flush_interval,
        max_queue=args.max_queue,
        poll_interval=args.poll_interval,
        cache_size=args.cache_size,
        top_k=args.top_k,
        task_deadline=args.task_deadline,
    )
    return asyncio.run(_serve_until_signal(args, server))


async def _serve_until_signal(args, server) -> int:
    import signal

    await server.start()
    workers = server.workers
    print(
        f"serving {server.model_ref} on http://{args.host}:{server.port} "
        f"({workers} worker{'s' if workers != 1 else ''}, "
        f"max_batch={args.max_batch}, max_queue={args.max_queue} rows)"
    )
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix event loop: --for-seconds still works
    try:
        if args.for_seconds is None:
            await stop_requested.wait()
        else:
            try:
                await asyncio.wait_for(
                    stop_requested.wait(), timeout=args.for_seconds
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
    stats = server.stats
    print(
        f"drained and stopped: {stats.posts} posts / {stats.rows} rows "
        f"answered, {stats.swaps} hot swaps, {stats.errors} errors"
    )
    return 0


def _score(args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        raise ValueError("--batch-size must be >= 1")
    if args.chunk_rows < 1:
        raise ValueError("--chunk-rows must be >= 1")
    # Validate the output target up front: a bad --out must not waste a
    # full (potentially expensive) scoring run.
    _ensure_parent(args.out)
    registry = ModelRegistry(args.registry)
    version = registry.describe(args.name, args.tag)
    if args.features is not None:
        features = [name.strip() for name in args.features.split(",")]
    else:
        features = version.metadata.get("features")
    if features is None:
        raise ValueError(
            f"version {version.ref} carries no feature metadata; pass "
            "--features to name the input columns explicitly"
        )
    if len(features) != version.n_features:
        raise ValueError(
            f"{len(features)} feature columns named, but {version.ref} "
            f"was fitted on {version.n_features} features"
        )
    router = ScoringRouter.from_registry(
        registry,
        args.name,
        args.tag,
        feature_names=list(features),
        n_jobs=args.jobs,
        max_batch=args.batch_size,
        cache_size=args.cache_size,
        top_k=args.top_k,
    )
    try:
        return _score_stream(args, router, version, list(features))
    finally:
        router.close()


def _score_stream(args, router, version, features: list[str]) -> int:
    """Stream input chunks through the router, appending outputs.

    Peak memory holds one ``--chunk-rows`` chunk, its results and the
    model plane — never the whole cohort.  Chunking does not change a
    single output byte (the engine is row-deterministic and the cache
    is exact), asserted by the chunked-vs-whole driver test.
    """
    writer: CsvBatchWriter | None = None
    report_fh = None
    report_path = args.out.with_suffix(".reports.txt")
    n_rows = 0
    elapsed = 0.0
    has_probability = False
    try:
        for chunk in iter_csv_batches(args.input, args.chunk_rows):
            X = _numeric_matrix(chunk, features)
            t0 = time.perf_counter()
            results = []
            for start in range(0, X.shape[0], args.batch_size):
                block = X[start : start + args.batch_size]
                results.extend(
                    router.score_batch(
                        [
                            ScoreRequest(row=block[i], explain=args.explain)
                            for i in range(block.shape[0])
                        ]
                    )
                )
            elapsed += time.perf_counter() - t0

            scored = chunk.with_column(
                "prediction", np.asarray([r.prediction for r in results])
            )
            if results and results[0].probability is not None:
                has_probability = True
            if has_probability:
                scored = scored.with_column(
                    "probability", np.asarray([r.probability for r in results])
                )
            if writer is None:
                writer = CsvBatchWriter(args.out)
            writer.write(scored)

            if args.explain:
                if report_fh is None:
                    report_fh = report_path.open("w", encoding="utf-8")
                for i, result in enumerate(results, start=n_rows):
                    if i > 0:
                        report_fh.write("\n")
                    report_fh.write(
                        f"# row {i}\n{result.explanation.render()}\n"
                    )
            n_rows += len(results)

        if writer is None:
            # Header-only (or headerless) input: fall back to the
            # whole-table path so the output mirrors the input shape —
            # still validating that the feature columns exist.  Zero
            # rows cannot anchor type inference, so the feature columns
            # are pinned to FLOAT explicitly.
            table = read_csv(
                args.input,
                types={name: ColumnType.FLOAT for name in features},
            )
            _numeric_matrix(table, features)
            scored = table.with_column(
                "prediction", np.empty(0, dtype=np.float64)
            )
            writer = CsvBatchWriter(args.out)
            writer.write(scored)
            if args.explain:
                report_path.write_text("", encoding="utf-8")
    finally:
        if writer is not None:
            writer.close()
        if report_fh is not None:
            report_fh.close()

    print(f"scored {n_rows} rows with {version.ref} -> {args.out}")
    if args.explain:
        print(f"wrote {n_rows} attribution reports -> {report_path}")
    cache = router.cache_stats
    rate = n_rows / elapsed if elapsed > 0 else float("inf")
    workers = f", {router.workers} workers" if router.workers > 1 else ""
    print(
        f"  {elapsed:.3f}s ({rate:.0f} rows/s{workers}), cache hit rate "
        f"{100 * cache.hit_rate:.1f}% ({cache.hits} hits / {cache.misses} misses)"
    )
    return 0


def _ensure_parent(path: Path) -> None:
    parent = path.parent
    if not parent.exists():
        parent.mkdir(parents=True, exist_ok=True)
    if path.is_dir():
        raise ValueError(f"--out {path} is a directory, expected a file path")
