"""GRID bench — the full experiment grid, serial vs parallel backend.

The deterministic executor's contract, measured end to end: FIG4 (12
protocol runs) + TABLE1 (36 per-clinic models) + ABL2 (6 interpolation
arms) + ABL3 (4 weighting arms) rendered under both backends from fresh
contexts.  The rendered artefacts must be **bitwise identical** — that
assertion always runs, so single-core CI boxes stay green — and on
machines with more than two cores the parallel grid must clear a 1.8x
wall-clock speedup, recorded in ``results/bench.json`` either way.
"""

import os
import time

from benchmarks.conftest import record, record_bench
from repro.experiments import (
    ExperimentContext,
    run_fig4,
    run_imbalance_ablation,
    run_imputation_ablation,
    run_table1,
)
from repro.experiments.ablation_imbalance import render_imbalance_ablation
from repro.experiments.ablation_imputation import render_imputation_ablation
from repro.experiments.fig4_performance import render_fig4
from repro.experiments.table1_clinics import render_table1

SPEEDUP_TARGET = 1.8


def _run_grid(n_jobs: int) -> tuple[dict[str, str], float]:
    """Run the whole grid on a fresh context; return artefacts + seconds."""
    ctx = ExperimentContext(seed=7, n_folds=3, n_jobs=n_jobs)
    start = time.perf_counter()
    artefacts = {
        "fig4": render_fig4(run_fig4(ctx)),
        "table1": render_table1(run_table1(ctx)),
        "abl2": render_imputation_ablation(run_imputation_ablation(ctx)),
        "abl3": render_imbalance_ablation(run_imbalance_ablation(ctx)),
    }
    return artefacts, time.perf_counter() - start


def test_grid_parallel_equivalence_and_speedup(results_dir):
    cpus = os.cpu_count() or 1
    jobs = max(2, min(4, cpus))

    parallel_artefacts, t_parallel = _run_grid(jobs)
    serial_artefacts, t_serial = _run_grid(1)

    # The hard guarantee: scheduling must not leak into any artefact.
    for name, serial_text in serial_artefacts.items():
        assert parallel_artefacts[name] == serial_text, (
            f"{name} artefact differs between serial and parallel backends"
        )

    speedup = t_serial / t_parallel
    record(
        results_dir,
        "grid_parallel_speedup",
        (
            "GRID bench (full experiment grid, serial vs parallel)\n"
            "  workload: fig4 + table1 + abl2 + abl3 "
            "(58 protocol runs, fresh context per backend)\n"
            f"  serial:   {t_serial:.1f}s\n"
            f"  parallel: {t_parallel:.1f}s with {jobs} workers on "
            f"{cpus} CPU(s)\n"
            f"  speedup: {speedup:.2f}x "
            f"(target >= {SPEEDUP_TARGET}x when > 2 cores)\n"
            "  artefacts: bitwise identical across backends"
        ),
    )
    record_bench(
        results_dir,
        "grid_parallel",
        t_parallel,
        speedup=speedup,
        config={
            "jobs": jobs,
            "cpus": cpus,
            "seed": 7,
            "n_folds": 3,
            "experiments": ["fig4", "table1", "abl2", "abl3"],
        },
    )
    if cpus > 2:
        assert speedup >= SPEEDUP_TARGET
