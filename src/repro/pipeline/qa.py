"""Quality-assurance statistics (paper section 3, "Quality Assurance").

The paper characterises missingness before choosing the interpolation
bound: gap sizes (mean ~5 consecutive missing observations, max 17),
gaps per patient (mean ~108 across all series, max 284), and the
retained sample count after imputation (2,250 of a possible 4,176).
``gap_report`` reproduces those statistics for a synthetic cohort and
``retention_sweep`` reruns sample building across interpolation bounds —
the experiment behind the paper's "more or less aggressive
interpolation" model-selection step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cohort.dataset import CohortDataset
from repro.pipeline.prep import cohort_prep
from repro.pipeline.samples import build_dd_samples

__all__ = ["GapReport", "gap_report", "retention_sweep"]


@dataclass(frozen=True)
class GapReport:
    """Cohort-level missingness statistics.

    Attributes
    ----------
    mean_gap_length / max_gap_length:
        Over all maximal missing runs in all (patient, item) series.
    mean_gaps_per_patient / max_gaps_per_patient:
        Number of gaps (any size) per patient, summed over their 56
        item series.
    missing_fraction:
        Overall fraction of missing PRO cells.
    n_patients:
        Number of patients considered.
    """

    mean_gap_length: float
    max_gap_length: int
    mean_gaps_per_patient: float
    max_gaps_per_patient: int
    missing_fraction: float
    n_patients: int

    def render(self) -> str:
        """Plain-text summary (used by the QA bench)."""
        return (
            f"gaps: mean length {self.mean_gap_length:.2f} "
            f"(max {self.max_gap_length}); per patient mean "
            f"{self.mean_gaps_per_patient:.1f} (max {self.max_gaps_per_patient}); "
            f"missing {100 * self.missing_fraction:.1f}% of PRO cells"
        )


def gap_report(cohort: CohortDataset) -> GapReport:
    """Compute the paper's QA statistics for a cohort.

    One vectorised run-length pass over the month-sorted PRO matrix of
    the shared :class:`~repro.pipeline.prep.CohortPrep` (runs broken at
    patient boundaries), replacing the original per-(patient, item)
    loop, which is preserved as the oracle in
    :func:`repro.pipeline.reference.gap_report_loop`.
    """
    prep = cohort_prep(cohort)
    missing = np.isnan(prep.pro_matrix_sorted)
    n_rows = missing.shape[0]
    n_patients = len(prep.patient_ids)
    if n_rows == 0:
        raise ValueError("cohort has no PRO rows")

    first_row = np.zeros(n_rows, dtype=bool)
    first_row[prep.pro_starts[:-1]] = True
    prev = np.empty_like(missing)
    prev[0] = False
    prev[1:] = missing[:-1]
    prev[first_row] = False
    run_starts = missing & ~prev
    nxt = np.empty_like(missing)
    nxt[-1] = False
    nxt[:-1] = missing[1:]
    last_row = np.zeros(n_rows, dtype=bool)
    last_row[prep.pro_starts[1:] - 1] = True
    nxt[last_row] = False
    run_ends = missing & ~nxt

    start_row, start_col = np.nonzero(run_starts)
    end_row, end_col = np.nonzero(run_ends)
    # Pair k-th start with k-th end of the same (column, patient) series.
    s_order = np.lexsort((start_row, start_col))
    e_order = np.lexsort((end_row, end_col))
    lengths = end_row[e_order] - start_row[s_order] + 1
    gaps_per_patient = np.bincount(
        prep.pro_codes_sorted[start_row], minlength=n_patients
    )

    return GapReport(
        mean_gap_length=float(lengths.mean()) if lengths.size else 0.0,
        max_gap_length=int(lengths.max()) if lengths.size else 0,
        mean_gaps_per_patient=float(np.mean(gaps_per_patient)),
        max_gaps_per_patient=int(np.max(gaps_per_patient)),
        missing_fraction=(
            float(missing.sum()) / missing.size if missing.size else 0.0
        ),
        n_patients=n_patients,
    )


def retention_sweep(
    cohort: CohortDataset,
    max_gaps: tuple[int, ...] = (0, 1, 3, 5, 9, 17),
    outcome: str = "qol",
) -> dict[int, dict[str, float]]:
    """Sample retention as a function of the interpolation bound.

    Returns ``{max_gap: {"retained": n, "possible": N, "fraction": f}}``
    where ``possible`` counts every (patient, window, month) slot with a
    measured outcome — the paper's 4,176 figure (261 patients x 16
    months).
    """
    cfg = cohort.config
    possible = 0
    visits = cohort.outcome_visits()
    values = visits[outcome]
    possible = int(np.sum(~np.isnan(values)) * len(cfg.window_months(1)))

    out: dict[int, dict[str, float]] = {}
    for max_gap in max_gaps:
        samples = build_dd_samples(cohort, outcome, max_gap=max_gap)
        out[max_gap] = {
            "retained": float(samples.n_samples),
            "possible": float(possible),
            "fraction": samples.n_samples / possible if possible else 0.0,
        }
    return out
