"""Recursive per-sample TreeSHAP — the reference oracle.

This is the original interpreter-bound implementation of exact
path-dependent TreeSHAP (Lundberg et al. 2018, Algorithm 2): one
recursive pass per (sample, tree) with explicit ``_Path`` bookkeeping,
plus the conditioned variant used for interaction values.  The
production engine is the batched one in
:mod:`repro.explain.treeshap` / :mod:`repro.explain.interactions`;
this module is kept verbatim as an independently-derived oracle for the
equivalence test suite (and both are property-tested against brute-force
subset enumeration in :mod:`repro.explain.exact`).
"""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import LEAF, Tree, TreeEnsemble
from repro.explain.structure import tree_expected_value

__all__ = [
    "ReferenceTreeShapExplainer",
    "ReferenceTreeShapInteractionExplainer",
]


class _Path:
    """The subset-weight path of Algorithm 2 (parallel arrays).

    ``feature[i]``, ``zero_fraction[i]``, ``one_fraction[i]`` describe
    the i-th split on the current root-to-node path; ``pweight[i]`` is
    the summed weight of subsets of size i flowing down.
    """

    __slots__ = ("feature", "zero", "one", "weight", "length")

    def __init__(self, capacity: int):
        self.feature = np.empty(capacity, dtype=np.int64)
        self.zero = np.empty(capacity, dtype=np.float64)
        self.one = np.empty(capacity, dtype=np.float64)
        self.weight = np.empty(capacity, dtype=np.float64)
        self.length = 0

    def copy(self) -> "_Path":
        clone = _Path(len(self.feature))
        n = self.length
        clone.feature[:n] = self.feature[:n]
        clone.zero[:n] = self.zero[:n]
        clone.one[:n] = self.one[:n]
        clone.weight[:n] = self.weight[:n]
        clone.length = n
        return clone

    def extend(self, zero_fraction: float, one_fraction: float, feature: int):
        m = self.length
        self.feature[m] = feature
        self.zero[m] = zero_fraction
        self.one[m] = one_fraction
        self.weight[m] = 1.0 if m == 0 else 0.0
        for i in range(m - 1, -1, -1):
            self.weight[i + 1] += one_fraction * self.weight[i] * (i + 1) / (m + 1)
            self.weight[i] = zero_fraction * self.weight[i] * (m - i) / (m + 1)
        self.length = m + 1

    def unwind(self, index: int):
        m = self.length - 1
        one = self.one[index]
        zero = self.zero[index]
        n = self.weight[m]
        for i in range(m - 1, -1, -1):
            if one != 0.0:
                t = self.weight[i]
                self.weight[i] = n * (m + 1) / ((i + 1) * one)
                n = t - self.weight[i] * zero * (m - i) / (m + 1)
            else:
                self.weight[i] = self.weight[i] * (m + 1) / (zero * (m - i))
        for i in range(index, m):
            self.feature[i] = self.feature[i + 1]
            self.zero[i] = self.zero[i + 1]
            self.one[i] = self.one[i + 1]
        self.length = m

    def unwound_sum(self, index: int) -> float:
        """Sum of weights after a hypothetical unwind of ``index``."""
        m = self.length - 1
        one = self.one[index]
        zero = self.zero[index]
        total = 0.0
        if one != 0.0:
            n = self.weight[m]
            for i in range(m - 1, -1, -1):
                tmp = n * (m + 1) / ((i + 1) * one)
                total += tmp
                n = self.weight[i] - tmp * zero * (m - i) / (m + 1)
        else:
            for i in range(m - 1, -1, -1):
                total += self.weight[i] * (m + 1) / (zero * (m - i))
        return total


def _tree_shap(tree: Tree, x: np.ndarray, phi: np.ndarray) -> None:
    """Accumulate one tree's SHAP values for sample ``x`` into ``phi``."""
    max_depth = tree.max_depth() + 2

    def hot_cold(node: int) -> tuple[int, int]:
        v = x[tree.feature[node]]
        if np.isnan(v):
            go_left = bool(tree.missing_left[node])
        else:
            go_left = bool(v <= tree.threshold[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        return (left, right) if go_left else (right, left)

    def recurse(node: int, path: _Path, zero_fraction: float,
                one_fraction: float, feature: int) -> None:
        path = path.copy()
        path.extend(zero_fraction, one_fraction, feature)
        if tree.children_left[node] == LEAF:
            value = tree.value[node]
            for i in range(1, path.length):
                w = path.unwound_sum(i)
                phi[path.feature[i]] += (
                    w * (path.one[i] - path.zero[i]) * value
                )
            return

        hot, cold = hot_cold(node)
        split_feature = int(tree.feature[node])
        cover = tree.cover[node]
        hot_zero = tree.cover[hot] / cover
        cold_zero = tree.cover[cold] / cover
        incoming_zero, incoming_one = 1.0, 1.0
        # If this feature already appeared on the path, undo its entry
        # and carry its fractions (each feature appears at most once).
        for i in range(1, path.length):
            if path.feature[i] == split_feature:
                incoming_zero = path.zero[i]
                incoming_one = path.one[i]
                path.unwind(i)
                break
        recurse(hot, path, incoming_zero * hot_zero, incoming_one, split_feature)
        recurse(cold, path, incoming_zero * cold_zero, 0.0, split_feature)

    root_path = _Path(max_depth + 1)
    recurse(0, root_path, 1.0, 1.0, -1)


def _conditioned_tree_shap(
    tree: Tree,
    x: np.ndarray,
    phi: np.ndarray,
    condition: int,
    condition_feature: int,
) -> None:
    """TreeSHAP with one feature forced hot (+1) / cold (-1).

    ``condition = 0`` reduces to the unconditioned algorithm.
    """
    max_depth = tree.max_depth() + 2

    def hot_cold(node: int) -> tuple[int, int]:
        v = x[tree.feature[node]]
        if np.isnan(v):
            go_left = bool(tree.missing_left[node])
        else:
            go_left = bool(v <= tree.threshold[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        return (left, right) if go_left else (right, left)

    def recurse(
        node: int,
        path: _Path,
        zero_fraction: float,
        one_fraction: float,
        feature: int,
        condition_fraction: float,
    ) -> None:
        if condition_fraction == 0.0:
            return
        path = path.copy()
        # Skip crediting the conditioned feature on the path.
        if condition == 0 or condition_feature != feature:
            path.extend(zero_fraction, one_fraction, feature)
        if tree.children_left[node] == LEAF:
            value = tree.value[node]
            for i in range(1, path.length):
                w = path.unwound_sum(i)
                phi[path.feature[i]] += (
                    w * (path.one[i] - path.zero[i]) * value * condition_fraction
                )
            return

        hot, cold = hot_cold(node)
        split_feature = int(tree.feature[node])
        cover = tree.cover[node]
        hot_zero = tree.cover[hot] / cover
        cold_zero = tree.cover[cold] / cover

        hot_condition = condition_fraction
        cold_condition = condition_fraction
        if condition > 0 and split_feature == condition_feature:
            cold_condition = 0.0
        elif condition < 0 and split_feature == condition_feature:
            hot_condition *= hot_zero
            cold_condition *= cold_zero

        incoming_zero, incoming_one = 1.0, 1.0
        for i in range(1, path.length):
            if path.feature[i] == split_feature:
                incoming_zero = path.zero[i]
                incoming_one = path.one[i]
                path.unwind(i)
                break
        recurse(
            hot,
            path,
            incoming_zero * hot_zero,
            incoming_one,
            split_feature,
            hot_condition,
        )
        recurse(
            cold,
            path,
            incoming_zero * cold_zero,
            0.0,
            split_feature,
            cold_condition,
        )

    recurse(0, _Path(max_depth + 1), 1.0, 1.0, -1, 1.0)


class ReferenceTreeShapExplainer:
    """Per-sample recursive TreeSHAP over a fitted ensemble.

    Same contract as :class:`repro.explain.treeshap.TreeShapExplainer`
    (which is the batched production engine and matches this one to
    float tolerance — see ``tests/explain/test_batched_equivalence.py``),
    but O(n_samples * n_trees) recursive Python passes.  Kept as the
    oracle and as the baseline of the Fig. 6/7 explain benchmarks.
    """

    def __init__(self, model):
        ensemble = getattr(model, "ensemble_", model)
        if not isinstance(ensemble, TreeEnsemble):
            raise TypeError(
                "model must be a TreeEnsemble or a fitted GB estimator"
            )
        if ensemble.n_trees == 0:
            raise ValueError("cannot explain an empty ensemble")
        self.ensemble = ensemble
        self.expected_value = ensemble.base_score + sum(
            tree_expected_value(t) for t in ensemble.trees
        )

    def shap_values(self, X: np.ndarray) -> np.ndarray:
        """SHAP values, shape ``(n_samples, n_features)``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {X.shape}")
        phi = np.zeros(X.shape, dtype=np.float64)
        for tree in self.ensemble.trees:
            for i in range(X.shape[0]):
                _tree_shap(tree, X[i], phi[i])
        return phi

    def shap_values_single(self, x: np.ndarray) -> np.ndarray:
        """SHAP values of one sample, shape ``(n_features,)``."""
        return self.shap_values(np.asarray(x)[None, :])[0]


class ReferenceTreeShapInteractionExplainer:
    """Per-sample recursive SHAP interaction matrices (oracle).

    ``O(n_used_features)`` conditioned recursive passes per tree per
    sample; superseded by the batched
    :class:`repro.explain.interactions.TreeShapInteractionExplainer`.
    """

    def __init__(self, model):
        ensemble = getattr(model, "ensemble_", model)
        if not isinstance(ensemble, TreeEnsemble):
            raise TypeError("model must be a TreeEnsemble or fitted estimator")
        if ensemble.n_trees == 0:
            raise ValueError("cannot explain an empty ensemble")
        self.ensemble = ensemble

    def shap_interaction_values(self, x: np.ndarray, n_features: int) -> np.ndarray:
        """The ``(n_features, n_features)`` interaction matrix for ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"expected a single sample, got shape {x.shape}")

        out = np.zeros((n_features, n_features), dtype=np.float64)
        plain = np.zeros(n_features, dtype=np.float64)
        for tree in self.ensemble.trees:
            _conditioned_tree_shap(tree, x, plain, 0, -1)
            for i in [int(f) for f in tree.used_features()]:
                phi_on = np.zeros(n_features, dtype=np.float64)
                phi_off = np.zeros(n_features, dtype=np.float64)
                _conditioned_tree_shap(tree, x, phi_on, 1, i)
                _conditioned_tree_shap(tree, x, phi_off, -1, i)
                delta = (phi_on - phi_off) / 2.0
                delta[i] = 0.0
                out[i] += delta

        # Symmetrise is unnecessary (the construction is symmetric up to
        # float error) but cheap insurance; then set main effects so each
        # row sums to the plain SHAP value.
        out = (out + out.T) / 2.0
        np.fill_diagonal(out, 0.0)
        np.fill_diagonal(out, plain - out.sum(axis=1))
        return out
