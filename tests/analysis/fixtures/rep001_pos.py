"""REP001 positive: batch-shape-dependent reductions, every spelling."""

# repro: scope[row-deterministic]

import numpy as np


def total(matrix):
    return matrix.sum()  # no axis: full reduction over the batch


def axis_none(matrix):
    return matrix.sum(axis=None)  # explicit None is still unfixed


def projected(matrix, weights):
    return matrix @ weights  # BLAS matmul: order depends on batch shape


def dotted(matrix, weights):
    return np.dot(matrix, weights)


def einsummed(matrix, weights):
    return np.einsum("ij,j->i", matrix, weights)
