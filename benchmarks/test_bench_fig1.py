"""FIG1 bench — outcome distributions (paper Fig. 1).

Expected shape vs the paper: QoL mass concentrated in the 0.6-0.9 bins,
SPPB mass rising towards 11-12, Falls with a strong False majority.
"""

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_fig1
from repro.experiments.fig1_distributions import render_fig1


def test_fig1_distributions(benchmark, ctx, results_dir):
    runner = timed(run_fig1)
    result = benchmark.pedantic(runner, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig1_distributions", render_fig1(result))
    record_bench(
        results_dir,
        "fig1_distributions",
        min(runner.times),
        config={"seed": ctx.seed},
    )

    # Paper-shape assertions (Fig. 1a-c).
    assert result["qol_counts"][6:9].sum() > result["qol_counts"][:5].sum()
    assert result["sppb_counts"][9:].sum() > result["sppb_counts"][:6].sum()
    assert result["falls_false"] > 2 * result["falls_true"]
