"""Intra-fit parallel histogram accumulation (feature-block sharding).

The tree grower's per-level candidate scan is dominated by building the
``(n_channels, n_features, stride)`` gradient/hessian histograms of
every scannable node.  :class:`HistogramPool` parallelises that build
*inside a single fit* without changing a single bit of the result:

* Features are partitioned once into contiguous blocks, one per worker.
  Block ownership is **fixed for the life of the pool**, so every
  (feature, bin) cell is always accumulated by the same worker.
* The F-contiguous binned matrix is exported to POSIX shared memory
  once per fit; the round's gradient/hessian arrays are written into a
  pre-created shared buffer once per boosting round
  (:meth:`HistogramPool.begin_round`).  Long-lived fork workers map all
  segments read-only at startup — nothing large is ever pickled.
* The grower batches all nodes of a tree level into one *wave*
  (:meth:`HistogramPool.accumulate`): the concatenated row indices are
  written to a shared scratch buffer, each worker bincounts its feature
  block for every node of the wave into its disjoint slice of a shared
  output buffer, and the parent copies the assembled histograms out.

Bitwise determinism
-------------------
Each (feature, bin) cell is one ``np.bincount`` over the node's rows in
ascending row order — exactly the serial grower's accumulation — and
float64 throughout.  Sharding only decides *which process* runs a
cell's bincount, never the order of the additions inside it, so the
assembled histograms are bitwise identical to the serial path for any
worker count (asserted end-to-end in
``tests/boosting/test_parallel_fit.py``).

Robustness mirrors :mod:`repro.parallel.executor`: ``n_jobs <= 1``
degrades to in-process accumulation; when fork is unavailable (spawn
platforms, multithreaded parents) a thread backend operates directly on
the parent's arrays; a worker dying mid-fit routes its feature block to
in-process recompute for the current wave — slower, never different —
and the supervisor respawns the slot (bounded backoff) before the next
:meth:`HistogramPool.accumulate`, re-mapping the same segments and the
same feature block, so block ownership (and with it bitwise identity)
survives any kill schedule.  With ``task_deadline`` set a *stuck*
worker is detected mid-wave, its block recomputed in-process and the
process killed for respawn.  Inside an executor worker
:func:`~repro.parallel.executor.resolve_jobs` answers 1, so
grid-parallel experiment runs never nest a second-level histogram pool.
"""
# repro: scope[row-deterministic]

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import connection as mp_connection
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.faults import inject, should_kill
from repro.parallel.executor import _start_method, resolve_deadline, resolve_jobs

__all__ = ["HistogramPool"]

#: The output buffer always reserves three channels (grad, hess, count)
#: even for unit-hessian rounds that use only two.
_MAX_CHANNELS = 3

#: Capacity ceiling of the shared output buffer; waves with more nodes
#: than fit are transparently chunked.
_OUT_CAP_BYTES = 32 << 20

#: Default small-node threshold below which the flat offset-codes
#: bincount replaces the per-feature loop (kept in sync with the
#: grower via ``HistogramPool.flat_rows_max``).
_FLAT_ROWS_MAX = 1024


def _feature_blocks(n_features: int, jobs: int) -> list[tuple[int, int]]:
    """Contiguous ``[f0, f1)`` blocks, balanced to within one feature."""
    jobs = max(1, min(jobs, n_features))
    base, extra = divmod(n_features, jobs)
    blocks: list[tuple[int, int]] = []
    start = 0
    for w in range(jobs):
        stop = start + base + (1 if w < extra else 0)
        blocks.append((start, stop))
        start = stop
    return blocks


def _accumulate_block(
    binned: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    rows: np.ndarray,
    hist: np.ndarray,
    f0: int,
    f1: int,
    mask: np.ndarray | None,
    flat_rows_max: int,
) -> None:
    """Fill ``hist[:, f0:f1, :]`` with one node's per-(feature, bin) sums.

    This is the serial grower's accumulation restricted to one feature
    block: every (feature, bin) cell is a single ``np.bincount`` over
    ``rows`` in ascending row order, so the result is independent of
    how features are partitioned across workers.  Small nodes use the
    flat offset-codes bincount (which, like the serial flat path, also
    fills features excluded by ``mask`` — harmless, every consumer is
    mask-guarded); large nodes accumulate one masked-in feature at a
    time, leaving masked-out features at exact zero.
    """
    nch = hist.shape[0]
    stride = hist.shape[2]
    unit_hess = nch == 2
    block = hist[:, f0:f1, :]
    g_rows = grad[rows]
    if rows.size <= flat_rows_max:
        d_block = f1 - f0
        offsets = np.arange(d_block, dtype=np.int64) * stride
        flat = (binned[rows, f0:f1].astype(np.int64) + offsets).ravel()
        size = d_block * stride
        block[0] = np.bincount(
            flat, weights=np.repeat(g_rows, d_block), minlength=size
        ).reshape(d_block, stride)
        if unit_hess:
            block[1] = np.bincount(flat, minlength=size).reshape(d_block, stride)
        else:
            block[1] = np.bincount(
                flat, weights=np.repeat(hess[rows], d_block), minlength=size
            ).reshape(d_block, stride)
            block[2] = np.bincount(flat, minlength=size).reshape(d_block, stride)
        return
    block[...] = 0.0
    h_rows = None if unit_hess else hess[rows]
    if mask is None:
        features = range(f0, f1)
    else:
        features = np.flatnonzero(mask[f0:f1]) + f0
    for f in features:
        codes = binned[:, f][rows]
        local = f - f0
        block[0, local] = np.bincount(codes, weights=g_rows, minlength=stride)
        if unit_hess:
            block[1, local] = np.bincount(codes, minlength=stride)
        else:
            block[1, local] = np.bincount(codes, weights=h_rows, minlength=stride)
            block[2, local] = np.bincount(codes, minlength=stride)


def _hist_worker_loop(conn, specs, block, flat_rows_max, worker_index=0) -> None:
    """One feature-block worker: map the segments once, serve waves.

    A wave message is ``(bounds, nch, mask)``: per-node ``(start,
    stop)`` extents into the shared row buffer, the channel count and
    the round's feature mask (``None`` = all features active).  The
    worker writes node ``i``'s block slice into ``out[i, :nch, f0:f1]``
    and acknowledges; output slices of distinct workers are disjoint,
    so no synchronisation beyond the ack is needed.
    """
    inject("shm.attach", worker_index)
    segments = []
    arrays = {}
    for name, (shm_name, shape, dtype) in specs.items():
        segment = shared_memory.SharedMemory(name=shm_name)
        segments.append(segment)  # keep mapped for the worker's lifetime
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    binned = arrays["binned"].T  # (n, d), F-contiguous view
    gh = arrays["gh"]
    rows_buf = arrays["rows"]
    out = arrays["out"]
    f0, f1 = block
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if message is None:
            break
        bounds, nch, mask = message
        try:
            inject("hist.task", worker_index)
            for slot, (start, stop) in enumerate(bounds):
                _accumulate_block(
                    binned,
                    gh[0],
                    gh[1],
                    rows_buf[start:stop],
                    out[slot, :nch],
                    f0,
                    f1,
                    mask,
                    flat_rows_max,
                )
        except BaseException as exc:  # ship the failure, keep serving
            try:
                conn.send(("error", exc))
            except Exception:  # unpicklable exception: die loudly
                raise exc from None
        else:
            conn.send(("ok", None))
            inject("hist.task.done", worker_index)
    conn.close()


class HistogramPool:
    """Persistent feature-block workers for one fit's histogram waves.

    Parameters
    ----------
    binned:
        ``(n_samples, n_features)`` uint8 bin codes (made F-contiguous,
        matching the grower's training layout).
    missing_bin:
        The mapper's missing-value bin code; ``stride = missing_bin + 1``
        is the per-feature histogram width.
    n_jobs:
        Worker count (:func:`~repro.parallel.executor.resolve_jobs`
        convention: argument over ``REPRO_JOBS`` over serial; capped at
        ``n_features``).
    backend:
        ``"auto"`` (fork processes when safe, else threads),
        ``"process"``, ``"thread"`` or ``"serial"`` — the explicit
        values exist for tests.

    Lifecycle: construct once per fit, call :meth:`begin_round` once
    per boosting round, :meth:`accumulate` once per node wave, and
    :meth:`close` in a ``finally`` — it shuts workers down and unlinks
    every shared segment (idempotent; also runs on ``with`` exit).
    """

    #: Per-slot respawn budget and base backoff (doubles per attempt).
    _RESPAWN_LIMIT = 3
    _RESPAWN_BACKOFF = 0.05

    def __init__(
        self,
        binned: np.ndarray,
        missing_bin: int,
        *,
        n_jobs: int | None = None,
        backend: str = "auto",
        flat_rows_max: int = _FLAT_ROWS_MAX,
        out_slots: int | None = None,
        task_deadline: float | None = None,
        max_respawns: int | None = None,
        close_timeout: float = 5.0,
    ):
        if binned.dtype != np.uint8:
            raise TypeError("binned matrix must be uint8")
        if backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown backend {backend!r}")
        self.binned = (
            binned if binned.flags.f_contiguous else np.asfortranarray(binned)
        )
        self.stride = missing_bin + 1
        self.flat_rows_max = flat_rows_max
        n, d = self.binned.shape
        self._n = n
        self._d = d
        self.jobs = max(1, min(resolve_jobs(n_jobs), d))
        self._blocks = _feature_blocks(d, self.jobs)
        if out_slots is None:
            cell_bytes = _MAX_CHANNELS * d * self.stride * 8
            out_slots = max(1, _OUT_CAP_BYTES // max(cell_bytes, 1))
        self._slots = max(1, int(out_slots))
        # Per-round state (set by begin_round).
        self._nch = _MAX_CHANNELS
        self._mask: np.ndarray | None = None
        self._grad: np.ndarray | None = None
        self._hess: np.ndarray | None = None
        # Backend state.
        self.mode = "serial"
        self._closed = False
        self._dead: set[int] = set()
        self._procs: list = []
        self._conns: list = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._specs: dict[str, tuple[str, tuple[int, ...], str]] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._out_local: np.ndarray | None = None
        self._context = None
        # Supervisor state (process backend only).
        self.task_deadline = resolve_deadline(task_deadline)
        self.max_respawns = (
            self._RESPAWN_LIMIT if max_respawns is None else max_respawns
        )
        self.close_timeout = close_timeout
        self.workers_respawned = 0
        self.deadline_kills = 0
        self._respawn_attempts: dict[int, int] = {}
        self._retry_after: dict[int, float] = {}
        if self.jobs <= 1 or n == 0 or backend == "serial":
            return
        if backend == "auto":
            backend = "process" if _start_method() == "fork" else "thread"
        if backend == "process":
            if not self._start_processes():
                backend = "thread"  # no usable shared memory / no fork
        if backend == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.jobs)
            self._out_local = np.empty(
                (self._slots, _MAX_CHANNELS, d, self.stride), dtype=np.float64
            )
            self.mode = "thread"

    # ------------------------------------------------------------------
    @property
    def workers_alive(self) -> int:
        """Workers still accumulating remotely (1 for thread/serial)."""
        if self._closed:
            return 0
        if self.mode != "process":
            return 1
        return self.jobs - len(self._dead)

    def __enter__(self) -> "HistogramPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _create(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """One named shared segment + the parent's writable view of it."""
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        # repro: allow[REP003] -- pool-owned segments: close() unlinks them all, and every consumer wraps the pool in try/finally (gbm.fit) or a with block
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(segment)
        self._specs[name] = (segment.name, shape, str(np.dtype(dtype)))
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)

    def _start_processes(self) -> bool:
        """Export the segments and fork the block workers."""
        if _start_method() != "fork":
            return False
        n, d = self._n, self._d
        try:
            self._gh = self._create("gh", (2, n), np.float64)
            self._rows_buf = self._create("rows", (n,), np.int64)
            self._out = self._create(
                "out", (self._slots, _MAX_CHANNELS, d, self.stride), np.float64
            )
            shared_binned = self._create("binned", (d, n), np.uint8)
        except OSError:
            self._release_segments()
            return False
        shared_binned[:] = self.binned.T  # F-order payload, copied once
        self._context = get_context("fork")
        try:
            for w in range(len(self._blocks)):
                self._spawn_worker(w)
        except OSError:
            self.close()
            self._closed = False
            self._procs = []
            self._conns = []
            return False
        self.mode = "process"
        return True

    def _spawn_worker(self, w: int) -> None:
        """(Re)start the worker owning feature block ``w``."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        proc = self._context.Process(
            target=_hist_worker_loop,
            args=(
                child_conn,
                self._specs,
                self._blocks[w],
                self.flat_rows_max,
                w,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if w < len(self._procs):
            old = self._procs[w]
            if old is not None:
                old.join(timeout=0.2)  # reap the crashed predecessor
            self._procs[w] = proc
            self._conns[w] = parent_conn
        else:
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _heal(self) -> None:
        """Respawn dead block workers, budgeted and backed off.

        A respawned worker re-maps the same segments and receives the
        same fixed feature block, so cell ownership — the second leg of
        the bitwise-safety argument — is restored, not renegotiated.
        The shared ``gh`` buffer always holds the current round's
        gradients, so a worker may rejoin mid-round safely.
        """
        if (
            not self._dead
            or self.mode != "process"
            or self.max_respawns <= 0
            or self._context is None
        ):
            return
        now = time.perf_counter()
        for w in sorted(self._dead):
            attempts = self._respawn_attempts.get(w, 0)
            if attempts >= self.max_respawns:
                continue
            if now < self._retry_after.get(w, 0.0):
                continue
            self._respawn_attempts[w] = attempts + 1
            self._retry_after[w] = now + self._RESPAWN_BACKOFF * (2.0**attempts)
            try:
                self._spawn_worker(w)
            except OSError:  # pragma: no cover - spawn pressure
                continue
            self._dead.discard(w)
            self.workers_respawned += 1

    def _kill_worker(self, w: int) -> None:
        """SIGKILL block worker ``w`` (deadline reaper / fault site)."""
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=self.close_timeout)

    # ------------------------------------------------------------------
    def begin_round(
        self,
        grad: np.ndarray,
        hess: np.ndarray,
        feature_mask: np.ndarray,
        n_channels: int,
    ) -> None:
        """Publish one boosting round's gradients to the workers.

        Writes the round's gradient/hessian arrays into the shared
        buffer (all workers are idle between waves, so the write cannot
        race a read) and records the round's column mask and channel
        count for the waves that follow.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._nch = int(n_channels)
        self._mask = (
            None
            if bool(feature_mask.all())
            else np.ascontiguousarray(feature_mask, dtype=bool)
        )
        self._grad = grad
        self._hess = hess
        if self.mode == "process":
            self._gh[0] = grad
            self._gh[1] = hess

    def accumulate(self, rows_list: list[np.ndarray]) -> list[np.ndarray]:
        """Histograms for one wave of nodes, in input order.

        Each entry of ``rows_list`` is one node's (sorted, disjoint)
        row indices; the return value is one float64
        ``(n_channels, n_features, stride)`` array per node, bitwise
        identical to the serial grower's ``_histograms`` output.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._grad is None:
            raise RuntimeError("begin_round() must be called before accumulate()")
        self._heal()
        hists: list[np.ndarray] = []
        for start in range(0, len(rows_list), self._slots):
            hists.extend(self._wave(rows_list[start : start + self._slots]))
        return hists

    def _wave(self, chunk: list[np.ndarray]) -> list[np.ndarray]:
        nch = self._nch
        if self.mode == "serial" or (
            self.mode == "process" and len(self._dead) == len(self._procs)
        ):
            return [self._full_hist(rows) for rows in chunk]
        if self.mode == "thread":
            out = self._out_local
            futures = [
                self._executor.submit(self._local_block, chunk, out, f0, f1)
                for f0, f1 in self._blocks
            ]
            for future in futures:
                future.result()
            return [np.array(out[i, :nch]) for i in range(len(chunk))]
        # Process backend: stage the wave's rows, fan out one message
        # per worker, recompute dead workers' blocks in-process while
        # the alive ones crunch.
        bounds: list[tuple[int, int]] = []
        offset = 0
        for rows in chunk:
            stop = offset + rows.size
            self._rows_buf[offset:stop] = rows
            bounds.append((offset, stop))
            offset = stop
        message = (bounds, nch, self._mask)
        pending: list[int] = []
        sent_at: dict[int, float] = {}
        fallback_blocks: list[tuple[int, int]] = []
        for w, block in enumerate(self._blocks):
            if w in self._dead:
                fallback_blocks.append(block)
                continue
            if should_kill("hist.send", w):
                self._kill_worker(w)  # fault plan: crash before the wave
            try:
                self._conns[w].send(message)
            except (BrokenPipeError, OSError):
                self._mark_dead(w)
                fallback_blocks.append(block)
                continue
            pending.append(w)
            sent_at[w] = time.perf_counter()
        for f0, f1 in fallback_blocks:
            self._local_block(chunk, self._out, f0, f1)
        while pending:
            by_conn = {self._conns[w]: w for w in pending}
            timeout = None
            if self.task_deadline is not None:
                expiry = min(sent_at[w] for w in pending) + self.task_deadline
                timeout = max(0.0, expiry - time.perf_counter())
            ready = mp_connection.wait(list(by_conn), timeout)
            if not ready:
                # Deadline pass: a worker is stuck, not dead — kill it,
                # recompute its block in-process, respawn next wave.
                now = time.perf_counter()
                for w in list(pending):
                    if now - sent_at[w] < self.task_deadline:
                        continue
                    pending.remove(w)
                    self.deadline_kills += 1
                    self._kill_worker(w)
                    self._mark_dead(w)
                    f0, f1 = self._blocks[w]
                    self._local_block(chunk, self._out, f0, f1)
                continue
            for conn in ready:
                w = by_conn[conn]
                pending.remove(w)
                f0, f1 = self._blocks[w]
                try:
                    status, _ = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-wave: its feature block is
                    # recomputed in-process this wave; the supervisor
                    # respawns the slot before the next accumulate.
                    self._mark_dead(w)
                    self._local_block(chunk, self._out, f0, f1)
                    continue
                if status != "ok":
                    # The wave failed remotely (e.g. a transient
                    # resource error); the worker survives, this wave's
                    # block is recomputed in-process.
                    self._local_block(chunk, self._out, f0, f1)
        return [np.array(self._out[i, :nch]) for i in range(len(chunk))]

    def _local_block(
        self,
        chunk: list[np.ndarray],
        out: np.ndarray,
        f0: int,
        f1: int,
    ) -> None:
        """Accumulate one feature block for every wave node in-process."""
        for slot, rows in enumerate(chunk):
            _accumulate_block(
                self.binned,
                self._grad,
                self._hess,
                rows,
                out[slot, : self._nch],
                f0,
                f1,
                self._mask,
                self.flat_rows_max,
            )

    def _full_hist(self, rows: np.ndarray) -> np.ndarray:
        """Full-width in-process accumulation (serial degrade path)."""
        hist = np.empty((self._nch, self._d, self.stride), dtype=np.float64)
        _accumulate_block(
            self.binned,
            self._grad,
            self._hess,
            rows,
            hist,
            0,
            self._d,
            self._mask,
            self.flat_rows_max,
        )
        return hist

    def _mark_dead(self, w: int) -> None:
        self._dead.add(w)
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _release_segments(self) -> None:
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._specs = {}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for w, conn in enumerate(self._conns):
            if w in self._dead:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=self.close_timeout)
            if proc.is_alive():
                # Stuck worker (hung wave, ignored shutdown): reap it
                # hard so the segment unlink below cannot be held up.
                proc.terminate()
                proc.join(timeout=self.close_timeout)
        for w, conn in enumerate(self._conns):
            if w not in self._dead:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._procs = []
        self._conns = []
        self._release_segments()
