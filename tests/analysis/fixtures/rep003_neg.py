"""REP003 negative: unlink on an always-executed path (nested finally)."""

from multiprocessing import shared_memory


def guarded(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()
        segment.unlink()


def nested(nbytes):
    outer = None
    try:
        try:
            outer = shared_memory.SharedMemory(create=True, size=nbytes)
        except OSError:
            return b""
        return bytes(outer.buf)
    finally:
        # The unlink lives on the *outer* finally: still always executed.
        if outer is not None:
            outer.close()
            outer.unlink()
