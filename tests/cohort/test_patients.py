"""Unit tests for repro.cohort.patients (latent trajectories)."""

import numpy as np
import pytest

from repro.cohort.patients import generate_patients
from repro.cohort.schema import IC_DOMAINS
from repro.synth import SeedSequenceFactory

from tests.conftest import small_config


@pytest.fixture(scope="module")
def patients():
    cfg = small_config()
    return cfg, generate_patients(cfg, SeedSequenceFactory(cfg.seed))


class TestGeneration:
    def test_total_count(self, patients):
        cfg, pats = patients
        assert len(pats) == cfg.n_patients

    def test_ids_unique(self, patients):
        _, pats = patients
        ids = [p.patient_id for p in pats]
        assert len(set(ids)) == len(ids)

    def test_ids_carry_clinic(self, patients):
        _, pats = patients
        assert all(p.patient_id.startswith(p.clinic) for p in pats)

    def test_deterministic(self, patients):
        cfg, pats = patients
        again = generate_patients(cfg, SeedSequenceFactory(cfg.seed))
        assert all(
            np.array_equal(a.health, b.health) for a, b in zip(pats, again)
        )

    def test_different_seed_differs(self, patients):
        cfg, pats = patients
        other = generate_patients(cfg, SeedSequenceFactory(cfg.seed + 1))
        assert not np.array_equal(pats[0].health, other[0].health)


class TestLatents:
    def test_health_in_unit_interval(self, patients):
        _, pats = patients
        for p in pats:
            assert p.health.min() >= 0.0 and p.health.max() <= 1.0

    def test_health_length_covers_all_months(self, patients):
        cfg, pats = patients
        assert all(len(p.health) == cfg.n_months + 1 for p in pats)

    def test_all_domains_present(self, patients):
        _, pats = patients
        assert set(pats[0].domain_scores) == set(IC_DOMAINS)

    def test_domain_scores_bounded(self, patients):
        _, pats = patients
        for p in pats[:5]:
            for path in p.domain_scores.values():
                assert path.min() >= 0.0 and path.max() <= 1.0

    def test_domains_correlate_with_health(self, patients):
        _, pats = patients
        # Pool across patients: domain scores are health plus noise.
        health = np.concatenate([p.health for p in pats])
        loco = np.concatenate([p.domain_scores["locomotion"] for p in pats])
        assert np.corrcoef(health, loco)[0, 1] > 0.5

    def test_domain_offsets_differ_between_patients(self, patients):
        _, pats = patients
        gaps = [
            float(np.mean(p.domain_scores["cognition"] - p.health)) for p in pats
        ]
        assert np.std(gaps) > 0.02  # persistent per-patient offsets

    def test_ageing_drift_declines_on_average(self):
        cfg = small_config()
        pats = generate_patients(cfg, SeedSequenceFactory(123))
        start = np.mean([p.health[:3].mean() for p in pats])
        end = np.mean([p.health[-3:].mean() for p in pats])
        assert end < start  # negative drift dominates over 18 months

    def test_demographics_ranges(self, patients):
        _, pats = patients
        for p in pats:
            assert 50 <= p.age <= 85  # OPLWH cohort is 50+
            assert 1 <= p.years_with_hiv <= 40

    def test_helper_accessors(self, patients):
        cfg, pats = patients
        p = pats[0]
        assert p.health_at(0) == pytest.approx(float(p.health[0]))
        months = cfg.window_months(1)
        assert p.window_mean(months) == pytest.approx(
            float(np.mean(p.health[months]))
        )
        assert p.window_mean(months, "vitality") == pytest.approx(
            float(np.mean(p.domain_scores["vitality"][months]))
        )
