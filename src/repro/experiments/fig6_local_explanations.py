"""FIG6 — local SHAP explanations for two matched patients (paper Fig. 6).

The paper shows two patients with the *same* predicted SPPB index whose
top-5 Shapley rankings differ — the personalised-medicine argument.  The
runner explains the held-out samples of the SPPB DD model, searches for
a pair of distinct patients with (nearly) identical predictions but
different top-5 feature sets, and returns both reports.
"""

from __future__ import annotations

# repro: scope[row-deterministic]
# The matched pair is selected from per-row SHAP values computed by the
# parallel plane; nothing here may depend on how the batch was sharded.

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext, default_context
from repro.explain import LocalExplanation, local_reports
from repro.serve.plane import parallel_shap

__all__ = ["MatchedPair", "run_fig6", "render_fig6"]

#: Number of held-out samples to explain (SHAP cost control).
_MAX_EXPLAIN = 220


@dataclass(frozen=True)
class MatchedPair:
    """Two same-prediction patients with different explanations."""

    patient_a: str
    patient_b: str
    prediction_a: float
    prediction_b: float
    explanation_a: LocalExplanation
    explanation_b: LocalExplanation

    @property
    def shared_top_features(self) -> set[str]:
        """Intersection of the two top-k feature sets."""
        return set(self.explanation_a.features) & set(self.explanation_b.features)


def run_fig6(
    context: ExperimentContext | None = None,
    k: int = 5,
    tolerance: float = 0.25,
    n_jobs: int | None = None,
) -> MatchedPair:
    """Find and explain a matched patient pair on the SPPB DD model.

    Parameters
    ----------
    k:
        Report size (the paper shows the 5 most relevant SVs).
    tolerance:
        Maximum |prediction difference| for two samples to count as
        "the same SPPB prediction".
    n_jobs:
        Workers for the SHAP sweep (default: the context's ``n_jobs``).
        The sweep is row-sharded over the shared-memory model plane and
        bitwise-identical to the serial pass for every worker count.

    Raises
    ------
    RuntimeError
        If no pair with differing top-k rankings exists among the
        explained samples (does not happen at the default seed).
    """
    ctx = context or default_context()
    result = ctx.result("sppb", "dd", with_fi=True)
    samples = result.samples
    test_idx = result.test_idx[:_MAX_EXPLAIN]
    X = samples.X[test_idx]
    pids = samples.patient_ids[test_idx]

    # One batched TreeSHAP pass explains the whole held-out block
    # (row-sharded across the executor when n_jobs > 1); the predictions
    # fall out of the efficiency axiom, so the model is not traversed a
    # second time.
    shap, expected_value = parallel_shap(
        result.model, X, n_jobs=n_jobs if n_jobs is not None else ctx.n_jobs
    )
    preds = expected_value + shap.sum(axis=1)
    names = list(samples.feature_names)

    order = np.argsort(preds)
    best: tuple[float, int, int] | None = None
    for a_pos in range(len(order) - 1):
        i = order[a_pos]
        for b_pos in range(a_pos + 1, len(order)):
            j = order[b_pos]
            if preds[j] - preds[i] > tolerance:
                break
            if pids[i] == pids[j]:
                continue
            top_i = set(np.argsort(-np.abs(shap[i]))[:k].tolist())
            top_j = set(np.argsort(-np.abs(shap[j]))[:k].tolist())
            overlap = len(top_i & top_j)
            score = float(preds[j] - preds[i]) + overlap
            if best is None or score < best[0]:
                best = (score, int(i), int(j))
    if best is None:
        raise RuntimeError("no same-prediction patient pair found")

    _, i, j = best
    expl_i, expl_j = local_reports(
        shap[[i, j]], X[[i, j]], names, expected_value, k=k
    )
    return MatchedPair(
        patient_a=str(pids[i]),
        patient_b=str(pids[j]),
        prediction_a=float(preds[i]),
        prediction_b=float(preds[j]),
        explanation_a=expl_i,
        explanation_b=expl_j,
    )


def render_fig6(pair: MatchedPair) -> str:
    """Plain-text rendering of the two reports."""
    lines = [
        "FIG6: two patients, same SPPB prediction, different explanations",
        f"  patient A = {pair.patient_a} (pred {pair.prediction_a:.2f})",
        *("  " + line for line in pair.explanation_a.render().splitlines()),
        f"  patient B = {pair.patient_b} (pred {pair.prediction_b:.2f})",
        *("  " + line for line in pair.explanation_b.render().splitlines()),
        f"  shared top-5 features: {sorted(pair.shared_top_features)}",
    ]
    return "\n".join(lines)
