"""Install the offline ``wheel`` shim into the active site-packages.

Run once per environment (idempotent)::

    python tools/install_wheel_shim.py

After this, ``pip install -e .`` works without network access.  The shim
registers the ``bdist_wheel`` distutils command through a dist-info
``entry_points.txt`` so setuptools can discover it.
"""

from __future__ import annotations

import shutil
import site
import sys
from pathlib import Path

SHIM_ROOT = Path(__file__).resolve().parent / "wheelshim"
DIST_INFO = "wheel-0.45.0.dist-info"

METADATA = """\
Metadata-Version: 2.1
Name: wheel
Version: 0.45.0
Summary: Offline shim of the PyPA wheel package (editable-install subset)
"""

ENTRY_POINTS = """\
[distutils.commands]
bdist_wheel = wheel.bdist_wheel:bdist_wheel
"""


def main() -> int:
    try:
        import wheel  # noqa: F401

        if "shim" not in getattr(wheel, "__version__", ""):
            print("a real wheel package is already installed; nothing to do")
            return 0
    except ImportError:
        pass

    target = Path(site.getsitepackages()[0])
    pkg_dst = target / "wheel"
    if pkg_dst.exists():
        shutil.rmtree(pkg_dst)
    shutil.copytree(SHIM_ROOT / "wheel", pkg_dst)

    info_dst = target / DIST_INFO
    info_dst.mkdir(exist_ok=True)
    (info_dst / "METADATA").write_text(METADATA, encoding="utf-8")
    (info_dst / "entry_points.txt").write_text(ENTRY_POINTS, encoding="utf-8")
    (info_dst / "RECORD").write_text("", encoding="utf-8")
    (info_dst / "INSTALLER").write_text("tools/install_wheel_shim.py\n", encoding="utf-8")
    print(f"wheel shim installed into {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
