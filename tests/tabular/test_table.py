"""Unit tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.tabular import Column, ColumnType, Table, concat_tables


@pytest.fixture()
def patients():
    return Table(
        {
            "pid": ["p1", "p2", "p3", "p4"],
            "clinic": ["modena", "sydney", "modena", "hk"],
            "age": [61, 72, 55, 68],
            "fi": [0.12, 0.33, np.nan, 0.25],
        }
    )


class TestConstruction:
    def test_from_mapping(self, patients):
        assert patients.num_rows == 4
        assert patients.num_columns == 4

    def test_from_columns(self):
        t = Table([Column("a", [1.0]), Column("b", [2.0])])
        assert t.column_names == ("a", "b")

    def test_empty_table(self):
        t = Table()
        assert t.num_rows == 0 and t.num_columns == 0

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            Table({"a": [1.0], "b": [1.0, 2.0]})

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table([Column("a", [1.0]), Column("a", [2.0])])

    def test_non_column_rejected(self):
        with pytest.raises(TypeError):
            Table([42])  # type: ignore[list-item]

    def test_schema(self, patients):
        schema = patients.schema
        assert schema["pid"] is ColumnType.STRING
        assert schema["age"] is ColumnType.INT
        assert schema["fi"] is ColumnType.FLOAT


class TestAccess:
    def test_getitem_returns_values(self, patients):
        assert patients["age"].tolist() == [61, 72, 55, 68]

    def test_missing_column_error_lists_available(self, patients):
        with pytest.raises(KeyError, match="pid"):
            patients.column("nope")

    def test_contains(self, patients):
        assert "age" in patients and "nope" not in patients

    def test_row(self, patients):
        row = patients.row(1)
        assert row["pid"] == "p2" and row["age"] == 72

    def test_row_negative_index(self, patients):
        assert patients.row(-1)["pid"] == "p4"

    def test_row_out_of_range(self, patients):
        with pytest.raises(IndexError):
            patients.row(10)

    def test_iter_rows(self, patients):
        rows = list(patients.iter_rows())
        assert len(rows) == 4
        assert rows[2]["clinic"] == "modena"

    def test_len(self, patients):
        assert len(patients) == 4


class TestProjection:
    def test_select_preserves_order(self, patients):
        t = patients.select(["age", "pid"])
        assert t.column_names == ("age", "pid")

    def test_drop(self, patients):
        t = patients.drop(["fi"])
        assert "fi" not in t

    def test_drop_missing_raises(self, patients):
        with pytest.raises(KeyError):
            patients.drop(["nope"])

    def test_with_column_adds(self, patients):
        t = patients.with_column("score", [1.0, 2.0, 3.0, 4.0])
        assert t.num_columns == 5
        assert patients.num_columns == 4  # original untouched

    def test_with_column_replaces(self, patients):
        t = patients.with_column("age", [0, 0, 0, 0])
        assert t["age"].tolist() == [0, 0, 0, 0]

    def test_with_column_length_mismatch(self, patients):
        with pytest.raises(ValueError, match="rows"):
            patients.with_column("bad", [1.0])

    def test_rename(self, patients):
        t = patients.rename({"pid": "patient_id"})
        assert "patient_id" in t and "pid" not in t

    def test_rename_missing_raises(self, patients):
        with pytest.raises(KeyError):
            patients.rename({"nope": "x"})


class TestSelection:
    def test_filter(self, patients):
        t = patients.filter(patients["clinic"] == "modena")
        assert t.num_rows == 2

    def test_filter_requires_bool(self, patients):
        with pytest.raises(TypeError):
            patients.filter(np.array([1, 0, 1, 0]))

    def test_filter_shape_mismatch(self, patients):
        with pytest.raises(ValueError):
            patients.filter(np.array([True]))

    def test_where(self, patients):
        t = patients.where("age", lambda a: a > 60)
        assert t.num_rows == 3

    def test_take_reorders(self, patients):
        t = patients.take([3, 0])
        assert t["pid"].tolist() == ["p4", "p1"]

    def test_take_allows_repetition(self, patients):
        assert patients.take([0, 0]).num_rows == 2

    def test_head(self, patients):
        assert patients.head(2).num_rows == 2

    def test_sort_by_single(self, patients):
        t = patients.sort_by("age")
        assert t["age"].tolist() == [55, 61, 68, 72]

    def test_sort_by_descending(self, patients):
        t = patients.sort_by("age", descending=True)
        assert t["age"].tolist() == [72, 68, 61, 55]

    def test_sort_by_multi_primary_first(self):
        t = Table({"a": [2, 1, 1], "b": [0, 2, 1]}).sort_by(["a", "b"])
        assert t["a"].tolist() == [1, 1, 2]
        assert t["b"].tolist() == [1, 2, 0]

    def test_sort_by_string_column(self, patients):
        t = patients.sort_by("clinic")
        assert t["clinic"].tolist() == ["hk", "modena", "modena", "sydney"]

    def test_unique(self, patients):
        assert patients.unique("clinic") == ["hk", "modena", "sydney"]


class TestGroupBy:
    def test_mean_aggregation(self, patients):
        g = patients.group_by("clinic", {"age": "mean"})
        by = dict(zip(g["clinic"].tolist(), g["age"].tolist()))
        assert by["modena"] == pytest.approx(58.0)

    def test_count(self, patients):
        g = patients.group_by("clinic", {"age": "count"})
        by = dict(zip(g["clinic"].tolist(), g["age"].tolist()))
        assert by["modena"] == 2.0

    def test_nan_skipped_in_mean(self, patients):
        g = patients.group_by("clinic", {"fi": "mean"})
        by = dict(zip(g["clinic"].tolist(), g["fi"].tolist()))
        assert by["modena"] == pytest.approx(0.12)

    def test_multi_key(self):
        t = Table({"a": [1, 1, 2], "b": ["x", "x", "y"], "v": [1.0, 3.0, 5.0]})
        g = t.group_by(["a", "b"], {"v": "sum"})
        assert g.num_rows == 2

    def test_callable_aggregation(self, patients):
        g = patients.group_by("clinic", {"age": lambda a: int(a.max())})
        by = dict(zip(g["clinic"].tolist(), g["age"].tolist()))
        assert by["modena"] == 61

    def test_cannot_aggregate_key(self, patients):
        with pytest.raises(ValueError):
            patients.group_by("clinic", {"clinic": "count"})

    def test_first_last(self):
        t = Table({"k": [1, 1], "v": [10.0, 20.0]})
        first = t.group_by("k", {"v": "first"})["v"][0]
        last = t.group_by("k", {"v": "last"})["v"][0]
        assert (first, last) == (10.0, 20.0)


class TestJoin:
    def test_inner_join(self, patients):
        visits = Table({"pid": ["p1", "p2", "p9"], "qol": [0.7, 0.8, 0.9]})
        j = patients.join(visits, on="pid")
        assert j.num_rows == 2
        assert "qol" in j

    def test_left_join_pads_missing(self, patients):
        visits = Table({"pid": ["p1"], "qol": [0.7]})
        j = patients.join(visits, on="pid", how="left")
        assert j.num_rows == 4
        qol = j["qol"]
        assert np.isnan(qol).sum() == 3

    def test_left_join_promotes_int_to_float(self, patients):
        visits = Table({"pid": ["p1"], "visits": [3]})
        j = patients.join(visits, on="pid", how="left")
        assert j.column("visits").ctype is ColumnType.FLOAT

    def test_join_suffixes_collisions(self, patients):
        other = Table({"pid": ["p1"], "age": [99]})
        j = patients.join(other, on="pid")
        assert "age_right" in j

    def test_join_duplicates_rows_on_multi_match(self):
        left = Table({"k": ["a"], "v": [1.0]})
        right = Table({"k": ["a", "a"], "w": [1.0, 2.0]})
        assert left.join(right, on="k").num_rows == 2

    def test_unsupported_join_type(self, patients):
        with pytest.raises(ValueError):
            patients.join(patients, on="pid", how="outer")


class TestConcatAndConversion:
    def test_concat(self, patients):
        both = concat_tables([patients, patients])
        assert both.num_rows == 8

    def test_concat_schema_mismatch(self, patients):
        with pytest.raises(ValueError):
            concat_tables([patients, patients.drop(["fi"])])

    def test_concat_empty_list(self):
        assert concat_tables([]).num_rows == 0

    def test_to_matrix_excludes_strings_by_default(self, patients):
        m = patients.to_matrix()
        assert m.shape == (4, 2)  # age, fi

    def test_to_matrix_explicit_names(self, patients):
        m = patients.to_matrix(["age"])
        assert m.shape == (4, 1)

    def test_to_matrix_rejects_string_column(self, patients):
        with pytest.raises(TypeError):
            patients.to_matrix(["pid"])

    def test_to_dict(self, patients):
        d = patients.to_dict()
        assert d["pid"] == ["p1", "p2", "p3", "p4"]

    def test_equality(self, patients):
        assert patients == patients.select(list(patients.column_names))

    def test_table_not_hashable(self, patients):
        with pytest.raises(TypeError):
            hash(patients)


class TestDescribe:
    def test_one_row_per_column(self, patients):
        desc = patients.describe()
        assert desc.num_rows == patients.num_columns
        assert desc["column"].tolist() == list(patients.column_names)

    def test_numeric_statistics(self, patients):
        desc = patients.describe()
        row = {name: desc.row(i) for i, name in enumerate(desc["column"])}
        age = row["age"]
        assert age["mean"] == pytest.approx(64.0)
        assert age["min"] == 55.0 and age["max"] == 72.0
        assert age["missing"] == 0

    def test_missing_counted(self, patients):
        desc = patients.describe()
        row = {name: desc.row(i) for i, name in enumerate(desc["column"])}
        assert row["fi"]["missing"] == 1
        assert row["fi"]["count"] == 3

    def test_string_columns_have_nan_stats(self, patients):
        desc = patients.describe()
        row = {name: desc.row(i) for i, name in enumerate(desc["column"])}
        assert np.isnan(row["pid"]["mean"])
        assert row["pid"]["type"] == "string"

    def test_all_missing_numeric_column(self):
        t = Table({"x": [np.nan, np.nan]})
        desc = t.describe()
        assert desc.row(0)["count"] == 0
        assert np.isnan(desc.row(0)["mean"])
