"""Imputation-aggressiveness study (the paper's QA model-selection step).

The PRO questionnaire series contain bursty gaps.  The paper
interpolates gaps of up to five consecutive missing observations after
"assessing the predictive performance of each of the models resulting
from training sets obtained from more or less aggressive interpolation".
This example reruns that experiment: gap statistics, retention per
interpolation bound, and held-out QoL performance per bound.

    python examples/imputation_study.py [--full]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentContext, run_imputation_ablation, run_qa
from repro.experiments.ablation_imputation import render_imputation_ablation
from repro.experiments.qa_gaps import render_qa

from _common import demo_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale cohort")
    args = parser.parse_args()

    ctx = ExperimentContext(
        seed=7, n_folds=2, cohort_config=None if args.full else demo_config(False)
    )

    print("gap statistics of the synthetic cohort:")
    print(render_qa(run_qa(ctx)))

    print("\nheld-out QoL performance per interpolation bound:")
    sweep = run_imputation_ablation(ctx, max_gaps=(0, 1, 3, 5, 9, 17))
    print(render_imputation_ablation(sweep))

    print(
        "\nReading: retention grows with the bound while performance "
        "plateaus around the paper's chosen bound of 5 — interpolating "
        "longer gaps only manufactures spurious training points."
    )


if __name__ == "__main__":
    main()
