"""REP001 negative: fixed-axis reductions and fixed-order folds."""

# repro: scope[row-deterministic]

import numpy as np


def per_row(matrix):
    return matrix.sum(axis=-1)  # axis kwarg: fixed order


def positional_axis(matrix):
    return matrix.sum(0)  # positional axis counts as fixed too


def np_level(matrix):
    return np.sum(matrix, axis=1)


def fixed_order_matvec(matrix, weights):
    # The PR 5 replacement idiom: elementwise product + fixed-axis sum.
    return (matrix * weights[None, :]).sum(axis=1)


def reduceat_fold(values, starts):
    return np.add.reduceat(values, starts)
