"""Histogram-based tree growing (one boosting round).

Given per-sample gradients/hessians and the pre-binned feature matrix,
the grower builds one depth-wise tree.  The hot loop is organised
around two classic histogram-boosting optimisations:

* **Per-feature histogram accumulation.**  Node histograms are built
  one feature at a time with ``np.bincount`` over that feature's bin
  codes, allocating O(bins) per feature instead of materialising
  O(rows x features) repeated-weight temporaries.
* **Histogram subtraction.**  After a split, only the smaller child's
  histogram is accumulated from its rows; the sibling's histogram is
  obtained as ``parent - child``.  Parent histograms are threaded
  through :class:`_NodeTask`, so each level of the tree costs roughly
  one pass over half the node's rows rather than one pass per child.

At every node the grower scans all candidate splits vectorised and
applies the XGBoost gain formula

    gain = 1/2 * [ GL^2/(HL+lambda) + GR^2/(HR+lambda)
                   - (GL+GR)^2/(HL+HR+lambda) ] - gamma

Missing values occupy a dedicated bin and are routed to whichever side
yields the larger gain (sparsity-aware default direction).  The scan
includes the "all non-missing left, missing right" candidate (raw
threshold ``+inf``, see :meth:`BinMapper.threshold_value`) so features
whose predictive signal lies in *being missing* still split cleanly.

Each split also records its bin-space threshold (``Tree.bin_threshold``)
and, on request, the leaf each training row lands in, so the fit loop
can update raw predictions from leaf values directly instead of
re-traversing the raw float matrix every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.boosting.binning import BinMapper
from repro.boosting.config import GBConfig
from repro.boosting.tree import LEAF, Tree

__all__ = ["TreeGrower"]

#: Gain below which a split candidate is considered invalid.
_NEG_INF = -np.inf


def _clip(value: float, lower: float, upper: float) -> float:
    """Scalar clamp (bounds may be +/-inf)."""
    return min(max(value, lower), upper)


@dataclass
class _NodeTask:
    """A node awaiting processing during depth-wise growth.

    ``lower``/``upper`` bound the (unshrunken) leaf values permitted in
    this subtree; they implement monotone-constraint propagation.
    ``hist`` holds the node's ``(n_channels, n_features, stride)``
    gradient/hessian[/count] histograms when the parent already derived
    them (directly for the smaller child, by subtraction for its
    sibling); ``None`` means the node accumulates its own histograms if
    and when it is scanned.  The last channel is always an exact
    occupancy count: a dedicated integer channel when hessians vary,
    or the hessian channel itself when all hessians are 1.
    """

    node_id: int
    rows: np.ndarray
    depth: int
    grad_sum: float
    hess_sum: float
    lower: float = -np.inf
    upper: float = np.inf
    hist: np.ndarray | None = field(default=None, repr=False)


class TreeGrower:
    """Grow one tree on binned data.

    Parameters
    ----------
    binned:
        ``(n_samples, n_features)`` uint8 bin codes from
        :class:`BinMapper.transform`.
    mapper:
        The fitted mapper (provides bin -> raw threshold translation).
    config:
        Boosting hyper-parameters.
    use_subtraction:
        When True (default), sibling histograms are derived as
        ``parent - child``; when False every node accumulates its
        histograms from scratch.  The flag exists so equivalence tests
        can prove both paths grow identical trees.
    hist_pool:
        Optional :class:`repro.parallel.hist.HistogramPool` built over
        the *same* binned matrix.  When given, each level's histogram
        accumulation is batched into one wave and sharded across the
        pool's feature-block workers; every (feature, bin) cell is
        still one ``np.bincount`` in identical row order, so the grown
        tree is bitwise identical to the serial path.
    """

    def __init__(
        self,
        binned: np.ndarray,
        mapper: BinMapper,
        config: GBConfig,
        use_subtraction: bool = True,
        hist_pool=None,
    ):
        if binned.dtype != np.uint8:
            raise TypeError("binned matrix must be uint8")
        # Histogram building gathers one column at a time; keep a
        # Fortran-ordered view so those gathers stay cache-friendly.
        self.binned = binned if binned.flags.f_contiguous else np.asfortranarray(binned)
        self.mapper = mapper
        self.config = config
        self.use_subtraction = use_subtraction
        self.n_features = binned.shape[1]
        self._stride = mapper.missing_bin + 1
        # For nodes below this many rows the per-feature bincount loop
        # is dispatch-bound; a single flat bincount over offset codes
        # wins despite its O(rows x features) temporaries (which stay
        # tiny at this size).
        self._flat_rows_max = 1024
        self._hist_pool = hist_pool
        if hist_pool is not None:
            if hist_pool.stride != self._stride:
                raise ValueError(
                    f"hist_pool stride {hist_pool.stride} does not match "
                    f"the mapper's {self._stride}"
                )
            if hist_pool.binned.shape != self.binned.shape:
                raise ValueError(
                    "hist_pool was built over a differently shaped matrix"
                )
            # Both sides must pick the flat/per-feature path at the
            # same node size (any choice is bitwise-identical, but the
            # masked cells of the flat path differ structurally).
            self._flat_rows_max = hist_pool.flat_rows_max
        self._col_offsets = (
            np.arange(self.n_features, dtype=np.int64) * self._stride
        )
        # Precomputing the feature-offset codes costs 8x the binned
        # matrix in resident memory, so cache them only for matrices
        # where that is cheap (<= 64 MB); larger fits rebuild the
        # (row-capped, few-hundred-KB) codes per flat-path call.
        self._offset_codes: np.ndarray | None = None
        self._cache_offset_codes = binned.size <= 8 << 20
        # Refreshed per grow() call from the round's gradients/hessians.
        self._n_channels = 3
        self._scan_dtype = np.float32
        # Scratch arrays for the batched split scan, keyed by (name,
        # shape); reuse avoids re-faulting ~0.5 MB of fresh pages per
        # level (large numpy allocations are mmap-backed).
        self._scratch: dict = {}

    def grow(
        self,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        feature_mask: np.ndarray,
        leaf_out: np.ndarray | None = None,
    ) -> Tree:
        """Build one tree from the given round's gradients.

        Parameters
        ----------
        grad / hess:
            Full-length per-sample arrays (only ``rows`` are used).
        rows:
            Row indices participating in this round (row subsampling).
        feature_mask:
            Boolean mask of features available to this tree (column
            subsampling).
        leaf_out:
            Optional int64 array of length ``n_samples``; entries for
            ``rows`` are filled with the leaf node id each row reaches,
            letting the caller update raw predictions without
            re-traversing the tree.

        Returns
        -------
        Tree
            Leaf values are Newton steps scaled by the learning rate.
        """
        cfg = self.config
        children_left: list[int] = []
        children_right: list[int] = []
        feature: list[int] = []
        threshold: list[float] = []
        bin_threshold: list[int] = []
        missing_left: list[bool] = []
        value: list[float] = []
        cover: list[float] = []

        def new_node(cov: float) -> int:
            children_left.append(LEAF)
            children_right.append(LEAF)
            feature.append(LEAF)
            threshold.append(np.nan)
            bin_threshold.append(LEAF)
            missing_left.append(False)
            value.append(0.0)
            cover.append(cov)
            return len(children_left) - 1

        active_features = np.flatnonzero(feature_mask)
        mask_all = bool(feature_mask.all())
        # With unit hessians (squared error) the hessian histogram is
        # integer-valued and therefore already an exact occupancy
        # count; otherwise a dedicated count channel is accumulated.
        self._n_channels = 2 if bool((hess[rows] == 1.0).all()) else 3
        # The float32 candidate scan overflows to inf (silently
        # rejecting every split) once a squared gradient sum leaves
        # float32 range; bound |GL| by sum(|g|) and fall back to a
        # float64 scan for pathologically scaled targets.
        scale = float(np.abs(grad[rows]).sum()) + float(hess[rows].sum())
        self._scan_dtype = np.float32 if scale < 1e15 else np.float64
        g_root = float(grad[rows].sum())
        h_root = float(hess[rows].sum())
        root = new_node(h_root)
        level = [_NodeTask(root, rows, 0, g_root, h_root)]

        if self._hist_pool is not None:
            self._hist_pool.begin_round(
                grad, hess, feature_mask, self._n_channels
            )

        constraints = cfg.monotone_constraints
        while level:
            # Level-synchronous growth: the candidate scan for every
            # node of the level runs as one batched set of array ops,
            # which amortises numpy dispatch overhead that would
            # otherwise dominate on small per-node histograms.
            scannable = []
            for task in level:
                if task.depth < cfg.max_depth and len(task.rows) >= 2:
                    scannable.append(task)
            # All of a level's missing histograms accumulate as one
            # wave (sharded across the pool's feature blocks when one
            # is attached; a plain loop otherwise).
            pending = [task for task in scannable if task.hist is None]
            if pending:
                hists = self._histograms_batch(
                    [task.rows for task in pending],
                    grad,
                    hess,
                    active_features,
                )
                for task, hist in zip(pending, hists):
                    task.hist = hist
            splits = (
                self._best_splits(scannable, feature_mask, mask_all)
                if scannable
                else []
            )
            split_of = {id(t): s for t, s in zip(scannable, splits)}

            next_level = []
            #: (parent task, smaller child, bigger child) triples whose
            #: child histograms derive from the parent after the batch.
            derive: list[tuple[_NodeTask, _NodeTask, _NodeTask]] = []
            for task in level:
                split = split_of.get(id(task))
                if split is None:
                    value[task.node_id] = self._leaf_value(
                        task.grad_sum, task.hess_sum, task.lower, task.upper
                    )
                    if leaf_out is not None:
                        leaf_out[task.rows] = task.node_id
                    task.hist = None
                    continue

                f, b, miss_left, gain, gl, hl = split
                codes = self.binned[:, f][task.rows]
                left_sel = codes <= b
                if miss_left:
                    left_sel |= codes == self.mapper.missing_bin
                left_rows = task.rows[left_sel]
                right_rows = task.rows[~left_sel]

                left_id = new_node(hl)
                right_id = new_node(task.hess_sum - hl)
                children_left[task.node_id] = left_id
                children_right[task.node_id] = right_id
                feature[task.node_id] = f
                threshold[task.node_id] = self.mapper.threshold_value(f, b)
                bin_threshold[task.node_id] = b
                missing_left[task.node_id] = miss_left

                # Monotone-constraint bound propagation: a split on a
                # constrained feature caps one side's subtree at the
                # midpoint of the two (clipped) Newton child values.
                left_lower = right_lower = task.lower
                left_upper = right_upper = task.upper
                c = constraints[f] if constraints is not None else 0
                if c != 0:
                    lam = cfg.reg_lambda
                    wl = _clip(-gl / (hl + lam), task.lower, task.upper)
                    wr = _clip(
                        -(task.grad_sum - gl) / (task.hess_sum - hl + lam),
                        task.lower,
                        task.upper,
                    )
                    mid = (wl + wr) / 2.0
                    if c > 0:
                        left_upper = min(left_upper, mid)
                        right_lower = max(right_lower, mid)
                    else:
                        left_lower = max(left_lower, mid)
                        right_upper = min(right_upper, mid)

                left_task = _NodeTask(
                    left_id, left_rows, task.depth + 1, gl, hl,
                    left_lower, left_upper,
                )
                right_task = _NodeTask(
                    right_id,
                    right_rows,
                    task.depth + 1,
                    task.grad_sum - gl,
                    task.hess_sum - hl,
                    right_lower,
                    right_upper,
                )
                if self.use_subtraction and task.depth + 1 < cfg.max_depth:
                    # Children will be scanned: accumulate only the
                    # smaller one (batched with its level siblings
                    # below), derive the bigger as parent - child.
                    small, big = (
                        (left_task, right_task)
                        if len(left_rows) <= len(right_rows)
                        else (right_task, left_task)
                    )
                    derive.append((task, small, big))
                else:
                    task.hist = None

                next_level.append(left_task)
                next_level.append(right_task)

            if derive:
                # One wave accumulates every split's smaller child;
                # each sibling is then derived as parent - child (in
                # place: the parent's histograms are not needed any
                # more).
                small_hists = self._histograms_batch(
                    [small.rows for _, small, _ in derive],
                    grad,
                    hess,
                    active_features,
                )
                for (task, small, big), small_hist in zip(derive, small_hists):
                    small.hist = small_hist
                    big_hist = np.subtract(task.hist, small_hist, out=task.hist)
                    # Counts are integers stored in float64, so their
                    # subtraction is exact; scrub the last-ulp residue
                    # the float channels accumulate in bins that are
                    # empty at this node but occupied higher up the
                    # tree.  This keeps empty bins at exact zero at
                    # every depth, which the split scan's occupancy
                    # logic and duplicate-candidate tie-breaking rely
                    # on.
                    empty = big_hist[-1] == 0.0
                    for channel in big_hist[:-1]:
                        np.copyto(channel, 0.0, where=empty)
                    big.hist = big_hist
                    task.hist = None
            level = next_level

        return Tree(
            children_left=np.asarray(children_left, dtype=np.int64),
            children_right=np.asarray(children_right, dtype=np.int64),
            feature=np.asarray(feature, dtype=np.int64),
            threshold=np.asarray(threshold, dtype=np.float64),
            missing_left=np.asarray(missing_left, dtype=bool),
            value=np.asarray(value, dtype=np.float64),
            cover=np.asarray(cover, dtype=np.float64),
            bin_threshold=np.asarray(bin_threshold, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _leaf_value(
        self,
        g: float,
        h: float,
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> float:
        cfg = self.config
        newton = _clip(-g / (h + cfg.reg_lambda), lower, upper)
        return cfg.learning_rate * newton

    def _histograms_batch(
        self,
        rows_list: list[np.ndarray],
        grad: np.ndarray,
        hess: np.ndarray,
        active_features: np.ndarray,
    ) -> list[np.ndarray]:
        """Histograms for a wave of nodes (one list entry per node).

        With an attached :class:`~repro.parallel.hist.HistogramPool`
        the whole wave is dispatched at once and sharded by feature
        block; otherwise nodes accumulate in-process, in order.  Both
        paths produce bitwise-identical arrays (each (feature, bin)
        cell is one ``np.bincount`` in identical row order), so the
        grown tree does not depend on the worker count.
        """
        if self._hist_pool is not None:
            return self._hist_pool.accumulate(rows_list)
        return [
            self._histograms(rows, grad, hess, active_features)
            for rows in rows_list
        ]

    def _histograms(
        self,
        rows: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        active_features: np.ndarray,
    ) -> np.ndarray:
        """Per-(feature, bin) sums: ``(n_channels, d, stride)``.

        Channels are gradient, hessian and — when hessians vary — an
        occupancy count (exact small integers in float64), which lets
        the subtraction trick scrub float residue out of empty bins and
        gives the split scan exact occupancy tests at any depth.  With
        unit hessians the hessian channel doubles as the count.

        Large nodes accumulate one feature at a time (O(bins) scratch
        per feature; features excluded by the column mask keep all-zero
        rows).  Small nodes — where n_channels x n_features bincount
        dispatches would dominate — use one flat bincount over
        precomputed feature-offset codes instead; that path fills
        masked-out features too, which is harmless because every
        consumer is feature-mask-guarded and both paths accumulate each
        (feature, bin) cell in identical row order.
        """
        stride = self._stride
        d = self.n_features
        nch = self._n_channels
        # Two channels means hessians are all 1 (see grow), so the
        # hessian histogram equals the plain occupancy count — the
        # unweighted integer bincount path is markedly faster.
        unit_hess = nch == 2
        g_rows = grad[rows]
        if rows.size <= self._flat_rows_max:
            if self._cache_offset_codes:
                if self._offset_codes is None:
                    self._offset_codes = np.ascontiguousarray(
                        self.binned.astype(np.int64) + self._col_offsets
                    )
                flat = self._offset_codes[rows].ravel()
            else:
                flat = (
                    self.binned[rows].astype(np.int64) + self._col_offsets
                ).ravel()
            size = d * stride
            hist = np.empty((nch, d, stride), dtype=np.float64)
            # The repeated per-row weights reuse one scratch buffer
            # (broadcast-assign + ravel view) instead of a fresh
            # O(rows x d) np.repeat allocation per call; the weight
            # values are identical, so the bincounts are too.
            rep = self._scratch_buf("flat_rep", (rows.size, d))
            rep[:] = g_rows[:, None]
            hist[0] = np.bincount(
                flat, weights=rep.ravel(), minlength=size
            ).reshape(d, stride)
            if unit_hess:
                hist[1] = np.bincount(flat, minlength=size).reshape(d, stride)
            else:
                rep[:] = hess[rows][:, None]
                hist[1] = np.bincount(
                    flat, weights=rep.ravel(), minlength=size
                ).reshape(d, stride)
                hist[2] = np.bincount(flat, minlength=size).reshape(d, stride)
            return hist
        hist = np.zeros((nch, d, stride), dtype=np.float64)
        h_rows = None if unit_hess else hess[rows]
        binned = self.binned
        for f in active_features:
            codes = binned[:, f][rows]
            hist[0, f] = np.bincount(codes, weights=g_rows, minlength=stride)
            if unit_hess:
                hist[1, f] = np.bincount(codes, minlength=stride)
            else:
                hist[1, f] = np.bincount(codes, weights=h_rows, minlength=stride)
                hist[2, f] = np.bincount(codes, minlength=stride)
        return hist

    def _scratch_buf(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Reusable scratch array of the requested shape.

        The leading dimension (nodes per level) is data-dependent, so
        buffers are kept at the largest capacity seen per (name, dtype,
        trailing dims) and sliced down — O(1) buffers per name instead
        of one per distinct level width.
        """
        key = (name, shape[1:], dtype)
        buf = self._scratch.get(key)
        if buf is None or buf.shape[0] < shape[0]:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf if buf.shape[0] == shape[0] else buf[: shape[0]]

    def _best_splits(
        self,
        tasks: list[_NodeTask],
        feature_mask: np.ndarray,
        mask_all: bool,
    ) -> list[tuple | None]:
        """Scan all (feature, bin, missing-direction) candidates for a
        whole level of nodes in one batched pass.

        Candidate ``b`` sends non-missing bins ``<= b`` left; ``b`` runs
        over *every* non-missing bin, so the last bin paired with
        "missing right" expresses the all-non-missing-left split.
        Structural validity (each side must actually receive samples) is
        normally subsumed by the min-child-weight bound — float residue
        from histogram subtraction is orders of magnitude below any real
        ``min_child_weight`` — and is checked explicitly on the exact
        count channel only when that bound is (near) zero.

        Returns, per task, ``(feature, bin, missing_left, gain,
        grad_left, hess_left)`` or None when no candidate beats the
        gamma/min-child-weight constraints.
        """
        cfg = self.config
        lam = cfg.reg_lambda
        mcw = cfg.min_child_weight
        k = len(tasks)
        nch = self._n_channels
        stride = self._stride
        d = self.n_features
        n_bins = stride - 1

        # The scan normally runs in float32: gain ranking tolerates
        # ~1e-7 relative noise with no effect on model quality, and
        # halving the memory traffic of the candidate sweep is a
        # first-order win.  Exact float64 child sums for the winning
        # candidate are re-derived from the node's float64 histogram
        # afterwards.  grow() switches the dtype to float64 when the
        # gradient scale would overflow squared float32.
        dt = self._scan_dtype
        hist = self._scratch_buf("hist", (k, nch, d, stride), dtype=dt)
        for i, t in enumerate(tasks):
            hist[i] = t.hist

        # Cumulative sums; the missing bin is the last index, so the
        # leading columns of a full-stride cumsum are exactly the
        # cumulative sums over non-missing bins.  Candidate b sends
        # non-missing bins <= b left.
        cum = self._scratch_buf("cum", (k, nch, d, stride), dtype=dt)
        # The float32 candidate scan is the documented exception to the
        # float64 sum-channel contract: gain *ranking* tolerates the
        # noise, the winning split's child sums are re-derived from the
        # node's float64 histogram, and grow() switches the whole scan
        # to float64 when the gradient scale could overflow.
        # repro: allow[REP004] -- ranking-only float32 scan; exact child sums re-derived in float64
        np.cumsum(hist, axis=3, out=cum)
        gl = cum[:, 0, :, :-1]
        hl = cum[:, 1, :, :-1]
        g_miss = hist[:, 0, :, -1:]
        h_miss = hist[:, 1, :, -1:]

        # Layer 0: missing right; layer 1: missing left.  Within each
        # node candidates flatten layer-major, preserving the tie-break
        # order (missing-right first).  Without missing values anywhere
        # in the level the layers coincide, so scan only one.
        any_miss = bool((hist[:, -1, :, -1] > 0.0).any())
        n_layers = 2 if any_miss else 1
        score = self._scratch_buf("score", (k, n_layers, d, n_bins), dtype=dt)

        g_tot = np.array([t.grad_sum for t in tasks], dtype=dt)[:, None, None]
        h_tot = np.array([t.hess_sum for t in tasks], dtype=dt)[:, None, None]
        # With a (near) zero min-child-weight bound, child occupancy
        # must be decided on the exact count channel instead.
        need_occupancy = mcw < 1e-6
        if need_occupancy:
            cl = cum[:, -1, :, :-1]
            left_nonempty = cl > 0.0
            right_nonempty = cl < cl[:, :, -1:]
            has_miss = hist[:, -1, :, -1:] > 0.0

        glm = self._scratch_buf("glm", (k, d, n_bins), dtype=dt)
        hlm = self._scratch_buf("hlm", (k, d, n_bins), dtype=dt)
        gr = self._scratch_buf("gr", (k, d, n_bins), dtype=dt)
        hl_lam = self._scratch_buf("hl_lam", (k, d, n_bins), dtype=dt)
        hr_lam = self._scratch_buf("hr_lam", (k, d, n_bins), dtype=dt)
        valid = self._scratch_buf("valid", (k, d, n_bins), dtype=bool)
        vtmp = self._scratch_buf("vtmp", (k, d, n_bins), dtype=bool)
        lam_s = dt(lam)
        mcw_s = dt(mcw)
        # Loop-invariant operands: the lambda/min-child-weight-shifted
        # node totals and the per-task constraint bound columns do not
        # depend on the missing-direction layer, so materialise them
        # once per call instead of once per layer.
        ht_lam = h_tot + lam_s
        ht_mcw = h_tot - mcw_s if mcw > 0 else None
        if cfg.monotone_constraints is not None:
            cons = np.asarray(cfg.monotone_constraints, dtype=dt)[None, :, None]
            lower = np.array([t.lower for t in tasks], dtype=dt)[:, None, None]
            upper = np.array([t.upper for t in tasks], dtype=dt)[:, None, None]

        for layer in range(n_layers):
            if layer == 0:
                gl_l, hl_l = gl, hl
            else:
                gl_l = np.add(gl, g_miss, out=glm)
                hl_l = np.add(hl, h_miss, out=hlm)
            s = score[:, layer]

            # Child sums shifted by lambda for the gain denominators;
            # the right side is derived from the node totals.
            np.subtract(g_tot, gl_l, out=gr)
            np.add(hl_l, lam_s, out=hl_lam)
            np.subtract(h_tot + lam_s, hl_l, out=hr_lam)

            if mcw > 0:
                np.greater_equal(hl_l, mcw_s, out=valid)
                np.less_equal(hl_l, h_tot - mcw_s, out=vtmp)
                valid &= vtmp
            else:
                valid[:] = True
            if need_occupancy:
                if layer == 0:
                    valid &= left_nonempty
                    valid &= right_nonempty | has_miss
                else:
                    valid &= right_nonempty
                    valid &= left_nonempty | has_miss
            if not mask_all:
                valid &= feature_mask[None, :, None]

            if cfg.monotone_constraints is not None:
                cons = np.asarray(cfg.monotone_constraints, dtype=dt)[None, :, None]
                lower = np.array([t.lower for t in tasks], dtype=dt)[:, None, None]
                upper = np.array([t.upper for t in tasks], dtype=dt)[:, None, None]
                with np.errstate(divide="ignore", invalid="ignore"):
                    wl = np.clip(-gl_l / hl_lam, lower, upper)
                    wr = np.clip(-gr / hr_lam, lower, upper)
                valid &= (cons == 0) | (cons * (wr - wl) >= 0)

            # score = GL^2/(HL+lam) + GR^2/(HR+lam); the per-node affine
            # map 0.5 * (score - parent_score) is order-preserving and
            # is applied only to each node's winning scalar.
            with np.errstate(divide="ignore", invalid="ignore"):
                np.multiply(gl_l, gl_l, out=s)
                s /= hl_lam
                np.multiply(gr, gr, out=gr)
                gr /= hr_lam
                s += gr
            np.logical_not(valid, out=valid)
            np.copyto(s, _NEG_INF, where=valid)

        flat = score.reshape(k, -1)
        best_idx = np.argmax(flat, axis=1)
        best_score = flat[np.arange(k), best_idx]

        min_gain = max(cfg.gamma, 1e-12)
        results: list[tuple | None] = []
        for i, task in enumerate(tasks):
            if not np.isfinite(float(best_score[i])):
                results.append(None)
                continue
            m, rest = divmod(int(best_idx[i]), d * n_bins)
            f, b = divmod(rest, n_bins)
            # The scan dtype only *ranks* candidates; the winner's
            # child sums and its gain — including the gamma/min-gain
            # accept decision — are re-derived in float64 from the
            # node's own histogram so near-threshold splits are not
            # decided by scan rounding noise.
            node_hist = task.hist
            grad_left = float(node_hist[0, f, : b + 1].sum())
            hess_left = float(node_hist[1, f, : b + 1].sum())
            if m:
                grad_left += float(node_hist[0, f, -1])
                hess_left += float(node_hist[1, f, -1])
            g_tot_i = task.grad_sum
            h_tot_i = task.hess_sum
            grad_right = g_tot_i - grad_left
            hess_right = h_tot_i - hess_left
            best_gain = 0.5 * (
                grad_left * grad_left / (hess_left + lam)
                + grad_right * grad_right / (hess_right + lam)
                - g_tot_i * g_tot_i / (h_tot_i + lam)
            )
            if not best_gain > min_gain or not np.isfinite(best_gain):
                results.append(None)
                continue
            results.append(
                (int(f), int(b), bool(m), best_gain, grad_left, hess_left)
            )
        return results
