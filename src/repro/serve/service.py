"""Micro-batched scoring over a fitted model, with an exact result cache.

A :class:`ScoringService` is constructed once per model version and then
answers arbitrarily many heterogeneous requests.  Three mechanisms make
the hot path fast without changing a single output bit:

1. **Structure reuse** — the batched TreeSHAP engine preprocesses every
   tree once at service construction
   (:class:`repro.explain.TreeShapExplainer`); requests never rebuild
   decision structures.
2. **Micro-batching** — a batch of requests is quantized with one
   ``BinMapper.transform``, predicted with one ``predict_raw_binned``
   sweep and explained with one ``shap_values_binned`` call, regardless
   of how the predict/explain flags are mixed across requests.
3. **Exact caching** — results are cached under ``(version tag, row bin
   codes)``.  Codes are the model's own quantized representation, so a
   hit is bitwise-identical to recomputation; repeated-cohort traffic
   (the same patients scored at every visit) short-circuits entirely.
   Duplicate rows *within* one batch are computed once, too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.boosting.gbm import GBClassifier
from repro.explain.reports import LocalExplanation, top_k_features
from repro.explain.treeshap import TreeShapExplainer
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.registry import ModelRegistry, model_fingerprint

__all__ = [
    "ScoreRequest",
    "ScoreResult",
    "ScoringService",
    "ServiceStats",
    "stack_request_rows",
    "registry_model",
]


def stack_request_rows(
    requests: Sequence["ScoreRequest"], n_features: int
) -> np.ndarray:
    """Validate and stack request rows into one ``(n, d)`` matrix.

    Shared by the single-process service and the multi-worker router so
    both fronts reject malformed rows identically.
    """
    rows = np.empty((len(requests), n_features), dtype=np.float64)
    for i, req in enumerate(requests):
        row = np.asarray(req.row, dtype=np.float64)
        if row.shape != (n_features,):
            raise ValueError(
                f"request {i}: expected row of shape "
                f"({n_features},), got {row.shape}"
            )
        rows[i] = row
    return rows


def registry_model(
    registry: ModelRegistry, name: str, tag: str | None, kwargs: dict
):
    """Load ``name@tag`` and default the scoring-front kwargs.

    Resolves the tag, loads the model, and fills in ``version`` (the
    stable registry reference, no re-fingerprinting) and
    ``feature_names`` (from the published metadata) unless the caller
    set them — the one loading convention behind both
    ``ScoringService.from_registry`` and ``ScoringRouter.from_registry``.
    """
    tag = registry.resolve(name, tag)
    model = registry.load(name, tag)
    kwargs.setdefault("version", f"{name}@{tag}")
    if "feature_names" not in kwargs:
        features = registry.describe(name, tag).metadata.get("features")
        if features is not None:
            kwargs["feature_names"] = list(features)
    return model


@dataclass(frozen=True)
class ScoreRequest:
    """One row to score.

    Attributes
    ----------
    row:
        Raw feature values (NaN = missing), length ``n_features``.
    explain:
        Whether to also compute the SHAP attribution report.
    """

    row: np.ndarray
    explain: bool = False


@dataclass(frozen=True)
class ScoreResult:
    """The service's answer for one request.

    Attributes
    ----------
    raw_score:
        The ensemble margin (identical scale for both estimator kinds).
    prediction:
        Point prediction — the raw score for regressors, the class
        label for classifiers.
    probability:
        P(class = 1) for classifiers, None for regressors.
    explanation:
        Top-k attribution report when the request asked for one.
    cached:
        True when every field the request needed came from the cache.
    """

    raw_score: float
    prediction: float
    probability: float | None
    explanation: LocalExplanation | None
    cached: bool


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`ScoringService`."""

    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    batch_dedup_hits: int = 0
    predicted_rows: int = 0
    explained_rows: int = 0
    total_seconds: float = 0.0

    @property
    def rows_per_second(self) -> float:
        """Lifetime request throughput (0 when idle)."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.requests / self.total_seconds


@dataclass
class _Entry:
    """Cached per-row results (raw score always, SHAP row lazily)."""

    raw: float
    phi: np.ndarray | None = None


@dataclass
class _Plan:
    """Which requests a batch can serve from cache vs must compute.

    ``entry_by_key`` keeps a strong reference to every entry the batch
    touches, so assembly is immune to the cache evicting entries of the
    very batch being computed (capacity smaller than the batch).
    """

    keys: list
    satisfied: list
    deduped: list
    entry_by_key: dict = field(default_factory=dict)
    predict_rows: dict = field(default_factory=dict)
    explain_rows: dict = field(default_factory=dict)


class ScoringService:
    """Answer prediction/explanation requests for one model version.

    Parameters
    ----------
    model:
        A fitted ``GBRegressor``/``GBClassifier`` carrying its
        ``mapper_`` (models loaded through the registry always do).
    version:
        Cache namespace tag; defaults to the model's content
        fingerprint, so two services over identical models share
        semantics (and never collide with a different model).
    feature_names:
        Column names used in attribution reports; defaults to
        ``f0..f{d-1}``.
    cache_size:
        LRU capacity in rows (0 disables caching).
    top_k:
        Features per attribution report (the paper reports 5).
    explainer:
        Optional prebuilt :class:`TreeShapExplainer` over ``model``
        (e.g. one materialised from a shared-memory
        :class:`~repro.serve.plane.ModelPlane`); by default the service
        preprocesses the trees itself.
    """

    def __init__(
        self,
        model,
        *,
        version: str | None = None,
        feature_names: Sequence[str] | None = None,
        cache_size: int = 4096,
        top_k: int = 5,
        explainer: TreeShapExplainer | None = None,
    ):
        if getattr(model, "ensemble_", None) is None:
            raise ValueError("model is not fitted")
        if getattr(model, "mapper_", None) is None:
            raise ValueError(
                "model carries no fitted BinMapper (mapper_); reload it "
                "through the registry (format v2) or refit"
            )
        self.model = model
        self.explainer = explainer or TreeShapExplainer(model)
        if not self.explainer.supports_binned:
            raise ValueError(
                "model trees carry no bin thresholds; the service "
                "requires the binned fast path"
            )
        # Predict through the hash-consed DAG (one shared node table,
        # all trees advanced in one fused frontier loop) — bitwise
        # identical to the per-tree ensemble path.  Models mapped from
        # a ModelPlane arrive with compact_ attached; otherwise the
        # model cons-es (and caches) its own table here.
        compact = getattr(model, "compact_", None)
        if compact is None and callable(getattr(model, "compact", None)):
            compact = model.compact()
        self._engine = compact if compact is not None else model.ensemble_
        self.n_features = int(model.n_features_)
        if version is None:
            from repro.boosting.serialize import model_to_dict

            version = model_fingerprint(model_to_dict(model))
        self.version = version
        if feature_names is None:
            feature_names = [f"f{i}" for i in range(self.n_features)]
        if len(feature_names) != self.n_features:
            raise ValueError(
                f"got {len(feature_names)} feature names for a model "
                f"fitted on {self.n_features} features"
            )
        self.feature_names = list(feature_names)
        self.top_k = top_k
        self._cache = LRUCache(cache_size)
        self._stats = ServiceStats()

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry,
        name: str,
        tag: str | None = None,
        **kwargs,
    ) -> "ScoringService":
        """Load ``name@tag`` (default latest) and wrap it in a service.

        The cache version is the registry reference, so it is stable
        across processes without re-fingerprinting the document.
        """
        return cls(registry_model(registry, name, tag, kwargs), **kwargs)

    # ------------------------------------------------------------------
    def score_batch(
        self,
        requests: Sequence[ScoreRequest],
        codes: np.ndarray | None = None,
    ) -> list[ScoreResult]:
        """Score a heterogeneous micro-batch with single engine calls.

        ``codes`` optionally passes the rows' bin codes computed
        upstream (they must come from this model's own mapper — the
        router already quantizes every batch for shard hashing, so its
        workers skip re-binning).  Codes from the same mapper are
        bitwise identical wherever they are computed, so the option
        never changes a result.
        """
        if not requests:
            return []
        t0 = time.perf_counter()
        rows = self._stack_rows(requests)
        if codes is None:
            codes = self.model.bin(rows)
        else:
            codes = np.asarray(codes)
            if codes.shape != rows.shape:
                raise ValueError(
                    f"expected codes of shape {rows.shape}, "
                    f"got {codes.shape}"
                )
        plan = self._plan(requests, codes)
        self._compute(plan, codes)
        results = self._assemble(requests, rows, plan)
        self._stats.requests += len(requests)
        self._stats.batches += 1
        self._stats.total_seconds += time.perf_counter() - t0
        return results

    def score_rows(self, X: np.ndarray, explain: bool = False) -> list[ScoreResult]:
        """Convenience wrapper: one homogeneous batch from a matrix."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D input, got shape {X.shape}")
        return self.score_batch(
            [ScoreRequest(row=X[i], explain=explain) for i in range(X.shape[0])]
        )

    # ------------------------------------------------------------------
    def _stack_rows(self, requests: Sequence[ScoreRequest]) -> np.ndarray:
        return stack_request_rows(requests, self.n_features)

    def _plan(self, requests: Sequence[ScoreRequest], codes: np.ndarray) -> _Plan:
        """Split a batch into cache hits, in-batch duplicates and misses."""
        plan = _Plan(keys=[], satisfied=[], deduped=[])
        for i, req in enumerate(requests):
            key = (self.version, codes[i].tobytes())
            if key in plan.entry_by_key:
                entry = plan.entry_by_key[key]
            elif key in plan.predict_rows:
                entry = None  # known missing; don't re-count the lookup
            else:
                entry = self._cache.get(key)
                if entry is not None:
                    plan.entry_by_key[key] = entry
            needs_predict = entry is None
            needs_explain = req.explain and (entry is None or entry.phi is None)
            predict_owner = (
                plan.predict_rows.setdefault(key, i) if needs_predict else None
            )
            explain_owner = (
                plan.explain_rows.setdefault(key, i) if needs_explain else None
            )
            hit = not needs_predict and not needs_explain
            plan.keys.append(key)
            plan.satisfied.append(hit)
            plan.deduped.append(
                not hit
                and (predict_owner is None or predict_owner != i)
                and (explain_owner is None or explain_owner != i)
            )
        return plan

    def _compute(self, plan: _Plan, codes: np.ndarray) -> None:
        """Run the (at most) two batched engine calls and fill the cache."""
        touched: dict = {}
        if plan.predict_rows:
            idx = np.fromiter(plan.predict_rows.values(), dtype=np.int64)
            raw = self._engine.predict_raw_binned(
                codes[idx], self.model.mapper_.missing_bin
            )
            for key, r in zip(plan.predict_rows, raw):
                entry = _Entry(raw=float(r))
                plan.entry_by_key[key] = entry
                touched[key] = entry
            self._stats.predicted_rows += len(idx)
        if plan.explain_rows:
            idx = np.fromiter(plan.explain_rows.values(), dtype=np.int64)
            # F order matches the engine's per-tree column gathers (the
            # batch codes are C order for the per-row cache keys).
            phi = self.explainer.shap_values_binned(np.asfortranarray(codes[idx]))
            for j, key in enumerate(plan.explain_rows):
                # The entry exists by now: either freshly predicted above
                # or cached with only its SHAP row missing.  Copy the row
                # out of the batch result so a cached entry doesn't pin
                # the whole (n, d) array alive for its LRU lifetime.
                entry = plan.entry_by_key[key]
                entry.phi = phi[j].copy()
                touched[key] = entry
            self._stats.explained_rows += len(idx)
        for key, entry in touched.items():
            self._cache.put(key, entry)

    def _assemble(
        self,
        requests: Sequence[ScoreRequest],
        rows: np.ndarray,
        plan: _Plan,
    ) -> list[ScoreResult]:
        results = []
        is_classifier = isinstance(self.model, GBClassifier)
        for i, req in enumerate(requests):
            entry = plan.entry_by_key[plan.keys[i]]
            raw = entry.raw
            if is_classifier:
                probability = float(self.model.proba_from_raw(raw))
                prediction = float(probability >= 0.5)
            else:
                probability = None
                prediction = raw
            explanation = None
            if req.explain:
                explanation = top_k_features(
                    entry.phi,
                    rows[i],
                    self.feature_names,
                    prediction=raw,
                    expected_value=self.explainer.expected_value,
                    k=self.top_k,
                )
            if plan.satisfied[i]:
                self._stats.cache_hits += 1
            elif plan.deduped[i]:
                self._stats.batch_dedup_hits += 1
            results.append(
                ScoreResult(
                    raw_score=raw,
                    prediction=prediction,
                    probability=probability,
                    explanation=explanation,
                    cached=plan.satisfied[i],
                )
            )
        return results

    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Lifetime service counters."""
        return self._stats

    @property
    def cache_stats(self) -> CacheStats:
        """Counters of the underlying result cache."""
        return self._cache.stats
