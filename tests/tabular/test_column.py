"""Unit tests for repro.tabular.column."""

import numpy as np
import pytest

from repro.tabular import Column, ColumnType
from repro.tabular.column import infer_column_type


class TestTypeInference:
    def test_int_values_infer_int(self):
        assert infer_column_type([1, 2, 3]) is ColumnType.INT

    def test_float_values_infer_float(self):
        assert infer_column_type([1.5, 2.0]) is ColumnType.FLOAT

    def test_mixed_int_float_infer_float(self):
        assert infer_column_type([1, 2.5]) is ColumnType.FLOAT

    def test_bool_values_infer_bool(self):
        assert infer_column_type([True, False]) is ColumnType.BOOL

    def test_strings_infer_string(self):
        assert infer_column_type(["a", "b"]) is ColumnType.STRING

    def test_none_with_ints_promotes_to_float(self):
        assert infer_column_type([1, None, 3]) is ColumnType.FLOAT

    def test_none_with_strings_stays_string(self):
        assert infer_column_type(["a", None]) is ColumnType.STRING

    def test_all_none_is_string(self):
        assert infer_column_type([None, None]) is ColumnType.STRING

    def test_empty_defaults_to_float(self):
        assert infer_column_type([]) is ColumnType.FLOAT


class TestConstruction:
    def test_basic_float_column(self):
        col = Column("x", [1.0, 2.0, 3.0])
        assert col.ctype is ColumnType.FLOAT
        assert len(col) == 3

    def test_numpy_int_array_keeps_int(self):
        col = Column("x", np.array([1, 2], dtype=np.int64))
        assert col.ctype is ColumnType.INT

    def test_none_becomes_nan_in_float(self):
        col = Column("x", [1.0, None, 3.0])
        assert np.isnan(col.values[1])

    def test_explicit_type_coerces(self):
        col = Column("x", [1, 2, 3], ColumnType.FLOAT)
        assert col.values.dtype == np.float64

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Column("", [1.0])

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Column(3, [1.0])  # type: ignore[arg-type]

    def test_2d_values_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Column("x", np.zeros((2, 2)))

    def test_int_column_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            Column("x", np.array([1.0, np.nan]), ColumnType.INT)

    def test_int_column_rejects_fractional(self):
        with pytest.raises(ValueError, match="fractional"):
            Column("x", np.array([1.0, 2.5]), ColumnType.INT)

    def test_bool_column_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="BOOL"):
            Column("x", np.array([0, 2]), ColumnType.BOOL)

    def test_bool_column_accepts_01(self):
        col = Column("x", np.array([0, 1]), ColumnType.BOOL)
        assert col.values.dtype == np.bool_

    def test_string_column_stringifies(self):
        col = Column("x", [1, "a"], ColumnType.STRING)
        assert col.to_list() == ["1", "a"]

    def test_values_are_read_only(self):
        col = Column("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            col.values[0] = 9.0


class TestAccess:
    def test_scalar_indexing(self):
        col = Column("x", [1.0, 2.0])
        assert col[1] == 2.0

    def test_mask_indexing_returns_column(self):
        col = Column("x", [1.0, 2.0, 3.0])
        sub = col[np.array([True, False, True])]
        assert isinstance(sub, Column)
        assert sub.to_list() == [1.0, 3.0]

    def test_iteration(self):
        assert list(Column("x", [1, 2], ColumnType.INT)) == [1, 2]

    def test_to_numpy_copy_is_private(self):
        col = Column("x", [1.0])
        arr = col.to_numpy(copy=True)
        arr[0] = 5.0
        assert col.values[0] == 1.0

    def test_rename_shares_data(self):
        col = Column("x", [1.0, 2.0])
        renamed = col.rename("y")
        assert renamed.name == "y"
        assert renamed.values is col.values

    def test_cast_int_to_float(self):
        col = Column("x", [1, 2], ColumnType.INT).cast(ColumnType.FLOAT)
        assert col.ctype is ColumnType.FLOAT

    def test_cast_same_type_is_identity(self):
        col = Column("x", [1.0])
        assert col.cast(ColumnType.FLOAT) is col

    def test_repr_mentions_name_and_type(self):
        text = repr(Column("steps", [1.0]))
        assert "steps" in text and "float" in text


class TestEquality:
    def test_equal_columns(self):
        assert Column("x", [1.0, 2.0]) == Column("x", [1.0, 2.0])

    def test_nan_aware_equality(self):
        a = Column("x", [1.0, np.nan])
        b = Column("x", [1.0, np.nan])
        assert a == b

    def test_different_names_not_equal(self):
        assert Column("x", [1.0]) != Column("y", [1.0])

    def test_different_types_not_equal(self):
        assert Column("x", [1], ColumnType.INT) != Column("x", [1.0])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column("x", [1.0]))


class TestMissing:
    def test_float_missing_mask(self):
        col = Column("x", [1.0, np.nan, 3.0])
        assert col.is_missing().tolist() == [False, True, False]

    def test_string_missing_mask(self):
        col = Column("x", ["a", None], ColumnType.STRING)
        assert col.is_missing().tolist() == [False, True]

    def test_int_has_no_missing(self):
        assert Column("x", [1, 2], ColumnType.INT).count_missing() == 0

    def test_count_missing(self):
        assert Column("x", [np.nan, np.nan, 1.0]).count_missing() == 2

    def test_fill_missing_float(self):
        col = Column("x", [1.0, np.nan]).fill_missing(0.0)
        assert col.to_list() == [1.0, 0.0]

    def test_fill_missing_noop_when_complete(self):
        col = Column("x", [1.0, 2.0])
        assert col.fill_missing(0.0) is col

    def test_fill_missing_string(self):
        col = Column("x", ["a", None], ColumnType.STRING).fill_missing("z")
        assert col.to_list() == ["a", "z"]
