"""Top-level cohort generation: compose all per-patient streams."""

from __future__ import annotations

import numpy as np

from repro.cohort.clinical import generate_visit_deficits
from repro.cohort.config import CohortConfig
from repro.cohort.dataset import CohortDataset
from repro.cohort.missingness import apply_missingness
from repro.cohort.outcomes import generate_outcomes
from repro.cohort.patients import PatientLatent, generate_patients
from repro.cohort.pro import generate_pro_answers
from repro.cohort.schema import IC_DOMAINS, pro_item_names
from repro.cohort.wearable import generate_daily_trace
from repro.frailty.deficits import deficit_names
from repro.synth import SeedSequenceFactory
from repro.tabular import Column, ColumnType, Table

__all__ = ["generate_cohort"]


def generate_cohort(config: CohortConfig | None = None) -> CohortDataset:
    """Generate the full synthetic cohort for ``config``.

    The result is a pure function of ``config`` (including its seed):
    regenerating with the same configuration yields identical tables.

    Examples
    --------
    >>> cohort = generate_cohort(CohortConfig(seed=1))
    >>> cohort.patients.num_rows
    261
    """
    cfg = config or CohortConfig()
    seeds = SeedSequenceFactory(cfg.seed).child("cohort")
    clinics = {c.name: c for c in cfg.clinics}
    patients = generate_patients(cfg, seeds)

    patient_rows = _patients_table(patients)
    daily = _daily_table(cfg, patients, clinics, seeds)
    pro = _pro_table(cfg, patients, clinics, seeds)
    visits = _visits_table(cfg, patients, seeds)
    latent = _latent_table(cfg, patients)

    return CohortDataset(
        config=cfg,
        patients=patient_rows,
        daily=daily,
        pro=pro,
        visits=visits,
        latent=latent,
    )


def _patients_table(patients: list[PatientLatent]) -> Table:
    return Table(
        [
            Column("patient_id", [p.patient_id for p in patients], ColumnType.STRING),
            Column("clinic", [p.clinic for p in patients], ColumnType.STRING),
            Column("age", [p.age for p in patients], ColumnType.INT),
            Column(
                "years_with_hiv",
                [p.years_with_hiv for p in patients],
                ColumnType.INT,
            ),
        ]
    )


def _daily_table(cfg, patients, clinics, seeds) -> Table:
    ids: list[np.ndarray] = []
    parts: dict[str, list[np.ndarray]] = {}
    for p in patients:
        trace = generate_daily_trace(cfg, clinics[p.clinic], p, seeds)
        n = len(trace["day"])
        ids.append(np.array([p.patient_id] * n, dtype=object))
        for key, arr in trace.items():
            parts.setdefault(key, []).append(arr)
    cols = [Column("patient_id", np.concatenate(ids), ColumnType.STRING)]
    for key in ("day", "month"):
        cols.append(Column(key, np.concatenate(parts[key]), ColumnType.INT))
    for key in ("steps", "calories", "sleep_hours"):
        cols.append(Column(key, np.concatenate(parts[key]), ColumnType.FLOAT))
    return Table(cols)


def _pro_table(cfg, patients, clinics, seeds) -> Table:
    ids: list[np.ndarray] = []
    parts: dict[str, list[np.ndarray]] = {}
    for p in patients:
        answers = generate_pro_answers(cfg, clinics[p.clinic], p, seeds)
        answers = apply_missingness(
            cfg, clinics[p.clinic], p.patient_id, answers, seeds
        )
        n = len(answers["month"])
        ids.append(np.array([p.patient_id] * n, dtype=object))
        for key, arr in answers.items():
            parts.setdefault(key, []).append(arr)
    cols = [
        Column("patient_id", np.concatenate(ids), ColumnType.STRING),
        Column("month", np.concatenate(parts["month"]), ColumnType.INT),
    ]
    for name in pro_item_names():
        cols.append(Column(name, np.concatenate(parts[name]), ColumnType.FLOAT))
    return Table(cols)


def _visits_table(cfg, patients, seeds) -> Table:
    ids: list[np.ndarray] = []
    parts: dict[str, list[np.ndarray]] = {}
    outcome_parts: dict[str, list[np.ndarray]] = {}
    for p in patients:
        deficits = generate_visit_deficits(cfg, p, seeds)
        outcomes = generate_outcomes(cfg, p, seeds)
        n_visits = len(deficits["visit_month"])
        ids.append(np.array([p.patient_id] * n_visits, dtype=object))
        for key, arr in deficits.items():
            parts.setdefault(key, []).append(arr)

        # Align outcomes to visit months: month 0 has no outcome (NaN).
        qol = np.full(n_visits, np.nan)
        sppb = np.full(n_visits, np.nan)
        falls = np.full(n_visits, np.nan)
        visit_months = deficits["visit_month"]
        for w_idx, vm in enumerate(outcomes["visit_month"]):
            pos = int(np.flatnonzero(visit_months == vm)[0])
            qol[pos] = outcomes["qol"][w_idx]
            sppb[pos] = float(outcomes["sppb"][w_idx])
            falls[pos] = float(outcomes["falls"][w_idx])
        outcome_parts.setdefault("qol", []).append(qol)
        outcome_parts.setdefault("sppb", []).append(sppb)
        outcome_parts.setdefault("falls", []).append(falls)

    cols = [
        Column("patient_id", np.concatenate(ids), ColumnType.STRING),
        Column("visit_month", np.concatenate(parts["visit_month"]), ColumnType.INT),
    ]
    for name in deficit_names():
        cols.append(Column(name, np.concatenate(parts[name]), ColumnType.FLOAT))
    for name in ("qol", "sppb", "falls"):
        cols.append(Column(name, np.concatenate(outcome_parts[name]), ColumnType.FLOAT))
    return Table(cols)


def _latent_table(cfg, patients) -> Table:
    n_points = cfg.n_months + 1
    months = np.tile(np.arange(n_points, dtype=np.int64), len(patients))
    ids = np.concatenate(
        [np.array([p.patient_id] * n_points, dtype=object) for p in patients]
    )
    cols = [
        Column("patient_id", ids, ColumnType.STRING),
        Column("month", months, ColumnType.INT),
        Column(
            "health",
            np.concatenate([p.health for p in patients]),
            ColumnType.FLOAT,
        ),
    ]
    for domain in IC_DOMAINS:
        cols.append(
            Column(
                domain,
                np.concatenate([p.domain_scores[domain] for p in patients]),
                ColumnType.FLOAT,
            )
        )
    return Table(cols)
