"""Command-line entry point: experiments, plus the serving driver.

Usage::

    python -m repro fig4                 # one experiment, paper scale
    python -m repro all --small          # everything, 50-patient cohort
    python -m repro qa --out results/    # also write the artefact files
    python -m repro serve publish ...    # model registry + scoring
    python -m repro serve score ...      # (see repro.serve.driver)
    python -m repro lint                 # determinism & concurrency lint
    python -m repro lint --format=json   # (see repro.analysis.cli)

Experiments: fig1, fig4, table1, fig5, fig6, fig7, qa, abl1, abl2, abl3, all.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.cohort import ClinicConfig, CohortConfig
from repro.experiments import (
    ExperimentContext,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_imbalance_ablation,
    run_imputation_ablation,
    run_model_ablation,
    run_qa,
    run_table1,
)
from repro.experiments.ablation_imbalance import render_imbalance_ablation
from repro.experiments.ablation_imputation import render_imputation_ablation
from repro.experiments.ablation_models import render_model_ablation
from repro.experiments.fig1_distributions import render_fig1
from repro.experiments.fig4_performance import render_fig4
from repro.experiments.fig5_mae_by_clinic import render_fig5
from repro.experiments.fig6_local_explanations import render_fig6
from repro.experiments.fig7_global_dependence import render_fig7
from repro.experiments.qa_gaps import render_qa
from repro.experiments.table1_clinics import render_table1

#: experiment id -> (runner, renderer)
EXPERIMENTS = {
    "fig1": (run_fig1, render_fig1),
    "fig4": (run_fig4, render_fig4),
    "table1": (run_table1, render_table1),
    "fig5": (run_fig5, render_fig5),
    "fig6": (run_fig6, render_fig6),
    "fig7": (run_fig7, render_fig7),
    "qa": (run_qa, render_qa),
    "abl1": (run_model_ablation, render_model_ablation),
    "abl2": (run_imputation_ablation, render_imputation_ablation),
    "abl3": (run_imbalance_ablation, render_imbalance_ablation),
}


def _small_config(seed: int) -> CohortConfig:
    return CohortConfig(
        seed=seed,
        clinics=(
            ClinicConfig("modena", 24),
            ClinicConfig("sydney", 18),
            ClinicConfig("hong_kong", 8, health_spread=0.07, protocol_noise=0.18),
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which artefact to regenerate ('serve' dispatches to the "
        "scoring driver, 'lint' to the determinism analyzer; see "
        "python -m repro serve --help / python -m repro lint --help)",
    )
    parser.add_argument("--seed", type=int, default=7, help="cohort/protocol seed")
    parser.add_argument(
        "--small",
        action="store_true",
        help="50-patient demo cohort instead of the paper's 261",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each rendered artefact to DIR/<exp>.txt",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the experiment grid and for the "
        "intra-fit histogram pool (default: the REPRO_JOBS environment "
        "variable, else serial; 0 or -1 = one per CPU).  Results are "
        "identical on every backend.",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # The serving driver owns its own subcommand parser.
        from repro.serve.driver import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "lint":
        # The determinism analyzer owns its own parser too.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.out is not None:
        try:
            args.out.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            print(f"error: cannot create --out {args.out}: {exc}", file=sys.stderr)
            return 2
    if args.jobs is not None:
        # Propagate to resolve_jobs() consumers beyond the grid — the
        # intra-fit HistogramPool reads REPRO_JOBS when GBConfig.n_jobs
        # is unset.  Grid workers still fit serially: resolve_jobs()
        # returns 1 inside pool workers (nested-pool suppression).
        os.environ["REPRO_JOBS"] = str(args.jobs)
    ctx = ExperimentContext(
        seed=args.seed,
        n_folds=2 if args.small else 3,
        cohort_config=_small_config(args.seed) if args.small else None,
        n_jobs=args.jobs,
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, renderer = EXPERIMENTS[name]
        text = renderer(runner(ctx))
        print(text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
