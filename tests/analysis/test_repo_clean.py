"""Meta-test: the shipped tree satisfies its own determinism contract.

This is the tier-1 enforcement point for the REP rule pack — if a
change introduces a batch-shape-dependent reduction in a
row-deterministic module, an unseeded RNG in engine code, a leaked
shared-memory segment, or any other rule violation, this test fails
with the same findings ``python -m repro lint`` would print in CI.
"""

from repro.analysis import run_lint


def test_src_tree_is_lint_clean():
    report = run_lint()
    assert report.files_scanned > 50  # guard against scanning the wrong root
    assert report.clean, "\n" + "\n".join(f.render() for f in report.findings)


def test_suppressions_are_justified():
    report = run_lint()
    for suppression in report.suppressed:
        assert suppression.reason, (
            f"unjustified pragma for {suppression.finding.render()}"
        )
