"""Tests for the asyncio HTTP front end (repro.serve.server).

The load-bearing contract is the HTTP edition of the router's: every
response is **bitwise identical** to the in-process ``ScoringService``
on the same request stream — cache-cold and cache-hot, at every worker
count — because JSON round-trips every finite float64 exactly.  On top
of that: hot model swaps drop zero requests and never mix versions
within a response, saturation answers 429 with a ``Retry-After``, and a
SIGTERM-style ``stop()`` answers everything already admitted.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.boosting import GBClassifier, GBRegressor
from repro.faults import faults_active
from repro.serve import (
    ModelRegistry,
    ScoreRequest,
    ScoringServer,
    ScoringService,
    ServerThread,
    result_to_wire,
)

FEATURES = [f"f{i}" for i in range(6)]


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(21)
    X = rng.normal(size=(300, 6))
    X[rng.random(X.shape) < 0.1] = np.nan
    y = 2 * np.nan_to_num(X[:, 0]) - np.nan_to_num(X[:, 3]) + rng.normal(
        0, 0.1, 300
    )
    return X, y


@pytest.fixture(scope="module")
def registry(cohort, tmp_path_factory):
    """A registry holding one published regressor and one classifier."""
    X, y = cohort
    root = tmp_path_factory.mktemp("registry")
    registry = ModelRegistry(root)
    registry.publish(
        "reg",
        GBRegressor(n_estimators=15, max_depth=3).fit(X, y),
        metadata={"features": FEATURES},
    )
    registry.publish(
        "clf",
        GBClassifier(n_estimators=10, max_depth=2).fit(
            np.nan_to_num(X), (y > 0).astype(float)
        ),
        metadata={"features": FEATURES},
    )
    return registry


def _wire_rows(X):
    """Rows as their JSON wire form (NaN -> null)."""
    return [
        [None if np.isnan(value) else float(value) for value in row]
        for row in X
    ]


def _request(conn, method, path, payload=None):
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body)
    response = conn.getresponse()
    headers = {k.lower(): v for k, v in response.getheaders()}
    return response.status, headers, json.loads(response.read())


def _reference_wire(service, X, explain=False, batch=8):
    """What the wire must carry: the service's answers, wire-encoded."""
    out = []
    for lo in range(0, X.shape[0], batch):
        block = X[lo : lo + batch]
        results = service.score_batch(
            [
                ScoreRequest(row=block[i], explain=explain)
                for i in range(block.shape[0])
            ]
        )
        out.extend(result_to_wire(r) for r in results)
    return out


def _assert_wire_equal(got, expected):
    """Bitwise wire equality — modulo cache bookkeeping under chaos.

    Under an active fault plan (the CI chaos matrix), a respawned shard
    starts cache-cold, so the ``cached`` flag may legitimately diverge;
    every value must still match exactly.
    """
    if faults_active():
        got = [{k: v for k, v in r.items() if k != "cached"} for r in got]
        expected = [
            {k: v for k, v in r.items() if k != "cached"} for r in expected
        ]
    assert got == expected


class TestEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_bitwise_equal_to_service_cold_and_hot(
        self, registry, cohort, jobs
    ):
        X, _y = cohort
        # Two passes over the same cohort: pass one is cache-cold, pass
        # two is cache-hot; sequential posts make each POST one
        # micro-batch, so the reference batches the same way.
        cohort_rows = np.concatenate([X[:40], X[:40]])
        service = ScoringService.from_registry(registry, "reg")
        expected = _reference_wire(service, cohort_rows, explain=False)
        expected += _reference_wire(service, cohort_rows[:16], explain=True)
        server = ScoringServer(
            registry, "reg", jobs=jobs, flush_interval=0.001, poll_interval=0
        )
        got = []
        with ServerThread(server) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            for lo in range(0, cohort_rows.shape[0], 8):
                status, _headers, doc = _request(
                    conn,
                    "POST",
                    "/predict",
                    {"rows": _wire_rows(cohort_rows[lo : lo + 8])},
                )
                assert status == 200
                got.extend(doc["results"])
            for lo in range(0, 16, 8):
                status, _headers, doc = _request(
                    conn,
                    "POST",
                    "/explain",
                    {"rows": _wire_rows(cohort_rows[lo : lo + 8])},
                )
                assert status == 200
                got.extend(doc["results"])
            conn.close()
        # Wire documents compare exactly: JSON float round-tripping is
        # bitwise, and even the cached flags coincide (modulo chaos).
        _assert_wire_equal(got, expected)

    def test_classifier_probability_on_the_wire(self, registry, cohort):
        X, _y = cohort
        rows = np.nan_to_num(X[:10])
        service = ScoringService.from_registry(registry, "clf")
        expected = _reference_wire(service, rows, batch=10)
        server = ScoringServer(
            registry, "clf", jobs=1, flush_interval=0.001, poll_interval=0
        )
        with ServerThread(server) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            status, _headers, doc = _request(
                conn, "POST", "/predict", {"rows": _wire_rows(rows)}
            )
            conn.close()
        assert status == 200
        _assert_wire_equal(doc["results"], expected)
        assert all(r["probability"] is not None for r in doc["results"])

    def test_single_row_sugar(self, registry, cohort):
        X, _y = cohort
        service = ScoringService.from_registry(registry, "reg")
        expected = _reference_wire(service, X[:1], explain=True, batch=1)
        server = ScoringServer(
            registry, "reg", jobs=1, flush_interval=0.0, poll_interval=0
        )
        with ServerThread(server) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            status, _headers, doc = _request(
                conn, "POST", "/explain", {"row": _wire_rows(X[:1])[0]}
            )
            conn.close()
        assert status == 200
        _assert_wire_equal(doc["results"], expected)


class TestHotSwap:
    def test_swap_drops_nothing_and_never_mixes_versions(
        self, cohort, tmp_path
    ):
        X, y = cohort
        registry = ModelRegistry(tmp_path / "registry")
        v1 = registry.publish(
            "m", GBRegressor(n_estimators=8, max_depth=2).fit(X, y)
        ).ref
        server = ScoringServer(
            registry,
            "m",
            jobs=1,
            flush_interval=0.001,
            poll_interval=0.05,
        )
        rows = _wire_rows(X[:4])
        with ServerThread(server) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            status, _headers, doc = _request(
                conn, "POST", "/predict", {"rows": rows}
            )
            assert status == 200 and doc["version"] == v1
            v2 = registry.publish(
                "m", GBRegressor(n_estimators=12, max_depth=3).fit(X, y)
            ).ref
            assert v2 != v1
            versions = []
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, _headers, doc = _request(
                    conn, "POST", "/predict", {"rows": rows}
                )
                # Zero drops: every post during the swap is answered.
                assert status == 200
                versions.append(doc["version"])
                if doc["version"] == v2:
                    break
                time.sleep(0.02)
            assert versions[-1] == v2, "hot swap never happened"
            # Monotone: v1 answers, then v2 answers, never interleaved.
            first_v2 = versions.index(v2)
            assert all(v == v1 for v in versions[:first_v2])
            assert all(v == v2 for v in versions[first_v2:])
            # Post-swap answers are bitwise the new version's.  The
            # server already scored these rows on v2 at least once, so
            # warm the reference cache the same way before comparing.
            service = ScoringService.from_registry(
                registry, "m", v2.split("@", 1)[1]
            )
            _reference_wire(service, X[:4], batch=4)
            expected = _reference_wire(service, X[:4], batch=4)
            status, _headers, doc = _request(
                conn, "POST", "/predict", {"rows": rows}
            )
            _assert_wire_equal(doc["results"], expected)
            conn.close()
        assert server.stats.swaps == 1
        assert server.stats.errors == 0

    def test_pinned_tag_never_swaps(self, cohort, tmp_path):
        X, y = cohort
        registry = ModelRegistry(tmp_path / "registry")
        v1 = registry.publish(
            "m", GBRegressor(n_estimators=8, max_depth=2).fit(X, y)
        ).ref
        tag = v1.split("@", 1)[1]
        server = ScoringServer(
            registry, "m", tag=tag, jobs=1, flush_interval=0.0,
            poll_interval=0.05,
        )
        with ServerThread(server) as handle:
            registry.publish(
                "m", GBRegressor(n_estimators=12, max_depth=3).fit(X, y)
            )
            time.sleep(0.3)
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            status, _headers, doc = _request(
                conn, "POST", "/predict", {"rows": _wire_rows(X[:2])}
            )
            conn.close()
        assert status == 200 and doc["version"] == v1
        assert server.stats.swaps == 0


class TestBackpressureAndShutdown:
    def test_429_with_retry_after_then_drain_answers_admitted(
        self, registry, cohort
    ):
        X, _y = cohort
        # A long co-traveller window holds admitted rows in the queue so
        # the bound is observable; max_queue=2 saturates after one post.
        server = ScoringServer(
            registry,
            "reg",
            jobs=1,
            flush_interval=30.0,
            max_queue=2,
            poll_interval=0,
        )
        service = ScoringService.from_registry(registry, "reg")
        expected = _reference_wire(service, X[:2], batch=2)
        admitted: dict = {}

        with ServerThread(server) as handle:

            def blocked_post():
                conn = http.client.HTTPConnection("127.0.0.1", handle.port)
                status, _headers, doc = _request(
                    conn, "POST", "/predict", {"rows": _wire_rows(X[:2])}
                )
                admitted["status"], admitted["doc"] = status, doc
                conn.close()

            poster = threading.Thread(target=blocked_post)
            poster.start()
            # Wait until those 2 rows are admitted and queued.
            deadline = time.monotonic() + 10
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            while time.monotonic() < deadline:
                _status, _headers, metrics = _request(conn, "GET", "/metrics")
                if metrics["queue"]["rows"] == 2:
                    break
                time.sleep(0.01)
            assert metrics["queue"]["rows"] == 2
            status, headers, doc = _request(
                conn, "POST", "/predict", {"rows": _wire_rows(X[2:3])}
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert doc["retry_after"] == int(headers["retry-after"])
            conn.close()
            # SIGTERM-style stop: the context manager drains the queue —
            # the admitted post completes, bitwise-correct.
            poster_join = poster
        poster_join.join(timeout=30)
        assert admitted["status"] == 200
        _assert_wire_equal(admitted["doc"]["results"], expected)
        assert server.stats.posts == 1
        assert server.stats.errors == 0

    def test_shutdown_drops_no_inflight_posts(self, registry, cohort):
        X, _y = cohort
        server = ScoringServer(
            registry,
            "reg",
            jobs=1,
            flush_interval=0.2,
            poll_interval=0,
        )
        outcomes = []
        lock = threading.Lock()

        with ServerThread(server) as handle:

            def post(lo):
                conn = http.client.HTTPConnection("127.0.0.1", handle.port)
                status, _headers, doc = _request(
                    conn,
                    "POST",
                    "/predict",
                    {"rows": _wire_rows(X[lo : lo + 4])},
                )
                with lock:
                    outcomes.append((status, len(doc.get("results", []))))
                conn.close()

            posters = [
                threading.Thread(target=post, args=(lo,))
                for lo in range(0, 12, 4)
            ]
            for t in posters:
                t.start()
            time.sleep(0.05)  # posts are admitted, batch window open
            # Exiting the context manager is the SIGTERM path: stop()
            # drains every admitted post before teardown.
        for t in posters:
            t.join(timeout=30)
        assert len(outcomes) == 3
        assert all(status == 200 and n == 4 for status, n in outcomes)
        assert server.stats.posts == 3

    def test_post_after_stop_is_refused(self, registry, cohort):
        X, _y = cohort
        server = ScoringServer(
            registry, "reg", jobs=1, flush_interval=0.0, poll_interval=0
        )
        with ServerThread(server) as handle:
            port = handle.port
            conn = http.client.HTTPConnection("127.0.0.1", port)
            status, _headers, _doc = _request(
                conn, "POST", "/predict", {"rows": _wire_rows(X[:1])}
            )
            assert status == 200
            conn.close()
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection("127.0.0.1", port)
            conn.request("POST", "/predict", body="{}")
            conn.getresponse()


class TestProtocolErrors:
    @pytest.fixture(scope="class")
    def handle(self, registry):
        server = ScoringServer(
            registry,
            "reg",
            jobs=1,
            flush_interval=0.0,
            max_batch=8,
            poll_interval=0,
        )
        with ServerThread(server) as handle:
            yield handle

    @pytest.fixture()
    def conn(self, handle):
        conn = http.client.HTTPConnection("127.0.0.1", handle.port)
        yield conn
        conn.close()

    def test_healthz(self, conn):
        status, _headers, doc = _request(conn, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["version"].startswith("reg@")

    def test_unknown_path_is_404(self, conn):
        status, _headers, doc = _request(conn, "GET", "/nope")
        assert status == 404
        assert "error" in doc

    def test_wrong_method_is_405(self, conn):
        for method, path in [
            ("GET", "/predict"),
            ("GET", "/explain"),
            ("POST", "/metrics"),
            ("POST", "/healthz"),
        ]:
            status, _headers, doc = _request(conn, method, path)
            assert status == 405, (method, path)

    def test_malformed_bodies_are_400(self, conn):
        for payload in [
            ["not", "an", "object"],
            {},
            {"row": [1.0] * 6, "rows": [[1.0] * 6]},
            {"rows": [[1.0] * 5]},  # wrong width
            {"rows": [["x"] * 6]},  # non-numeric
            {"rows": [[True] * 6]},  # booleans are not numbers here
            {"rows": "nope"},
        ]:
            status, _headers, doc = _request(conn, "POST", "/predict", payload)
            assert status == 400, payload
            assert "error" in doc

    def test_bad_json_is_400(self, conn):
        conn.request("POST", "/predict", body="{not json")
        response = conn.getresponse()
        doc = json.loads(response.read())
        assert response.status == 400
        assert "error" in doc

    def test_oversized_post_is_413(self, conn, cohort):
        X, _y = cohort
        status, _headers, doc = _request(
            conn, "POST", "/predict", {"rows": _wire_rows(X[:9])}
        )
        assert status == 413
        assert "at most 8 rows" in doc["error"]

    def test_empty_rows_answer_empty(self, conn):
        status, _headers, doc = _request(
            conn, "POST", "/predict", {"rows": []}
        )
        assert status == 200
        assert doc["results"] == []


class TestMetrics:
    def test_metrics_schema_and_counters(self, registry, cohort):
        X, _y = cohort
        server = ScoringServer(
            registry, "reg", jobs=2, flush_interval=0.001, poll_interval=0
        )
        with ServerThread(server) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            for _pass in range(2):  # second pass is cache-hot
                for lo in range(0, 12, 4):
                    status, _headers, _doc = _request(
                        conn,
                        "POST",
                        "/predict",
                        {"rows": _wire_rows(X[lo : lo + 4])},
                    )
                    assert status == 200
            status, _headers, metrics = _request(conn, "GET", "/metrics")
            conn.close()
        assert status == 200
        # The bench.json entry schema, plus the serving extras.
        assert metrics["name"] == "serve_http"
        assert metrics["seconds"] > 0
        assert metrics["speedup"] is None
        assert metrics["config"]["jobs"] == 2
        assert set(metrics["latency_ms"]) == {"p50", "p95", "p99"}
        assert (
            metrics["latency_ms"]["p50"]
            <= metrics["latency_ms"]["p95"]
            <= metrics["latency_ms"]["p99"]
        )
        assert metrics["throughput_rps"] > 0
        assert metrics["requests"]["posts"] == 6
        assert metrics["requests"]["rows"] == 24
        assert metrics["requests"]["micro_batches"] == 6
        assert metrics["requests"]["errors"] == 0
        assert metrics["queue"] == {
            "depth": 0,
            "rows": 0,
            "max": 256,
            "rejected": 0,
        }
        assert metrics["shards"]["workers"] == 2
        assert 1 <= metrics["shards"]["workers_alive"] <= 2
        assert sum(metrics["shards"]["rows"].values()) == 24
        # Pass two re-scored the pass-one working set: hits observed.
        assert metrics["cache"]["hits"] > 0
        assert 0 < metrics["cache"]["hit_rate"] < 1
        assert metrics["model"]["version"].startswith("reg@")
        assert metrics["model"]["swaps"] == 0
