"""Monte-Carlo permutation Shapley values (approximate cross-check).

Exact TreeSHAP is preferred everywhere in the pipeline; this estimator
exists as an *independent* approximation of the same quantity (the
Shapley values of the tree's path-dependent conditional expectation),
used to sanity-check the exact algorithm on larger models than the
brute-force enumerator can handle, and as a reference implementation of
the classic permutation scheme (Castro et al. 2009).

For a random permutation pi of the features, the marginal contribution
of feature i is ``v(S_i(pi) + {i}) - v(S_i(pi))`` where ``S_i(pi)`` is
the set of features preceding i in pi; averaging over permutations
converges to the Shapley value.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import Tree, TreeEnsemble
from repro.explain.exact import tree_value_function

__all__ = ["PermutationShapEstimator"]


class PermutationShapEstimator:
    """Monte-Carlo Shapley estimator over a tree ensemble.

    Parameters
    ----------
    model:
        A :class:`TreeEnsemble` or fitted estimator exposing
        ``ensemble_``.
    n_permutations:
        Random permutations per explained sample; the standard error
        shrinks as ``1/sqrt(n_permutations)``.
    seed:
        RNG seed for the permutations.
    """

    def __init__(self, model, n_permutations: int = 200, seed: int = 0):
        ensemble = getattr(model, "ensemble_", model)
        if not isinstance(ensemble, TreeEnsemble):
            raise TypeError("model must be a TreeEnsemble or fitted estimator")
        if ensemble.n_trees == 0:
            raise ValueError("cannot explain an empty ensemble")
        if n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        self.ensemble = ensemble
        self.n_permutations = n_permutations
        self.seed = seed

    def shap_values_single(self, x: np.ndarray, n_features: int) -> np.ndarray:
        """Estimate Shapley values for one sample.

        Only the features each tree actually splits on receive mass, so
        the permutation walks the union of used features (typically far
        fewer than ``n_features``).
        """
        x = np.asarray(x, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        phi = np.zeros(n_features, dtype=np.float64)
        for tree in self.ensemble.trees:
            phi += self._tree_phi(tree, x, n_features, rng)
        return phi

    def _tree_phi(
        self,
        tree: Tree,
        x: np.ndarray,
        n_features: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        used = [int(f) for f in tree.used_features()]
        phi = np.zeros(n_features, dtype=np.float64)
        if not used:
            return phi
        cache: dict[frozenset[int], float] = {}

        def v(subset: frozenset[int]) -> float:
            if subset not in cache:
                cache[subset] = tree_value_function(tree, x, subset)
            return cache[subset]

        order = np.array(used)
        for _ in range(self.n_permutations):
            rng.shuffle(order)
            prefix: frozenset[int] = frozenset()
            prev_value = v(prefix)
            for f in order:
                prefix = prefix | {int(f)}
                value = v(prefix)
                phi[f] += value - prev_value
                prev_value = value
        return phi / self.n_permutations
