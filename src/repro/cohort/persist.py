"""Persist a generated cohort to disk (CSV tables + JSON config).

A cohort is a pure function of its config, but regenerating the paper-
scale dataset takes a couple of seconds and downstream consumers (R
users, spreadsheet-level clinicians) want files.  ``save_cohort`` writes
one CSV per table plus the generating configuration; ``load_cohort``
restores an identical :class:`CohortDataset` (verified by table equality
in the tests).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.cohort.config import ClinicConfig, CohortConfig
from repro.cohort.dataset import CohortDataset
from repro.cohort.schema import IC_DOMAINS, pro_item_names
from repro.frailty.deficits import deficit_names
from repro.tabular import ColumnType, read_csv, write_csv

__all__ = ["save_cohort", "load_cohort"]

_TABLES = ("patients", "daily", "pro", "visits", "latent")


def _schemas() -> dict[str, dict[str, ColumnType]]:
    """Explicit column types per table (CSV inference is lossy)."""
    pro = {"patient_id": ColumnType.STRING, "month": ColumnType.INT}
    pro.update({name: ColumnType.FLOAT for name in pro_item_names()})
    visits = {"patient_id": ColumnType.STRING, "visit_month": ColumnType.INT}
    visits.update({name: ColumnType.FLOAT for name in deficit_names()})
    visits.update({o: ColumnType.FLOAT for o in ("qol", "sppb", "falls")})
    latent = {"patient_id": ColumnType.STRING, "month": ColumnType.INT,
              "health": ColumnType.FLOAT}
    latent.update({d: ColumnType.FLOAT for d in IC_DOMAINS})
    return {
        "patients": {
            "patient_id": ColumnType.STRING,
            "clinic": ColumnType.STRING,
            "age": ColumnType.INT,
            "years_with_hiv": ColumnType.INT,
        },
        "daily": {
            "patient_id": ColumnType.STRING,
            "day": ColumnType.INT,
            "month": ColumnType.INT,
            "steps": ColumnType.FLOAT,
            "calories": ColumnType.FLOAT,
            "sleep_hours": ColumnType.FLOAT,
        },
        "pro": pro,
        "visits": visits,
        "latent": latent,
    }


def save_cohort(cohort: CohortDataset, directory: str | Path) -> None:
    """Write the cohort's five tables and config under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in _TABLES:
        write_csv(getattr(cohort, name), directory / f"{name}.csv")
    config_doc = dataclasses.asdict(cohort.config)
    (directory / "config.json").write_text(
        json.dumps(config_doc, indent=2), encoding="utf-8"
    )


def load_cohort(directory: str | Path) -> CohortDataset:
    """Restore a cohort saved by :func:`save_cohort`.

    Raises
    ------
    FileNotFoundError
        If any expected file is missing.
    """
    directory = Path(directory)
    config_path = directory / "config.json"
    if not config_path.exists():
        raise FileNotFoundError(f"missing {config_path}")
    doc = json.loads(config_path.read_text(encoding="utf-8"))
    doc["clinics"] = tuple(ClinicConfig(**c) for c in doc["clinics"])
    config = CohortConfig(**doc)

    schemas = _schemas()
    tables = {}
    for name in _TABLES:
        path = directory / f"{name}.csv"
        if not path.exists():
            raise FileNotFoundError(f"missing {path}")
        tables[name] = read_csv(path, types=schemas[name])
    return CohortDataset(config=config, **tables)
