"""ABL1 bench — model-family ablation (paper section 5, GBM vs GA2M).

Expected shape vs the paper: gradient boosting is at least as good as
the GA2M-style EBM and the linear baseline on every outcome, and every
real model clears the dummy floor.
"""

from benchmarks.conftest import record, record_bench, timed
from repro.experiments import run_model_ablation
from repro.experiments.ablation_models import render_model_ablation


def test_model_family_ablation(benchmark, ctx, results_dir):
    runner = timed(run_model_ablation)
    grid = benchmark.pedantic(runner, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "ablation_models", render_model_ablation(grid))
    record_bench(
        results_dir,
        "ablation_models",
        min(runner.times),
        config={"seed": ctx.seed, "models": ["gbm", "ebm", "linear", "dummy"]},
    )

    for outcome, row in grid.items():
        key = "accuracy" if outcome == "falls" else "one_minus_mape"
        # GBM >= interpretable baselines (the paper's model-choice
        # argument), with a small noise slack.
        assert row["gbm"][key] >= row["ebm"][key] - 0.01
        assert row["gbm"][key] >= row["linear"][key] - 0.01
        assert row["gbm"][key] >= row["dummy"][key] - 0.01
