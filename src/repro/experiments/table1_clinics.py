"""TAB1 — single-clinic models (paper Table 1).

One model per clinic per (outcome, with/without FI) configuration, DD
arm and KD arm, mirroring the pooled Fig. 4 grid.  Expected shape: the
Hong Kong sub-cohort (n = 33) produces unstable, sometimes anomalous
metrics, which the paper attributes to its size.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext, default_context
from repro.learning.stratify import per_clinic_results

__all__ = ["run_table1", "render_table1"]


def run_table1(
    context: ExperimentContext | None = None,
    kinds: tuple[str, ...] = ("kd", "dd"),
) -> dict[str, dict]:
    """Return the Table 1 grid.

    Returns
    -------
    dict
        ``{clinic: {(outcome, kind, with_fi): metrics_dict}}``.
    """
    ctx = context or default_context()
    grid: dict[str, dict] = {}
    for outcome in ("qol", "sppb", "falls"):
        for kind in kinds:
            for with_fi in (False, True):
                samples = ctx.samples(outcome, kind, with_fi)
                per_clinic = per_clinic_results(
                    samples, n_folds=ctx.n_folds, seed=ctx.seed
                )
                for clinic, result in per_clinic.items():
                    grid.setdefault(clinic, {})[(outcome, kind, with_fi)] = (
                        result.test_report.as_dict()
                    )
    return grid


def render_table1(grid: dict[str, dict]) -> str:
    """Plain-text rendering (clinic blocks, rows w/o / w/ FI)."""
    lines = ["TABLE1: single-clinic models"]
    for clinic in sorted(grid):
        lines.append(f"  clinic {clinic}")
        block = grid[clinic]
        for with_fi in (False, True):
            tag = "w/ FI " if with_fi else "w/o FI"
            parts = []
            for outcome in ("qol", "sppb"):
                for kind in ("kd", "dd"):
                    m = block[(outcome, kind, with_fi)]
                    parts.append(
                        f"{outcome}/{kind}={100 * m['one_minus_mape']:.0f}%"
                    )
            for kind in ("kd", "dd"):
                m = block[("falls", kind, with_fi)]
                parts.append(
                    f"falls/{kind}: acc={100 * m['accuracy']:.0f}% "
                    f"recT={100 * m['recall_true']:.0f}%"
                )
            lines.append(f"    {tag}  " + "  ".join(parts))
    return "\n".join(lines)
