"""JSON (de)serialisation of fitted boosting models.

Clinical deployments need to train once and score later (the paper's
vision of model-assisted visits), so fitted estimators round-trip
through a explicit, versioned JSON document: hyper-parameters, the flat
node arrays of every tree, and the estimator kind.  No pickle — the
format is portable and diffable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.boosting.binning import BinMapper
from repro.boosting.config import GBConfig
from repro.boosting.gbm import GBClassifier, GBRegressor
from repro.boosting.tree import Tree, TreeEnsemble

__all__ = [
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
    "mapper_to_dict",
    "mapper_from_dict",
    "model_to_arrays",
    "model_from_arrays",
]

#: Format version written into every document.  Version 2 added the
#: fitted ``BinMapper`` (``mapper_``); version-1 documents are still
#: readable but their models fall back to raw-threshold prediction.
FORMAT_VERSION = 2

_READABLE_VERSIONS = frozenset({1, FORMAT_VERSION})

_KINDS = {"regressor": GBRegressor, "classifier": GBClassifier}


def _tree_to_dict(tree: Tree) -> dict:
    doc = {
        "children_left": tree.children_left.tolist(),
        "children_right": tree.children_right.tolist(),
        "feature": tree.feature.tolist(),
        # NaN/inf are not valid JSON scalars; encode via strings.
        "threshold": [_encode_float(v) for v in tree.threshold],
        "missing_left": tree.missing_left.tolist(),
        "value": tree.value.tolist(),
        "cover": tree.cover.tolist(),
    }
    if tree.bin_threshold is not None:
        doc["bin_threshold"] = tree.bin_threshold.tolist()
    return doc


def _tree_from_dict(doc: dict) -> Tree:
    bin_threshold = doc.get("bin_threshold")
    return Tree(
        children_left=np.asarray(doc["children_left"], dtype=np.int64),
        children_right=np.asarray(doc["children_right"], dtype=np.int64),
        feature=np.asarray(doc["feature"], dtype=np.int64),
        threshold=np.asarray(
            [_decode_float(v) for v in doc["threshold"]], dtype=np.float64
        ),
        missing_left=np.asarray(doc["missing_left"], dtype=bool),
        value=np.asarray(doc["value"], dtype=np.float64),
        cover=np.asarray(doc["cover"], dtype=np.float64),
        bin_threshold=(
            None
            if bin_threshold is None
            else np.asarray(bin_threshold, dtype=np.int64)
        ),
    )


def _encode_float(v: float) -> float | str:
    v = float(v)
    if np.isnan(v):
        return "nan"
    if np.isinf(v):
        return "inf" if v > 0 else "-inf"
    return v


def _decode_float(v) -> float:
    if isinstance(v, str):
        return float(v)
    return float(v)


def mapper_to_dict(mapper: BinMapper) -> dict:
    """Serialise a fitted :class:`BinMapper` to a dict.

    Bin edges are finite floats by construction (``fit`` rejects inf and
    ignores NaN), so plain JSON numbers round-trip them bitwise via
    Python's shortest-repr float encoding.
    """
    if mapper.bin_edges_ is None or mapper.n_bins_ is None:
        raise ValueError("mapper is not fitted; nothing to serialise")
    return {
        "max_bins": mapper.max_bins,
        "bin_edges": [edges.tolist() for edges in mapper.bin_edges_],
        "n_bins": mapper.n_bins_.tolist(),
    }


def mapper_from_dict(doc: dict) -> BinMapper:
    """Rebuild a fitted :class:`BinMapper` from :func:`mapper_to_dict`."""
    mapper = BinMapper(max_bins=int(doc["max_bins"]))
    mapper.bin_edges_ = [
        np.asarray(edges, dtype=np.float64) for edges in doc["bin_edges"]
    ]
    mapper.n_bins_ = np.asarray(doc["n_bins"], dtype=np.int64)
    return mapper


def model_to_dict(model) -> dict:
    """Serialise a fitted ``GBRegressor``/``GBClassifier`` to a dict."""
    if isinstance(model, GBRegressor):
        kind = "regressor"
    elif isinstance(model, GBClassifier):
        kind = "classifier"
    else:
        raise TypeError(f"cannot serialise {type(model).__name__}")
    if model.ensemble_ is None:
        raise ValueError("model is not fitted; nothing to serialise")
    return {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "config": dataclasses.asdict(model.config),
        "n_features": model.n_features_,
        "best_iteration": model.best_iteration_,
        "base_score": model.ensemble_.base_score,
        # The fitted BinMapper completes the round trip: without it a
        # reloaded model silently loses the binned predict/explain fast
        # paths (predict_binned, bin-space TreeSHAP routing).
        "mapper": (
            None if model.mapper_ is None else mapper_to_dict(model.mapper_)
        ),
        "trees": [_tree_to_dict(t) for t in model.ensemble_.trees],
    }


def model_from_dict(doc: dict):
    """Rebuild a fitted estimator from :func:`model_to_dict` output."""
    version = doc.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(expected one of {sorted(_READABLE_VERSIONS)})"
        )
    kind = doc.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"unknown estimator kind {kind!r}")
    config_doc = dict(doc["config"])
    if config_doc.get("monotone_constraints") is not None:
        config_doc["monotone_constraints"] = tuple(
            config_doc["monotone_constraints"]
        )
    model = _KINDS[kind](GBConfig(**config_doc))
    model.n_features_ = int(doc["n_features"])
    model.best_iteration_ = (
        None if doc["best_iteration"] is None else int(doc["best_iteration"])
    )
    mapper_doc = doc.get("mapper")
    model.mapper_ = None if mapper_doc is None else mapper_from_dict(mapper_doc)
    model.ensemble_ = TreeEnsemble(
        base_score=float(doc["base_score"]),
        trees=[_tree_from_dict(t) for t in doc["trees"]],
    )
    return model


#: Per-tree node arrays packed by :func:`model_to_arrays` (name, dtype).
_NODE_FIELDS = (
    ("children_left", np.int64),
    ("children_right", np.int64),
    ("feature", np.int64),
    ("threshold", np.float64),
    ("missing_left", bool),
    ("value", np.float64),
    ("cover", np.float64),
)


def model_to_arrays(model) -> tuple[dict, dict[str, np.ndarray]]:
    """Pack a fitted estimator into flat arrays + a picklable manifest.

    The JSON document (:func:`model_to_dict`) is the *persistence*
    format; this is the *process-handoff* format: every per-tree node
    array is concatenated per field into one contiguous array (ditto the
    fitted mapper's bin edges), so the whole model plane can travel in a
    handful of POSIX shared-memory segments.  The manifest carries only
    scalars (config, per-tree node counts, per-feature edge counts).

    :func:`model_from_arrays` rebuilds the estimator with **zero-copy
    views** into the given arrays — N scoring workers map one exported
    plane instead of each unpickling a full copy.
    """
    if isinstance(model, GBRegressor):
        kind = "regressor"
    elif isinstance(model, GBClassifier):
        kind = "classifier"
    else:
        raise TypeError(f"cannot pack {type(model).__name__}")
    if model.ensemble_ is None:
        raise ValueError("model is not fitted; nothing to pack")
    trees = model.ensemble_.trees
    binnable = all(t.bin_threshold is not None for t in trees)
    arrays: dict[str, np.ndarray] = {}
    for name, dtype in _NODE_FIELDS:
        arrays[f"tree:{name}"] = np.concatenate(
            [np.asarray(getattr(t, name), dtype=dtype) for t in trees]
        )
    if binnable:
        arrays["tree:bin_threshold"] = np.concatenate(
            [np.asarray(t.bin_threshold, dtype=np.int64) for t in trees]
        )
    manifest = {
        "kind": kind,
        "config": dataclasses.asdict(model.config),
        "n_features": int(model.n_features_),
        "best_iteration": model.best_iteration_,
        "base_score": float(model.ensemble_.base_score),
        "n_nodes": [t.n_nodes for t in trees],
        "binnable": binnable,
        "mapper": None,
    }
    mapper = model.mapper_
    if mapper is not None:
        if mapper.bin_edges_ is None or mapper.n_bins_ is None:
            raise ValueError("mapper is not fitted; cannot pack it")
        manifest["mapper"] = {
            "max_bins": mapper.max_bins,
            "n_edges": [len(edges) for edges in mapper.bin_edges_],
        }
        arrays["mapper:edges"] = (
            np.concatenate(mapper.bin_edges_)
            if mapper.bin_edges_
            else np.empty(0, dtype=np.float64)
        )
        arrays["mapper:n_bins"] = np.asarray(mapper.n_bins_, dtype=np.int64)
    return manifest, arrays


def model_from_arrays(manifest: dict, arrays: dict[str, np.ndarray]):
    """Rebuild a fitted estimator from :func:`model_to_arrays` output.

    Every tree/mapper array is a *view* (slice) of the packed arrays —
    nothing numeric is copied, so arrays backed by shared memory stay
    shared (and read-only) in the reconstructed model.
    """
    kind = manifest["kind"]
    if kind not in _KINDS:
        raise ValueError(f"unknown estimator kind {kind!r}")
    config_doc = dict(manifest["config"])
    if config_doc.get("monotone_constraints") is not None:
        config_doc["monotone_constraints"] = tuple(
            config_doc["monotone_constraints"]
        )
    model = _KINDS[kind](GBConfig(**config_doc))
    model.n_features_ = int(manifest["n_features"])
    model.best_iteration_ = (
        None
        if manifest["best_iteration"] is None
        else int(manifest["best_iteration"])
    )
    trees = []
    offset = 0
    binnable = manifest["binnable"]
    for n in manifest["n_nodes"]:
        fields = {
            name: arrays[f"tree:{name}"][offset : offset + n]
            for name, _ in _NODE_FIELDS
        }
        if binnable:
            fields["bin_threshold"] = arrays["tree:bin_threshold"][
                offset : offset + n
            ]
        trees.append(Tree(**fields))
        offset += n
    model.ensemble_ = TreeEnsemble(
        base_score=float(manifest["base_score"]), trees=trees
    )
    mapper_info = manifest["mapper"]
    if mapper_info is None:
        model.mapper_ = None
    else:
        mapper = BinMapper(max_bins=int(mapper_info["max_bins"]))
        edges = arrays["mapper:edges"]
        cuts, lo = [], 0
        for n_edges in mapper_info["n_edges"]:
            cuts.append(edges[lo : lo + n_edges])
            lo += n_edges
        mapper.bin_edges_ = cuts
        mapper.n_bins_ = arrays["mapper:n_bins"]
        model.mapper_ = mapper
    return model


def save_model(model, path: str | Path) -> None:
    """Write a fitted estimator to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(model_to_dict(model)), encoding="utf-8")


def load_model(path: str | Path):
    """Read a fitted estimator back from :func:`save_model` output."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    return model_from_dict(doc)
