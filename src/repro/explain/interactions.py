"""Batched SHAP interaction values for tree ensembles.

Extension beyond the paper: the Shapley *interaction* index splits each
feature's attribution into a main effect (diagonal) and pairwise
synergies (off-diagonal), exposing e.g. "low step count only matters
for patients with poor locomotion answers" — one level deeper than the
Fig. 6 per-patient rankings.

Following Lundberg et al. (2018, §4.4), interaction values come from
*conditioned* TreeSHAP runs::

    phi_ij(x) = ( phi_j(x | i -> hot) - phi_j(x | i -> cold) ) / 2
    phi_ii(x) = phi_i(x) - sum_{j != i} phi_ij(x)

where "i -> hot/cold" forces every split on feature i down the branch x
does/does not take (without crediting i on the path).  The matrix is
symmetric and rows sum to the ordinary SHAP values — both properties
are asserted in the tests.

This is the *batched* engine: per tree, the hot/cold routing decisions
and the EXTEND weight tensor are computed once and shared across every
conditioned pass (conditioning feature ``i`` hot merely gates a leaf's
contribution by the sample's agreement indicator for ``i``;
conditioning it cold scales by the leaf's cover fraction for ``i`` —
both already live in the preprocessed
:class:`repro.explain.structure.TreeStructure`), instead of re-walking
the tree ``2 * n_used_features`` times per sample as the recursive
oracle (:class:`repro.explain.reference
.ReferenceTreeShapInteractionExplainer`) does.  Whole sample batches
are handled in one pass via :meth:`shap_interaction_values_batch`.
"""

from __future__ import annotations

import numpy as np

from repro.explain.structure import TreeStructure
from repro.explain.treeshap import (
    _extend_weights,
    _plain_deltas,
    _PreprocessedExplainer,
    _unwound_sums,
)

__all__ = ["TreeShapInteractionExplainer"]


def _unwind_weights(
    weights: np.ndarray, one_e: np.ndarray, zero_e: np.ndarray
) -> np.ndarray:
    """UNWIND one path entry out of the weight tensor.

    Inverse of one EXTEND step: removes the entry with fractions
    ``one_e``/``zero_e`` from the ``(n, L, M+1)`` tensor, returning the
    ``(n, L, M)`` weights of the path without it.  Hot and cold closed
    forms are evaluated vectorized and selected per element.
    """
    M = weights.shape[-1] - 1
    hot = np.empty(weights.shape[:-1] + (M,), dtype=np.float64)
    nvec = weights[..., M].copy()
    for i in range(M - 1, -1, -1):
        hot[..., i] = nvec * ((M + 1) / (i + 1))
        nvec = weights[..., i] - hot[..., i] * zero_e * ((M - i) / (M + 1))
    coef = (M + 1) / (M - np.arange(M, dtype=np.float64))
    cold = weights[..., :M] * (coef / zero_e[:, None])
    return np.where((one_e == 1.0)[..., None], hot, cold)


def _accumulate_tree_pairs(
    struct: TreeStructure,
    decisions: np.ndarray,
    plain: np.ndarray,
    out: np.ndarray,
) -> None:
    """Add one tree's plain SHAP values and raw pair deltas for all samples.

    ``plain`` is ``(n, d)``; ``out`` is ``(n, d, d)`` accumulating the
    *unsymmetrised* ``(phi_on - phi_off) / 2`` deltas (the caller
    symmetrises and fills the diagonal once, after all trees).
    """
    one = struct.hot_fractions(decisions)
    weights = _extend_weights(one, struct.zeros)
    n, L, m = one.shape
    zeros = struct.zeros
    values = struct.leaf_values

    # Plain (unconditioned) pass — shares the weight tensor.
    delta = _plain_deltas(struct, one, weights)
    plain[:, struct.used] += struct.fold(delta.reshape(n, L * m))

    if m < 2:
        return

    # Conditioned passes: entry a hot-conditioned gates the leaf by
    # one_a, cold-conditioned scales it by zero_a; either way entry a
    # leaves the path, so (phi_on - phi_off)/2 carries the common
    # factor (one_a - zero_a)/2.  Null-padding entries have
    # one == zero == 1, so their pairs vanish identically.
    pair_delta = np.zeros((n, L, m, m), dtype=np.float64)
    for a in range(m):
        o_a, z_a = one[..., a], zeros[:, a]
        reduced = _unwind_weights(weights, o_a, z_a)
        gate = 0.5 * (o_a - z_a) * values
        for b in range(m):
            if b == a:
                continue
            total = _unwound_sums(reduced, one[..., b], zeros[:, b])
            pair_delta[:, :, a, b] = (
                total * (one[..., b] - zeros[:, b]) * gate
            )

    perm, starts, group_codes = struct.pair_scatter()
    sums = np.add.reduceat(
        pair_delta.reshape(n, L * m * m)[:, perm], starts, axis=1
    )
    U = len(struct.used)
    acc = np.zeros((n, (U + 1) * (U + 1)), dtype=np.float64)
    acc[:, group_codes] = sums
    acc = acc.reshape(n, U + 1, U + 1)[:, :U, :U]
    out[:, struct.used[:, None], struct.used[None, :]] += acc


class TreeShapInteractionExplainer(_PreprocessedExplainer):
    """Exact batched SHAP interaction matrices over a fitted ensemble.

    One preprocessed structure pass per tree serves every conditioned
    run; explaining a batch of samples costs barely more than one, so
    prefer :meth:`shap_interaction_values_batch` for cohorts.
    """

    def shap_interaction_values_batch(
        self, X: np.ndarray, n_features: int | None = None
    ) -> np.ndarray:
        """Interaction matrices for a batch, shape ``(n, d, d)``.

        Per sample: rows sum to the ordinary SHAP values, the matrix is
        symmetric, and the diagonal holds main effects.  ``n_features``
        widens the output beyond the input columns (phantom features
        get zero rows); it defaults to the input width.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {X.shape}")
        self._check_columns(X.shape[1])
        if n_features is None:
            n_features = X.shape[1]
        if n_features < self._min_features:
            raise ValueError(
                f"n_features={n_features} is smaller than the ensemble's "
                f"feature span {self._min_features}"
            )

        decisions_for = self._decisions_for(X)
        n = X.shape[0]
        out = np.zeros((n, n_features, n_features), dtype=np.float64)
        plain = np.zeros((n, n_features), dtype=np.float64)
        for struct in self._structures:
            if struct.n_entries == 0:
                continue
            _accumulate_tree_pairs(
                struct, decisions_for(struct.tree), plain, out
            )

        # Symmetrise (the construction is symmetric up to float error),
        # then set main effects so each row sums to the plain SHAP value.
        out = (out + out.transpose(0, 2, 1)) / 2.0
        idx = np.arange(n_features)
        out[:, idx, idx] = 0.0
        out[:, idx, idx] = plain - out.sum(axis=2)
        return out

    def shap_interaction_values(
        self, x: np.ndarray, n_features: int
    ) -> np.ndarray:
        """The ``(n_features, n_features)`` interaction matrix for ``x``.

        Rows sum to the sample's ordinary SHAP values; the matrix is
        symmetric; the diagonal holds main effects.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"expected a single sample, got shape {x.shape}")
        return self.shap_interaction_values_batch(x[None, :], n_features)[0]
