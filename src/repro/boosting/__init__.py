"""From-scratch gradient-boosted decision trees (the paper's XGBoost [4]).

The build environment has no xgboost/sklearn, so this package implements
the algorithm family the paper relies on: second-order (Newton) gradient
boosting over regression trees with histogram-based split finding,
shrinkage, L2 leaf regularisation, row/column subsampling, native missing
-value routing and early stopping.

Public API
----------
``GBRegressor`` / ``GBClassifier``
    Scikit-style estimators (``fit`` / ``predict`` /
    ``predict_proba``).
``GBConfig``
    Hyper-parameters shared by both estimators.
``Tree`` / ``TreeEnsemble``
    The fitted tree structures (array-of-nodes layout, consumed directly
    by :mod:`repro.explain`'s TreeSHAP).
``CompactEnsemble``
    Hash-consed DAG of a fitted ensemble: one shared node table for all
    trees (the serving-plane representation; see
    :mod:`repro.boosting.dag`).
``BinMapper``
    Quantile histogram binning of raw feature matrices.
``SquaredErrorLoss`` / ``LogisticLoss``
    Loss objects (gradient/hessian providers).
"""

from repro.boosting.binning import BinMapper
from repro.boosting.config import GBConfig
from repro.boosting.dag import CompactEnsemble
from repro.boosting.gbm import GBClassifier, GBRegressor
from repro.boosting.losses import LogisticLoss, SquaredErrorLoss
from repro.boosting.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.boosting.tree import Tree, TreeEnsemble

__all__ = [
    "BinMapper",
    "CompactEnsemble",
    "GBConfig",
    "GBClassifier",
    "GBRegressor",
    "LogisticLoss",
    "SquaredErrorLoss",
    "Tree",
    "TreeEnsemble",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
]
